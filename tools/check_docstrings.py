#!/usr/bin/env python
"""Docstring-coverage gate for the public API surface.

The container has no ``interrogate`` wheel, so this is a dependency-free
equivalent: walk the AST of every module under the audited packages
(default: ``repro.api``, ``repro.cluster``, ``repro.consistency``,
``repro.obs``, ``repro.perf`` and ``repro.replica`` — the surfaces
applications program against) and require a docstring on

* every module,
* every public class (name not starting with ``_``),
* every public function/method of a public scope (dunders exempt; an
  ``__init__``'s contract belongs in its class docstring).

``# pragma: no docstring`` on the ``def``/``class`` line exempts a
definition (none currently need it).  Exit status 0 iff coverage is 100%;
the missing definitions are listed otherwise.  Wired into CI (job
``tier1``) and into the tier-1 suite via
``tests/test_docstring_coverage.py``.

Usage::

    python tools/check_docstrings.py [package_dir ...]
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_TARGETS = [
    REPO_ROOT / "src" / "repro" / "api",
    REPO_ROOT / "src" / "repro" / "cluster",
    REPO_ROOT / "src" / "repro" / "consistency",
    REPO_ROOT / "src" / "repro" / "faust" / "checkpoint.py",
    REPO_ROOT / "src" / "repro" / "faust" / "membership.py",
    REPO_ROOT / "src" / "repro" / "obs",
    REPO_ROOT / "src" / "repro" / "perf",
    REPO_ROOT / "src" / "repro" / "replica",
    REPO_ROOT / "src" / "repro" / "workloads",
]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _exempt(source_lines: list[str], node: ast.AST) -> bool:
    line = source_lines[node.lineno - 1]
    return "pragma: no docstring" in line


def _walk_scope(
    node: ast.AST,
    qualname: str,
    source_lines: list[str],
    missing: list[str],
    total: list[int],
) -> None:
    for child in ast.iter_child_nodes(node):
        if isinstance(child, _FUNC_NODES + (ast.ClassDef,)):
            name = child.name
            if not _is_public(name) or _exempt(source_lines, child):
                continue
            label = f"{qualname}.{name}"
            total[0] += 1
            if ast.get_docstring(child) is None:
                missing.append(label)
            if isinstance(child, ast.ClassDef):
                _walk_scope(child, label, source_lines, missing, total)


def audit_file(path: Path) -> tuple[int, list[str]]:
    """Count audited definitions and collect the ones missing docstrings."""
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    source_lines = source.splitlines()
    try:
        relative = path.relative_to(REPO_ROOT)
    except ValueError:  # audited file outside the repo (tests use tmp dirs)
        relative = Path(path.name)
    module = str(relative.with_suffix("")).replace("/", ".").removeprefix("src.")
    missing: list[str] = []
    total = [1]  # the module docstring itself
    if ast.get_docstring(tree) is None:
        missing.append(f"{module} (module docstring)")
    _walk_scope(tree, module, source_lines, missing, total)
    return total[0], missing


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = sys.argv[1:] if argv is None else argv
    targets = [Path(arg).resolve() for arg in args] if args else DEFAULT_TARGETS
    audited = 0
    missing: list[str] = []
    for target in targets:
        files = sorted(target.rglob("*.py")) if target.is_dir() else [target]
        for path in files:
            count, absent = audit_file(path)
            audited += count
            missing.extend(absent)
    covered = audited - len(missing)
    percent = 100.0 * covered / audited if audited else 100.0
    print(f"docstring coverage: {covered}/{audited} public definitions ({percent:.1f}%)")
    if missing:
        print("missing docstrings:")
        for label in missing:
            print(f"  - {label}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
