"""The lattice of forking notions — Section 4's comparison claims.

The paper's key structural claim: weak fork-linearizability is *neither
stronger nor weaker* than fork-*-linearizability.  Two witness histories
prove it, and both directions are checked here with the exhaustive
checkers, along with the implication structure among all five notions.
"""

from __future__ import annotations

import random

from repro.common.types import BOTTOM
from repro.consistency.causal import check_causal_consistency
from repro.consistency.fork import check_fork_linearizability_exhaustive
from repro.consistency.fork_sequential import (
    check_fork_sequential_exhaustive,
    validate_fork_sequential_consistency,
)
from repro.consistency.fork_star import (
    check_fork_star_linearizability_exhaustive,
    validate_fork_star_linearizability,
)
from repro.consistency.linearizability import check_linearizability
from repro.consistency.weak_fork import check_weak_fork_linearizability_exhaustive

from histbuild import h, r, w
from test_consistency_linearizability import _random_history


def figure3_history():
    return h(
        w(0, b"u", 0, 1),
        r(1, 0, BOTTOM, 2, 3),
        r(1, 0, b"u", 4, 5),
    )


def causality_violating_history():
    """Fork-*-linearizable but not weakly fork-linearizable.

    C1 writes a; C2 reads it and writes b (so a causally precedes b);
    C3 reads b but then reads X1 as BOTTOM.  C3's read of b drags the
    causal past of b into any weak-fork view (condition 3), making the
    BOTTOM read illegal — but fork-* has no causality condition, and C3's
    view may simply omit w(X1,a): C3's ops are concurrent with it in real
    time, so full real-time order is preserved.
    """
    write_a = w(0, b"a", 0, 1)
    read_a = r(1, 0, b"a", 2, 3)
    write_b = w(1, b"b", 4, 5)
    # C3's ops overlap w(X1,a) (invoked at 0.5), so real time allows the
    # view to exclude/reorder it.
    read_b = r(2, 1, b"b", 6, 7)
    read_bottom = r(2, 0, BOTTOM, 8, 9)
    write_a = w(0, b"a", 0.5, 100.0)  # concurrent with everything by C3
    return h(write_a, read_a, write_b, read_b, read_bottom)


class TestNeitherStrongerNorWeaker:
    def test_figure3_weak_fork_but_not_fork_star(self):
        hist = figure3_history()
        assert check_weak_fork_linearizability_exhaustive(hist)
        assert not check_fork_star_linearizability_exhaustive(hist)

    def test_causality_violation_fork_star_but_not_weak_fork(self):
        hist = causality_violating_history()
        assert check_fork_star_linearizability_exhaustive(hist)
        assert not check_weak_fork_linearizability_exhaustive(hist)
        # And indeed the separation is exactly causality:
        assert not check_causal_consistency(hist)


class TestFigure3AcrossAllNotions:
    def test_full_classification(self):
        hist = figure3_history()
        assert not check_linearizability(hist)
        assert not check_fork_linearizability_exhaustive(hist)
        assert not check_fork_star_linearizability_exhaustive(hist)
        assert check_weak_fork_linearizability_exhaustive(hist)
        assert check_fork_sequential_exhaustive(hist)
        assert check_causal_consistency(hist)

    def test_fork_sequential_witness_views(self):
        # Fork-sequential consistency drops real-time order entirely, so
        # C1's view may also order the hidden read first — restoring the
        # no-join property.
        hist = figure3_history().completed_for_checking()
        write, read1, read2 = hist[0], hist[1], hist[2]
        views = {0: [read1, write], 1: [read1, write, read2]}
        assert validate_fork_sequential_consistency(hist, views)


class TestImplications:
    """fork-linearizability implies every other forking notion."""

    def test_fork_implies_fork_star_on_samples(self):
        for seed in range(40):
            hist = _random_history(random.Random(seed), 2, 5)
            if check_fork_linearizability_exhaustive(hist).ok:
                assert check_fork_star_linearizability_exhaustive(hist).ok, f"seed {seed}"

    def test_fork_implies_fork_sequential_on_samples(self):
        for seed in range(40):
            hist = _random_history(random.Random(seed), 2, 5)
            if check_fork_linearizability_exhaustive(hist).ok:
                assert check_fork_sequential_exhaustive(hist).ok, f"seed {seed}"

    def test_linearizable_implies_fork_star_on_samples(self):
        for seed in range(40):
            hist = _random_history(random.Random(seed), 2, 5)
            if check_linearizability(hist).ok:
                assert check_fork_star_linearizability_exhaustive(hist).ok, f"seed {seed}"


class TestValidators:
    def test_fork_star_validator_accepts_sequential_history(self):
        hist = h(w(0, b"a", 0, 1), r(1, 0, b"a", 2, 3)).completed_for_checking()
        write, read = hist[0], hist[1]
        assert validate_fork_star_linearizability(hist, {0: [write], 1: [write, read]})

    def test_fork_star_validator_rejects_real_time_violation(self):
        hist = figure3_history().completed_for_checking()
        write, read1, read2 = hist[0], hist[1], hist[2]
        result = validate_fork_star_linearizability(
            hist, {1: [read1, write, read2]}
        )
        assert not result and "real-time" in result.violation

    def test_fork_sequential_validator_rejects_join(self):
        a1 = w(0, b"a1", 0, 1)
        a2 = w(0, b"a2", 2, 3)
        b = r(1, 0, b"a2", 4, 5)
        hist = h(a1, a2, b).completed_for_checking()
        ops = {op.value: op for op in hist if op.is_write}
        read = next(op for op in hist if op.is_read)
        views = {
            0: [ops[b"a1"], ops[b"a2"]],
            1: [ops[b"a2"], read],  # shares a2 but on a divergent prefix
        }
        result = validate_fork_sequential_consistency(hist, views)
        assert not result and "no-join" in result.violation
