"""Unit tests for the metrics registry (``repro.obs.registry``).

The registry's contract has two halves: enabled registries share
instruments by dotted name and snapshot everything; the disabled default
hands out detached/no-op instruments whose cost is near zero and whose
values nobody ever reads.  Both halves are pinned here, plus the
histogram's nearest-rank percentile math the exposition layer leans on.
"""

from __future__ import annotations

from math import inf

import pytest

from repro.common.errors import ConfigurationError
from repro.obs.registry import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    NullRegistry,
    Registry,
    enable_metrics,
    get_registry,
    set_registry,
    use_registry,
)


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter()
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        assert gauge.value == 0.0
        gauge.set(3.5)
        gauge.set(-1.0)
        assert gauge.value == -1.0

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            Histogram(())
        with pytest.raises(ConfigurationError):
            Histogram((1.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram((2.0, 1.0))

    def test_histogram_exact_aggregates(self):
        hist = Histogram((1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(555.5)
        assert hist.mean == pytest.approx(555.5 / 4)
        assert hist.max == 500.0

    def test_histogram_percentiles_are_nearest_rank(self):
        hist = Histogram((1.0, 10.0, 100.0))
        # 90 observations <= 1.0, 10 in (1, 10]: p50 is the first bucket's
        # upper bound, p95 and p99 the second's.
        for _ in range(90):
            hist.observe(0.5)
        for _ in range(10):
            hist.observe(5.0)
        assert hist.p50 == 1.0
        assert hist.p95 == 10.0
        assert hist.p99 == 10.0

    def test_histogram_percentile_uses_ceil_not_round(self):
        # Nearest-rank is rank = ceil(q * n).  round()'s half-even ties
        # under-reported by one rank at small counts: p50 of two samples
        # is the 1st-ranked (ceil(1.0)), but p50 of three must be the
        # 2nd-ranked (ceil(1.5), where round(1.5) == 2 only by parity
        # and round(0.5) == 0 would underflow entirely).
        hist = Histogram((1.0, 10.0, 100.0))
        hist.observe(0.5)
        hist.observe(5.0)
        # two samples: p50 = rank ceil(0.5 * 2) = 1 -> first bucket
        assert hist.p50 == 1.0
        hist.observe(50.0)
        # three samples: p50 = rank ceil(1.5) = 2 -> second bucket
        assert hist.p50 == 10.0
        # q just above a rank boundary must move up a rank
        assert hist.percentile(2 / 3) == 10.0
        assert hist.percentile(2 / 3 + 1e-9) == 100.0

    def test_histogram_percentile_extremes(self):
        hist = Histogram((1.0, 10.0))
        hist.observe(0.5)
        assert hist.percentile(0.0) == 1.0  # rank clamps to 1: the min's bucket
        assert hist.percentile(1.0) == 1.0
        hist.observe(5.0)
        assert hist.percentile(0.0) == 1.0
        assert hist.percentile(1.0) == 10.0  # rank 2: the max's bucket
        hist.observe(7.0)
        assert hist.percentile(1.0) == 10.0

    def test_histogram_single_sample_every_quantile(self):
        hist = Histogram((1.0,))
        hist.observe(0.5)
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert hist.percentile(q) == 1.0

    def test_histogram_overflow_rank_answers_exact_max(self):
        hist = Histogram((1.0,))
        hist.observe(0.5)
        hist.observe(123.0)  # above every bound: overflow bucket
        assert hist.percentile(1.0) == 123.0

    def test_histogram_percentile_domain_and_empty(self):
        hist = Histogram((1.0,))
        assert hist.percentile(0.5) == 0.0  # empty
        with pytest.raises(ConfigurationError):
            hist.percentile(1.5)

    def test_histogram_bucket_counts_are_cumulative(self):
        hist = Histogram((1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        hist.observe(50.0)
        assert hist.bucket_counts() == [(1.0, 1), (10.0, 2), (inf, 3)]

    def test_histogram_snapshot_keys(self):
        hist = Histogram(COUNT_BUCKETS)
        hist.observe(3)
        snap = hist.snapshot()
        assert set(snap) == {"count", "sum", "mean", "max", "p50", "p95", "p99"}
        assert snap["count"] == 1


class TestRegistry:
    def test_same_name_shares_one_instrument(self):
        registry = Registry()
        a = registry.counter("net.frames_sent")
        b = registry.counter("net.frames_sent")
        assert a is b
        a.inc()
        assert b.value == 1

    def test_kind_collision_is_loud(self):
        registry = Registry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")
        with pytest.raises(ConfigurationError):
            registry.histogram("x")

    def test_histogram_bounds_mismatch_is_loud(self):
        registry = Registry()
        registry.histogram("h", COUNT_BUCKETS)
        with pytest.raises(ConfigurationError):
            registry.histogram("h", LATENCY_BUCKETS)
        assert registry.histogram("h", COUNT_BUCKETS).bounds == COUNT_BUCKETS

    def test_names_get_and_snapshot(self):
        registry = Registry()
        registry.counter("b.count").inc(2)
        registry.gauge("a.gauge").set(1.5)
        registry.histogram("c.hist", (1.0,)).observe(0.5)
        assert registry.names() == ["a.gauge", "b.count", "c.hist"]
        assert registry.get("b.count").value == 2
        assert registry.get("missing") is None
        snap = registry.snapshot()
        assert snap["b.count"] == 2
        assert snap["a.gauge"] == 1.5
        assert snap["c.hist"]["count"] == 1


class TestNullRegistry:
    def test_disabled_flag(self):
        assert NullRegistry().enabled is False
        assert Registry().enabled is True

    def test_counters_are_detached_but_still_count(self):
        registry = NullRegistry()
        a = registry.counter("same.name")
        b = registry.counter("same.name")
        assert a is not b  # detached: no shared aggregation
        a.inc(3)
        assert a.value == 3  # per-instance aliases keep working
        assert b.value == 0

    def test_histogram_is_shared_noop(self):
        registry = NullRegistry()
        a = registry.histogram("x")
        b = registry.histogram("y", COUNT_BUCKETS)
        assert a is b  # one shared sink
        a.observe(123.0)
        assert a.count == 0  # observe discards

    def test_snapshot_is_empty(self):
        registry = NullRegistry()
        registry.counter("x").inc()
        registry.gauge("y").set(1.0)
        assert registry.snapshot() == {}
        assert registry.names() == []


class TestProcessRegistry:
    def test_default_is_disabled(self):
        assert get_registry().enabled is False

    def test_set_registry_returns_previous(self):
        fresh = Registry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous

    def test_use_registry_scopes_and_restores(self):
        outer = get_registry()
        scoped = Registry()
        with use_registry(scoped) as active:
            assert active is scoped
            assert get_registry() is scoped
        assert get_registry() is outer

    def test_enable_metrics_installs_a_fresh_recorder(self):
        previous = get_registry()
        try:
            registry = enable_metrics()
            assert get_registry() is registry
            assert registry.enabled
            assert registry.snapshot() == {}
        finally:
            set_registry(previous)
