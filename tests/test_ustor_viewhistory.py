"""View-history reconstruction (VH) and protocol-derived views."""

from __future__ import annotations

import random

import pytest

from repro.common.errors import ProtocolError
from repro.consistency.weak_fork import validate_weak_fork_linearizability
from repro.ustor.viewhistory import (
    build_client_views,
    merge_vh_records,
    reconstruct_view_history,
)
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts
from repro.workloads.runner import SystemBuilder

from test_ustor_protocol import run_ops


class TestReconstruction:
    def test_single_op_vh_is_itself(self):
        system = SystemBuilder(num_clients=2, seed=1).build()
        run_ops(system, [(0, "write", b"a")])
        records = merge_vh_records(system.clients)
        assert reconstruct_view_history(records, (0, 1)) == ((0, 1),)

    def test_vh_matches_server_schedule(self):
        # Sequential ops: VH of the last op is exactly the schedule.
        system = SystemBuilder(num_clients=3, seed=2).build()
        run_ops(
            system,
            [(0, "write", b"a"), (1, "read", 0), (2, "read", 0), (0, "write", b"b")],
        )
        records = merge_vh_records(system.clients)
        vh = reconstruct_view_history(records, (0, 2))  # C1's second op
        assert vh == ((0, 1), (1, 1), (2, 1), (0, 2))

    def test_vh_prefix_structure(self):
        system = SystemBuilder(num_clients=2, seed=3).build()
        run_ops(system, [(0, "write", b"a"), (1, "read", 0), (0, "write", b"b")])
        records = merge_vh_records(system.clients)
        vh_first = reconstruct_view_history(records, (0, 1))
        vh_last = reconstruct_view_history(records, (0, 2))
        assert vh_last[: len(vh_first)] == vh_first

    def test_missing_record_raises(self):
        with pytest.raises(ProtocolError):
            reconstruct_view_history({}, (0, 1))

    def test_concurrent_ops_appear_in_vh(self):
        # Slow down C1's COMMIT so C2's read sees C1's write in L.
        system = SystemBuilder(num_clients=2, seed=4).build()
        box0, box1 = [], []
        system.clients[0].write(b"w", box0.append)
        system.scheduler.schedule(2.5, system.clients[1].read, 0, box1.append)
        system.network.add_delay("C1", "S", 10.0)
        system.run(until=100)
        assert box0 and box1
        records = merge_vh_records(system.clients)
        vh = reconstruct_view_history(records, (1, 1))
        assert (0, 1) in vh  # the write is in the reader's view history


class TestProtocolViews:
    @pytest.mark.parametrize("seed", range(4))
    def test_views_validate_on_random_runs(self, seed):
        system = SystemBuilder(num_clients=3, seed=seed).build()
        scripts = generate_scripts(
            3, WorkloadConfig(ops_per_client=15), random.Random(seed)
        )
        driver = Driver(system)
        driver.attach_all(scripts)
        assert driver.run_to_completion()
        history = system.history()
        views = build_client_views(history, system.recorder, system.clients)
        assert set(views) <= {0, 1, 2}
        result = validate_weak_fork_linearizability(history, views)
        assert result, result.violation

    def test_views_are_per_client_last_op(self):
        system = SystemBuilder(num_clients=2, seed=9).build()
        run_ops(system, [(0, "write", b"a"), (1, "read", 0)])
        history = system.history()
        views = build_client_views(history, system.recorder, system.clients)
        assert [op.client for op in views[1]] == [0, 1]

    def test_client_without_ops_has_no_view(self):
        system = SystemBuilder(num_clients=3, seed=9).build()
        run_ops(system, [(0, "write", b"a")])
        views = build_client_views(system.history(), system.recorder, system.clients)
        assert 1 not in views and 2 not in views
