"""Batching is an optimization, not a semantic: batched and unbatched
runs of the same seeded workload are equivalent.

The throughput pipeline (``SystemConfig(batching=...)``) may only change
*when machinery runs* — burst delivery events, group-commit WAL appends,
session flush bookkeeping — never what the protocol says.  Per backend
(faust / ustor / cluster) these properties pin:

* **Byte-identical runs.**  On schedules free of same-instant
  cross-client ties (clients staggered by a fraction of the link
  latency, as any real deployment is), batched and unbatched runs
  produce identical per-client operation sequences — kind, register,
  value, protocol timestamp, and times up to the FIFO epsilon — AND
  identical final client versions: vectors and digest chains byte for
  byte.  The digests hash the entire schedule the server showed each
  client, so equality here is equality of the whole protocol view.
* **Tie-break freedom under contention.**  When several clients' bursts
  land at the exact same virtual instant, coalescing may pick a
  different — equally legal — interleaving than the unbatched
  transport's epsilon spacing (the asynchronous network never promised
  cross-link order).  Values and digests may then differ between modes,
  but both runs stay consistent: identical checker verdicts, and the
  streaming incremental checkers agree with the offline ones in both.
* A *timer* flush policy shifts invocation times but never protocol
  content: values, timestamps and verdicts still match the unbatched
  run on staggered schedules.
"""

from __future__ import annotations

import random

import pytest

from repro.api import BatchingPolicy, FaustParams, SystemConfig, open_system
from repro.consistency import (
    attach_incremental_checkers,
    check_causal_consistency,
    check_linearizability,
)
from repro.sim.network import FixedLatency
from repro.workloads.generator import unique_value

BACKENDS = ("ustor", "faust", "cluster")

#: Size-flush policies: every flush happens at submission time, so the
#: virtual-time schedule is identical to the unbatched run.
SYNC_POLICIES = (
    BatchingPolicy(max_batch=1, max_delay=None),
    BatchingPolicy(max_batch=4, max_delay=None),
    BatchingPolicy(max_batch=4, max_delay=None, group_commit=False),
    BatchingPolicy(max_batch=4, max_delay=None, transport=False),
)

#: On a cluster, register routing splits one client's submissions across
#: per-shard session buffers, so a size > 1 leaves remainders parked
#: until the barrier (their invocation correctly moves there).  The
#: byte-identity property on clusters therefore uses immediate flushes —
#: still exercising the full transport + group-commit pipeline — and the
#: bigger sizes are covered by the content-equivalence tests below.
CLUSTER_SYNC_POLICIES = (
    BatchingPolicy(max_batch=1, max_delay=None),
    BatchingPolicy(max_batch=1, max_delay=None, group_commit=False),
    BatchingPolicy(max_batch=1, max_delay=None, transport=False),
)


def _sync_policies(backend: str):
    return CLUSTER_SYNC_POLICIES if backend == "cluster" else SYNC_POLICIES


def _config(backend: str, seed: int, batching) -> SystemConfig:
    return SystemConfig(
        num_clients=4,
        seed=seed,
        latency=FixedLatency(1.0),
        storage="log",
        batching=batching,
        shards=2 if backend == "cluster" else 1,
        faust=FaustParams(enable_dummy_reads=False, enable_probes=False),
    )


def _submit(session, client: int, sequence: int, rng) -> object:
    if rng.random() < 0.5:
        return session.write(unique_value(client, sequence, 20))
    return session.read(rng.randrange(4))


def _collect(system, backend: str, handles, incremental):
    outcomes = [
        (h.kind, h.register,
         bytes(h.result().value) if isinstance(h.result().value, bytes)
         else h.result().value,
         h.result().timestamp)
        for h in handles
    ]
    histories = (
        list(system.shard_histories().values())
        if backend == "cluster"
        else [system.history()]
    )
    per_client_ops = [
        [
            (op.client, op.kind, op.register,
             bytes(op.value) if isinstance(op.value, bytes) else op.value,
             op.timestamp, round(op.invoked_at, 6), round(op.responded_at, 6))
            for client in history.clients()
            for op in history.restrict_to_client(client)
        ]
        for history in histories
    ]
    instances = (
        [inst for proxy in system.clients for inst in proxy.instances]
        if backend == "cluster"
        else list(system.clients)
    )
    versions = [(tuple(i.version.vector), i.version.digests) for i in instances]
    verdicts = [
        (check_linearizability(history).ok, check_causal_consistency(history).ok)
        for history in histories
    ]
    incremental_ok = [
        {name: checker.result().ok for name, checker in attached.items()}
        for attached in incremental
    ]
    return {
        "outcomes": outcomes,
        "ops": per_client_ops,
        "versions": versions,
        "verdicts": verdicts,
        "incremental": incremental_ok,
    }


def _open_with_checkers(backend: str, seed: int, batching):
    system = open_system(_config(backend, seed, batching), backend=backend)
    recorders = (
        [shard.recorder for shard in system.shards]
        if backend == "cluster"
        else [system.recorder]
    )
    incremental = [attach_incremental_checkers(rec) for rec in recorders]
    return system, incremental


def _run_staggered(backend: str, seed: int, batching,
                   phases: int = 3, rounds: int = 8):
    """Clients offset by a fraction of the latency: no cross-client ties.

    ``rounds`` per client per phase is kept a multiple of every
    ``max_batch`` under test, so all flushes are size-triggered at
    submission time — a partial batch would (correctly) not be *invoked*
    until the barrier flushes it, which shifts invocation times.
    """
    system, incremental = _open_with_checkers(backend, seed, batching)
    rng = random.Random(seed)
    sessions = system.sessions()
    handles = []
    for _phase in range(phases):
        for client, session in enumerate(sessions):
            for _ in range(rounds):
                handles.append(_submit(session, client, len(handles), rng))
            # The stagger: the next client's submissions land a hair
            # later, so no two clients' messages ever tie at the server.
            system.run(until=system.now + 0.013)
        for session in sessions:
            session.barrier(timeout=50_000)
        system.run(until=system.now + 0.1)
    return _collect(system, backend, handles, incremental)


def _run_contended(backend: str, seed: int, batching,
                   phases: int = 3, rounds: int = 8):
    """Every client submits at the same instant: maximal tie pressure."""
    system, incremental = _open_with_checkers(backend, seed, batching)
    rng = random.Random(seed)
    sessions = system.sessions()
    handles = []
    for _phase in range(phases):
        for _round in range(rounds):
            for client, session in enumerate(sessions):
                handles.append(_submit(session, client, len(handles), rng))
        for session in sessions:
            session.barrier(timeout=50_000)
    return _collect(system, backend, handles, incremental)


@pytest.mark.parametrize("backend", BACKENDS)
def test_batched_equals_unbatched_byte_identical(backend):
    """Size-flush batching: identical histories, digests and verdicts."""
    seed = 1234
    reference = _run_staggered(backend, seed, None)
    for policy in _sync_policies(backend):
        batched = _run_staggered(backend, seed, policy)
        assert batched["outcomes"] == reference["outcomes"], policy
        assert batched["ops"] == reference["ops"], policy
        assert batched["versions"] == reference["versions"], policy
        assert batched["verdicts"] == reference["verdicts"], policy
        assert batched["incremental"] == reference["incremental"], policy
        assert all(
            ok for shard in batched["incremental"] for ok in shard.values()
        )


@pytest.mark.parametrize("backend", BACKENDS)
def test_contended_ties_stay_consistent(backend):
    """Under same-instant contention the tie-break may differ, but both
    runs are consistent and the streaming checkers agree."""
    seed = 99
    reference = _run_contended(backend, seed, None)
    batched = _run_contended(backend, seed, BatchingPolicy(max_batch=4))
    assert batched["verdicts"] == reference["verdicts"]
    assert all(ok for run in (reference, batched)
               for shard in run["incremental"] for ok in shard.values())
    # Per-client timestamps are positional and survive any tie-break.
    assert [o[3] for o in batched["outcomes"]] == [
        o[3] for o in reference["outcomes"]
    ]


@pytest.mark.parametrize("backend", BACKENDS)
def test_timer_flush_preserves_protocol_content(backend):
    """A timer flush shifts timing, never values/timestamps/verdicts."""
    seed = 77
    reference = _run_staggered(backend, seed, None)
    batched = _run_staggered(
        backend, seed, BatchingPolicy(max_batch=64, max_delay=0.003)
    )
    assert batched["outcomes"] == reference["outcomes"]
    assert batched["verdicts"] == reference["verdicts"]
    assert batched["incremental"] == reference["incremental"]


@pytest.mark.fuzz
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", [3, 11, 42, 1001, 2026])
def test_batched_equals_unbatched_seed_sweep(backend, seed):
    """The byte-identity property holds across a seed sweep (fuzz tier)."""
    batch = 1 if backend == "cluster" else 2
    reference = _run_staggered(backend, seed, None, phases=4, rounds=8)
    batched = _run_staggered(
        backend, seed, BatchingPolicy(max_batch=batch, max_delay=None),
        phases=4, rounds=8,
    )
    assert batched["outcomes"] == reference["outcomes"]
    assert batched["ops"] == reference["ops"]
    assert batched["versions"] == reference["versions"]
    assert batched["verdicts"] == reference["verdicts"]


def test_batching_rejected_on_baselines():
    """The baseline backends fail loudly rather than silently unbatched."""
    from repro.common.errors import ConfigurationError

    for backend in ("lockstep", "unchecked"):
        with pytest.raises(ConfigurationError):
            open_system(
                SystemConfig(num_clients=2, batching=BatchingPolicy()),
                backend=backend,
            )


def test_batching_policy_validation():
    """Config normalization and validation of the batching knob."""
    from repro.common.errors import ConfigurationError

    assert SystemConfig(num_clients=2).batching is None
    assert isinstance(
        SystemConfig(num_clients=2, batching=True).batching, BatchingPolicy
    )
    assert SystemConfig(num_clients=2, batching=False).batching is None
    with pytest.raises(ConfigurationError):
        SystemConfig(num_clients=2, batching="yes")
    with pytest.raises(ConfigurationError):
        BatchingPolicy(max_batch=0)
    with pytest.raises(ConfigurationError):
        BatchingPolicy(max_delay=-1.0)


def test_driver_via_sessions_engages_batching():
    """The workload driver can route through sessions, which is how the
    CLI engages the batch buffer (a raw client call would bypass it)."""
    from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts

    system = open_system(
        _config("ustor", 5, BatchingPolicy(max_batch=4)), backend="ustor"
    )
    scripts = generate_scripts(
        4,
        WorkloadConfig(ops_per_client=6, read_fraction=0.5, mean_think_time=1.0),
        random.Random(5),
    )
    driver = Driver(system, via_sessions=True)
    driver.attach_all(scripts)
    system.run(until=500)
    assert driver.stats.total_completed() == driver.stats.total_planned() == 24
    # The pipeline actually ran: bursts coalesced and wakeups batched.
    assert system.raw.network.messages_coalesced > 0
    assert system.server.group_commits > 0


def test_driver_via_sessions_needs_session_surface():
    from repro.common.errors import ConfigurationError
    from repro.workloads.generator import Driver
    from repro.workloads.runner import SystemBuilder

    raw = SystemBuilder(num_clients=2, seed=1).build()  # no .session()
    with pytest.raises(ConfigurationError):
        Driver(raw, via_sessions=True)


def test_wait_for_stability_flushes_parked_writes():
    """A blocking stability wait issues what it waits on, even under a
    barrier-only flush policy (regression: burned the whole timeout)."""
    system = open_system(
        SystemConfig(
            num_clients=2,
            seed=11,
            batching=BatchingPolicy(max_batch=64, max_delay=None),
        ),
        backend="faust",
    )
    session = system.session(0)
    session.write(b"stable-me")
    assert session.buffered == 1  # parked, not yet issued
    assert session.wait_for_stability(1, timeout=500)
    assert session.buffered == 0


def test_group_commit_crash_recovery_matches_unbatched():
    """Crash-recovery through batched 'B' WAL frames: the server comes
    back byte-identical to its pre-crash state, the batch frames really
    were written and replayed, and the run ends exactly where the
    unbatched run with the same outage does."""

    def run(batching):
        config = SystemConfig(
            num_clients=4,
            seed=71,
            latency=FixedLatency(1.0),
            storage="log",
            batching=batching,
            server_outages=((9.5, 4.0),),
            faust=FaustParams(enable_dummy_reads=False, enable_probes=False),
        )
        system = open_system(config, backend="faust")
        rng = random.Random(71)
        sessions = system.sessions()
        handles = []
        for phase in range(3):  # ops in flight when the outage hits
            for client, session in enumerate(sessions):
                for _ in range(4):
                    handles.append(_submit(session, client, len(handles), rng))
                system.run(until=system.now + 0.013)
            for session in sessions:
                session.barrier(timeout=50_000)
            system.run(until=system.now + 0.1)
        history = system.history()
        return system, [
            (h.kind, h.register, h.result().value, h.result().timestamp)
            for h in handles
        ], (check_linearizability(history).ok, check_causal_consistency(history).ok)

    reference, ref_outcomes, ref_verdicts = run(None)
    batched, outcomes, verdicts = run(BatchingPolicy(max_batch=4, max_delay=None))

    server = batched.server
    engine = server.engine
    assert server.restarts == 1
    # Group commit actually produced batch frames, and recovery replayed
    # WAL entries back to the exact pre-crash state.
    assert engine.group_commit_batches > 0
    assert engine.group_commit_records > engine.group_commit_batches
    assert server.last_recovery_state == server.last_pre_crash_state
    assert not any(getattr(c, "faust_failed", False) for c in batched.clients)
    # Identical protocol content and verdicts to the unbatched outage run.
    assert outcomes == ref_outcomes
    assert verdicts == ref_verdicts == (True, True)
    assert [tuple(c.version.vector) for c in batched.clients] == [
        tuple(c.version.vector) for c in reference.clients
    ]
    assert [c.version.digests for c in batched.clients] == [
        c.version.digests for c in reference.clients
    ]


def test_auditor_rejects_empty_check_set():
    from repro.common.errors import ConfigurationError

    system = open_system(SystemConfig(num_clients=2, seed=1), backend="ustor")
    with pytest.raises(ConfigurationError):
        system.attach_audit(every=5.0, checks=())


def test_poison_message_does_not_starve_the_drain():
    """A handler exception mid-group-commit must not drop the rest of the
    inbox: applied transitions are logged, the poison delivery is
    consumed (as its own event would be unbatched), and the tail drains
    in a follow-up wakeup (regression)."""
    from repro.common.errors import ProtocolError
    from repro.ustor.messages import CommitMessage

    system = open_system(
        _config("ustor", 3, BatchingPolicy(max_batch=1, max_delay=None)),
        backend="ustor",
    )
    session = system.session(0)
    handle = session.write(b"before-poison")
    handle.result(timeout=2_000)
    server = system.server
    submits_before = server.submits_handled
    # Same-turn injection: a poison COMMIT (non-client source) lands in
    # the SAME drain batch as a real SUBMIT queued behind it.
    zero = system.clients[1].version
    poison = CommitMessage(version=zero, commit_sig=b"x", proof_sig=b"y")
    server.on_message("NOT-A-CLIENT", poison)
    from repro.common.types import OpKind
    from repro.crypto.hashing import hash_register_value
    from repro.ustor.messages import InvocationTuple, SubmitMessage

    signer = system.keystore.signer(1)
    real = SubmitMessage(
        timestamp=1,
        invocation=InvocationTuple(
            client=1,
            opcode=OpKind.WRITE,
            register=1,
            submit_sig=signer.sign("SUBMIT", OpKind.WRITE, 1, 1),
        ),
        value=b"behind-the-poison",
        data_sig=signer.sign("DATA", 1, hash_register_value(b"behind-the-poison")),
    )
    server.on_message("C2", real)
    with pytest.raises(ProtocolError):
        system.run(until=system.now + 50)
    # The drain died on the poison message, but the tail was re-queued
    # and a fresh drain scheduled: resuming the simulation processes the
    # SUBMIT that was queued behind the poison.
    system.run(until=system.now + 50)
    assert server.submits_handled == submits_before + 1
    # ...and the session keeps working afterwards.
    assert session.write(b"after-poison").result(timeout=2_000).timestamp == 2
