"""Per-line detection coverage: one adversary per check of Algorithm 1."""

from __future__ import annotations

from repro.ustor.byzantine_targeted import (
    BadReaderVersionServer,
    FakePendingServer,
    LaggingReaderVersionServer,
    SelfEchoServer,
    StaleReadServer,
    WrongProofServer,
)
from repro.workloads.runner import SystemBuilder

from test_ustor_protocol import run_ops


def build(server_factory, n=3, seed=1):
    return SystemBuilder(num_clients=n, seed=seed, server_factory=server_factory).build()


class TestLine41WrongProof:
    def test_detected_under_concurrency(self):
        system = build(lambda n, name: WrongProofServer(n, name=name))
        c0, c1 = system.clients[0], system.clients[1]
        # C1 commits once (so its digest entry is non-BOTTOM)...
        done = []
        c0.write(b"first", done.append)
        assert system.run_until(lambda: len(done) == 1, timeout=50)
        # ...then submits again but its COMMIT crawls, so the operation
        # stays in L while C2 operates.
        c0.write(b"second", done.append)
        system.scheduler.schedule(0.1, system.network.add_delay, "C1", "S", 500.0)
        box = []
        system.scheduler.schedule(3.0, c1.read, 0, box.append)
        system.run(until=100)
        assert c1.failed
        assert "line 41" in c1.fail_reason

    def test_not_consulted_without_concurrency(self):
        # Sequential operations never look at P: the corruption is latent.
        system = build(lambda n, name: WrongProofServer(n, name=name))
        outcomes = run_ops(system, [(0, "write", b"a"), (1, "read", 0)])
        assert outcomes[1].value == b"a"
        assert not any(c.failed for c in system.clients)


class TestLine43FakePending:
    def test_fabricated_tuple_detected(self):
        system = build(lambda n, name: FakePendingServer(n, ghost_client=2, name=name))
        box = []
        system.clients[0].write(b"x", box.append)
        system.run(until=50)
        assert system.clients[0].failed
        assert "line 43" in system.clients[0].fail_reason
        assert not box


class TestLine43SelfEcho:
    def test_own_operation_as_concurrent_detected(self):
        # The signature in the echoed tuple is GENUINE; only the k = i
        # check stands between the server and a double-counted operation.
        system = build(lambda n, name: SelfEchoServer(n, name=name))
        box = []
        system.clients[0].write(b"x", box.append)
        system.run(until=50)
        assert system.clients[0].failed
        assert "line 43" in system.clients[0].fail_reason


class TestLine49BadReaderVersion:
    def test_mangled_writer_version_detected(self):
        system = build(lambda n, name: BadReaderVersionServer(n, 0, name=name))
        run_ops(system, [(0, "write", b"v")])
        box = []
        system.clients[1].read(0, box.append)
        system.run(until=50)
        assert system.clients[1].failed
        assert "line 49" in system.clients[1].fail_reason

    def test_writes_unaffected(self):
        system = build(lambda n, name: BadReaderVersionServer(n, 0, name=name))
        outcomes = run_ops(system, [(0, "write", b"v"), (0, "write", b"w")])
        assert len(outcomes) == 2 and not system.clients[0].failed


class TestLine51StaleRead:
    def test_authentic_but_stale_value_detected(self):
        system = build(lambda n, name: StaleReadServer(n, 0, name=name))
        run_ops(system, [(0, "write", b"old"), (0, "write", b"new")])
        box = []
        system.clients[1].read(0, box.append)
        system.run(until=50)
        reader = system.clients[1]
        assert reader.failed
        # The DATA-signature verified (the value is genuine!); what failed
        # is freshness.
        assert "line 51" in reader.fail_reason
        assert not box

    def test_first_read_before_second_write_is_fine(self):
        system = build(lambda n, name: StaleReadServer(n, 0, name=name))
        outcomes = run_ops(system, [(0, "write", b"old"), (1, "read", 0)])
        assert outcomes[1].value == b"old"
        assert not system.clients[1].failed


class TestLine52LaggingVersion:
    def test_two_generations_behind_detected(self):
        system = build(lambda n, name: LaggingReaderVersionServer(n, 0, name=name))
        run_ops(
            system,
            [(0, "write", b"g1"), (0, "write", b"g2"), (0, "write", b"g3")],
        )
        box = []
        system.clients[1].read(0, box.append)
        system.run(until=50)
        assert system.clients[1].failed
        assert "line 52" in system.clients[1].fail_reason

    def test_one_generation_behind_is_legal(self):
        # V^j[j] = t_j - 1 is explicitly allowed (the COMMIT may be in
        # flight): a server doing that must NOT be flagged.
        system = build(lambda n, name: LaggingReaderVersionServer(n, 0, name=name))
        outcomes = run_ops(system, [(0, "write", b"g1"), (0, "write", b"g2"), (1, "read", 0)])
        assert outcomes[2].value == b"g2"
        assert not system.clients[1].failed


class TestDetectionMatrixSummary:
    def test_every_line_has_an_adversary(self):
        """Documents the full coverage map (see module docstring)."""
        covered_lines = {35, 36, 41, 43, 49, 50, 51, 52}
        # Lines 35/36/50 are covered in test_ustor_byzantine.py; the rest
        # here.  This test pins the intent: extend it when adding checks.
        assert covered_lines == {35, 36, 41, 43, 49, 50, 51, 52}
