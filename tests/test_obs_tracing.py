"""Unit tests for causal trace ids and the span log (``repro.obs.tracing``).

Trace ids must be pure functions of protocol state (client index and
protocol timestamp) — that is what keeps ``repro replay --check``
byte-identical when ids ride the wire — and the span log must export
both grep-friendly JSONL and viewer-ready Chrome trace events.
"""

from __future__ import annotations

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.obs.tracing import (
    TIMESTAMP_BITS,
    SpanLog,
    make_trace_id,
    trace_client,
    trace_timestamp,
)


class TestTraceIds:
    def test_id_is_a_pure_function_of_the_pair(self):
        assert make_trace_id(0, 1) == 1
        assert make_trace_id(1, 1) == (1 << TIMESTAMP_BITS) | 1
        assert make_trace_id(2, 7) == make_trace_id(2, 7)

    def test_round_trip(self):
        trace_id = make_trace_id(5, 1234)
        assert trace_client(trace_id) == 5
        assert trace_timestamp(trace_id) == 1234

    def test_negative_operands_rejected(self):
        with pytest.raises(ConfigurationError):
            make_trace_id(-1, 0)
        with pytest.raises(ConfigurationError):
            make_trace_id(0, -1)


class TestSpanLog:
    def test_span_and_instant_records(self):
        log = SpanLog()
        span = log.span("op:write", ts=1.0, dur=0.5, trace_id=7,
                        args={"client": 0})
        instant = log.instant("fail", ts=2.0, trace_id=7, proc="client")
        assert len(log) == 2
        assert span["ph"] == "X" and span["dur"] == 0.5
        assert instant["ph"] == "i" and "dur" not in instant
        assert log.records == [span, instant]

    def test_for_trace_filters_by_id(self):
        log = SpanLog()
        log.instant("a", ts=0.0, trace_id=1)
        log.instant("b", ts=1.0, trace_id=2)
        log.instant("c", ts=2.0, trace_id=1)
        assert [r["name"] for r in log.for_trace(1)] == ["a", "c"]

    def test_jsonl_round_trip(self, tmp_path):
        log = SpanLog()
        log.span("op:read", ts=0.25, dur=1.0, trace_id=3)
        path = tmp_path / "spans.jsonl"
        assert log.write_jsonl(path) == 1
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["trace_id"] == 3

    def test_chrome_events_scale_and_layout(self):
        log = SpanLog()
        log.span("op:write", ts=1.0, dur=0.5,
                 trace_id=make_trace_id(2, 9), proc="client")
        log.instant("server:submit", ts=1.2,
                    trace_id=make_trace_id(2, 9), proc="server:S")
        events = log.chrome_events()
        metas = [e for e in events if e["ph"] == "M"]
        # One process_name metadata event per distinct proc.
        assert {m["args"]["name"] for m in metas} == {"client", "server:S"}
        span = next(e for e in events if e["ph"] == "X")
        assert span["ts"] == pytest.approx(1_000_000.0)
        assert span["dur"] == pytest.approx(500_000.0)
        assert span["tid"] == 2  # the trace id's client index is the row
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["s"] == "t"
        assert "dur" not in instant
        # The two reporting components land in different viewer processes.
        assert span["pid"] != instant["pid"]

    def test_write_chrome_is_loadable_json(self, tmp_path):
        log = SpanLog()
        log.instant("x", ts=0.0)
        path = tmp_path / "trace.json"
        count = log.write_chrome(path)
        data = json.loads(path.read_text())
        assert len(data["traceEvents"]) == count
