"""Whole-system determinism: identical seeds give identical runs.

DESIGN.md §5 makes determinism a requirement; these tests pin it at the
strongest observable level — full message traces and notification logs —
for plain USTOR, FAUST (timers, probes, offline traffic included), and a
Byzantine deployment.
"""

from __future__ import annotations

import random

from repro.ustor.byzantine import SplitBrainServer
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts
from repro.workloads.runner import SystemBuilder


def trace_fingerprint(system):
    messages = [
        (m.sent_at, m.delivered_at, m.src, m.dst, m.kind, m.size)
        for m in system.trace.messages
    ]
    notes = [(n.time, n.source, n.kind, repr(n.payload)) for n in system.trace.notes]
    history = [
        (op.client, op.kind.value, op.register, op.invoked_at, op.responded_at)
        for op in system.history()
    ]
    return messages, notes, history


def run_ustor(seed):
    system = SystemBuilder(num_clients=3, seed=seed).build()
    scripts = generate_scripts(
        3, WorkloadConfig(ops_per_client=8, mean_think_time=1.0), random.Random(seed)
    )
    driver = Driver(system)
    driver.attach_all(scripts)
    system.run(until=300)
    return trace_fingerprint(system)


def run_faust(seed):
    system = SystemBuilder(num_clients=3, seed=seed).build_faust(
        dummy_read_period=3.0, probe_check_period=4.0, delta=12.0
    )
    scripts = generate_scripts(
        3, WorkloadConfig(ops_per_client=5, mean_think_time=1.0), random.Random(seed)
    )
    driver = Driver(system)
    driver.attach_all(scripts)
    system.run(until=200)
    return trace_fingerprint(system)


def run_attack(seed):
    system = SystemBuilder(
        num_clients=4,
        seed=seed,
        server_factory=lambda n, name: SplitBrainServer(
            n, groups=[{0, 1}, {2, 3}], fork_time=10.0, name=name
        ),
    ).build_faust(delta=15.0, probe_check_period=5.0)
    scripts = generate_scripts(
        4, WorkloadConfig(ops_per_client=5, mean_think_time=1.0), random.Random(seed)
    )
    driver = Driver(system)
    driver.attach_all(scripts)
    system.run(until=400)
    return trace_fingerprint(system)


class TestDeterminism:
    def test_ustor_trace_identical(self):
        assert run_ustor(7) == run_ustor(7)

    def test_faust_trace_identical(self):
        assert run_faust(7) == run_faust(7)

    def test_attack_trace_identical(self):
        assert run_attack(7) == run_attack(7)

    def test_different_seeds_differ(self):
        assert run_faust(7) != run_faust(8)

    def test_notifications_deterministic(self):
        _m1, notes1, _h1 = run_faust(9)
        _m2, notes2, _h2 = run_faust(9)
        assert notes1 == notes2
        assert any(kind == "stable" for _t, _s, kind, _p in notes1)
