"""The multi-writer key-value store composed over FAUST."""

from __future__ import annotations

import pytest

from repro.apps.kvstore import KvStore, KvUpdate, _deserialize_log, _serialize_log
from repro.common.errors import ProtocolError
from repro.faust.service import OperationFailed
from repro.ustor.byzantine import SplitBrainServer, TamperingServer
from repro.workloads.runner import SystemBuilder


def build_store_system(n=3, seed=9, **faust_kwargs):
    faust_kwargs.setdefault("dummy_read_period", 3.0)
    return SystemBuilder(num_clients=n, seed=seed).build_faust(**faust_kwargs)


class TestSerialization:
    def test_roundtrip(self):
        log = [KvUpdate("a", 1, 1, 0), KvUpdate("b", None, 2, 0)]
        assert _deserialize_log(_serialize_log(log)) == log

    def test_malformed_rejected(self):
        with pytest.raises(ProtocolError):
            _deserialize_log(b"not json")
        with pytest.raises(ProtocolError):
            _deserialize_log(b'{"wrong": "shape"}')

    def test_values_are_json(self):
        log = [KvUpdate("k", {"nested": [1, 2]}, 1, 0)]
        assert _deserialize_log(_serialize_log(log)) == log


class TestBasicMap:
    def test_put_get(self):
        system = build_store_system()
        alice = KvStore(system, 0)
        alice.put("color", "blue")
        assert alice.get("color") == "blue"

    def test_cross_client_visibility(self):
        system = build_store_system()
        alice, bob = KvStore(system, 0), KvStore(system, 1)
        alice.put("k", "v")
        assert bob.get("k") == "v"

    def test_multi_writer_merge(self):
        system = build_store_system()
        alice, bob = KvStore(system, 0), KvStore(system, 1)
        alice.put("a", 1)
        bob.put("b", 2)
        assert alice.snapshot() == {"a": 1, "b": 2}
        assert bob.snapshot() == {"a": 1, "b": 2}

    def test_last_writer_wins_after_observation(self):
        system = build_store_system()
        alice, bob = KvStore(system, 0), KvStore(system, 1)
        alice.put("k", "from-alice")
        bob.snapshot()  # bob observes alice's update (clock catches up)
        bob.put("k", "from-bob")
        assert alice.get("k") == "from-bob"

    def test_delete(self):
        system = build_store_system()
        alice, bob = KvStore(system, 0), KvStore(system, 1)
        alice.put("k", "v")
        bob.snapshot()
        bob.put("other", 1)
        alice.delete("k")
        assert bob.snapshot() == {"other": 1}

    def test_get_default(self):
        system = build_store_system()
        alice = KvStore(system, 0)
        assert alice.get("missing", default=42) == 42

    def test_overwrite_same_writer(self):
        system = build_store_system()
        alice = KvStore(system, 0)
        alice.put("k", 1)
        alice.put("k", 2)
        assert alice.get("k") == 2


class TestFailAwareness:
    def test_updates_become_stable(self):
        system = build_store_system()
        alice = KvStore(system, 0)
        t = alice.put("doc", "v1")
        assert alice.wait_until_stable(t, timeout=3_000)

    def test_tampering_surfaces_as_failure(self):
        system = SystemBuilder(
            num_clients=2,
            seed=10,
            server_factory=lambda n, name: TamperingServer(n, 0, name=name),
        ).build_faust(dummy_read_period=1_000.0, probe_check_period=1_000.0)
        alice, bob = KvStore(system, 0), KvStore(system, 1)
        alice.put("k", "v")
        with pytest.raises(OperationFailed):
            bob.snapshot()
        assert bob.failed

    def test_split_brain_divergence_visible_then_detected(self):
        system = SystemBuilder(
            num_clients=2,
            seed=11,
            server_factory=lambda n, name: SplitBrainServer(
                n, groups=[{0}, {1}], fork_time=0.0, name=name
            ),
        ).build_faust(dummy_read_period=5.0, probe_check_period=4.0, delta=15.0)
        alice, bob = KvStore(system, 0), KvStore(system, 1)
        alice.put("k", "alice-version")
        bob.put("k", "bob-version")
        # Forked: each sees only its own branch.
        assert alice.get("k") == "alice-version"
        assert bob.get("k") == "bob-version"
        # Background probing exposes the fork at both clients.
        system.run(until=system.now + 600)
        assert system.clients[0].faust_failed and system.clients[1].faust_failed
