"""Causal consistency (Definition 3): hand cases + exhaustive cross-check."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CheckerError
from repro.common.types import BOTTOM
from repro.consistency.causal import (
    check_causal_consistency,
    check_causal_exhaustive,
)

from histbuild import h, r, w
from test_consistency_linearizability import _random_history


class TestCausallyConsistent:
    def test_empty(self):
        assert check_causal_consistency(h())

    def test_sequential(self):
        assert check_causal_consistency(h(w(0, b"a", 0, 1), r(1, 0, b"a", 2, 3)))

    def test_stale_read_without_causal_path_is_causal(self):
        # C2 reads an old value long after a newer write completed: not
        # linearizable, but causally consistent — C2 never observed
        # anything that depends on the newer write.
        hist = h(
            w(0, b"a", 0, 1),
            w(0, b"b", 2, 3),
            r(1, 0, b"a", 10, 11),
        )
        assert check_causal_consistency(hist)

    def test_figure3_history_is_causal(self):
        hist = h(w(0, b"u", 0, 1), r(1, 0, BOTTOM, 2, 3), r(1, 0, b"u", 4, 5))
        assert check_causal_consistency(hist)

    def test_clients_may_disagree_on_concurrent_write_order(self):
        # Classic causal-but-not-sequentially-consistent pattern.
        hist = h(
            w(0, b"a", 0, 1),
            w(1, b"b", 0, 1),
            r(2, 0, b"a", 2, 3),
            r(2, 1, BOTTOM, 4, 5),
            r(3, 1, b"b", 2, 3),
            r(3, 0, BOTTOM, 4, 5),
        )
        assert check_causal_consistency(hist)


class TestCausalViolations:
    def test_fabricated_read(self):
        result = check_causal_consistency(h(r(0, 1, b"ghost", 0, 1)))
        assert not result
        assert "never written" in result.violation

    def test_causally_overwritten_read(self):
        # C1 writes a then b (program order: a -> b causally).  C2 reads b
        # and *then* reads a: the write of b causally precedes the second
        # read via C2's own first read.
        hist = h(
            w(0, b"a", 0, 1),
            w(0, b"b", 2, 3),
            r(1, 0, b"b", 4, 5),
            r(1, 0, b"a", 6, 7),
        )
        result = check_causal_consistency(hist)
        assert not result
        assert "causally overwritten" in result.violation

    def test_bottom_read_after_causally_known_write(self):
        # C2 read C1's write, wrote its own value, then read BOTTOM from
        # C1's register: the write causally precedes the read.
        hist = h(
            w(0, b"a", 0, 1),
            r(1, 0, b"a", 2, 3),
            r(1, 0, BOTTOM, 4, 5),
        )
        result = check_causal_consistency(hist)
        assert not result

    def test_own_writes_must_be_observed(self):
        # A client reading its own register must see its own latest write
        # (program order is causal).
        hist = h(w(0, b"a", 0, 1), r(0, 0, BOTTOM, 2, 3))
        assert not check_causal_consistency(hist)

    def test_cycle_is_violation(self):
        hist = h(
            r(0, 1, b"y", 0, 1),
            w(0, b"x", 2, 3),
            r(1, 0, b"x", 4, 5),
            w(1, b"y", 6, 7),
        )
        result = check_causal_consistency(hist)
        assert not result
        assert "cycle" in result.violation


class TestExhaustive:
    def test_witness_views_per_client(self):
        hist = h(w(0, b"a", 0, 1), r(1, 0, b"a", 2, 3))
        result = check_causal_exhaustive(hist)
        assert result
        assert set(result.witness) == {0, 1}

    def test_cap(self):
        ops = [w(0, bytes([i]), 2 * i, 2 * i + 1) for i in range(10)]
        with pytest.raises(CheckerError):
            check_causal_exhaustive(h(*ops), max_ops=5)

    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_axiomatic_equals_exhaustive(self, seed):
        rng = random.Random(seed)
        hist = _random_history(rng, num_clients=2, max_ops=6)
        fast = check_causal_consistency(hist)
        slow = check_causal_exhaustive(hist)
        assert fast.ok == slow.ok, (
            f"disagreement on seed {seed}:\n{hist.describe()}\n"
            f"fast={fast}\nslow={slow}"
        )

    def test_seeded_regression_batch(self):
        for seed in range(150):
            hist = _random_history(random.Random(seed), 2, 5)
            fast = check_causal_consistency(hist).ok
            slow = check_causal_exhaustive(hist).ok
            assert fast == slow, f"seed {seed}"


class TestRelationBetweenNotions:
    def test_linearizable_implies_causal_on_samples(self):
        from repro.consistency.linearizability import check_linearizability

        for seed in range(200):
            hist = _random_history(random.Random(seed), 3, 7)
            if check_linearizability(hist).ok:
                assert check_causal_consistency(hist).ok, f"seed {seed}"
