"""The offline channel: eventual delivery across disconnections."""

from __future__ import annotations

import pytest

from repro.common.errors import ChannelError
from repro.sim.network import FixedLatency
from repro.sim.offline import OfflineChannel
from repro.sim.process import Node
from repro.sim.scheduler import Scheduler


class Recorder(Node):
    def __init__(self, name):
        super().__init__(name)
        self.received = []

    def on_message(self, src, message):
        self.received.append((src, message, self.now))


def make_offline(latency=5.0, seed=0):
    sched = Scheduler(seed=seed)
    channel = OfflineChannel(sched, latency=FixedLatency(latency))
    a, b = Recorder("A"), Recorder("B")
    # Nodes must be network-bound for .now; the offline channel itself
    # provides binding via a tiny shim network here.
    from repro.sim.network import Network

    net = Network(sched)
    net.register(a)
    net.register(b)
    channel.register(a)
    channel.register(b)
    return sched, channel, a, b


class TestOnlineDelivery:
    def test_delivers_when_online(self):
        sched, channel, a, b = make_offline()
        channel.send("A", "B", "hi")
        sched.run()
        assert b.received == [("A", "hi", 5.0)]

    def test_fifo_per_pair(self):
        sched, channel, a, b = make_offline()
        for i in range(5):
            channel.send("A", "B", i)
        sched.run()
        assert [m for _, m, _ in b.received] == [0, 1, 2, 3, 4]

    def test_unknown_member_rejected(self):
        sched, channel, a, _b = make_offline()
        with pytest.raises(ChannelError):
            channel.send("A", "Z", "hi")

    def test_double_registration_rejected(self):
        sched, channel, a, _b = make_offline()
        with pytest.raises(ChannelError):
            channel.register(a)


class TestOfflineBuffering:
    def test_held_while_offline(self):
        sched, channel, a, b = make_offline()
        channel.set_online("B", False)
        channel.send("A", "B", "hi")
        sched.run(until=100.0)
        assert b.received == []
        assert channel.mailbox_depth("B") == 1

    def test_flushed_on_reconnect(self):
        sched, channel, a, b = make_offline()
        channel.set_online("B", False)
        channel.send("A", "B", "hi")
        sched.run(until=50.0)
        channel.set_online("B", True)
        assert b.received and b.received[0][1] == "hi"
        assert b.received[0][2] == 50.0  # delivered at reconnection time
        assert channel.mailbox_depth("B") == 0

    def test_sender_may_be_offline(self):
        # Posting while disconnected models queueing mail locally.
        sched, channel, a, b = make_offline()
        channel.set_online("A", False)
        channel.send("A", "B", "hi")
        sched.run()
        assert b.received

    def test_order_preserved_across_offline_window(self):
        sched, channel, a, b = make_offline()
        channel.send("A", "B", 1)
        channel.set_online("B", False)
        channel.send("A", "B", 2)
        channel.send("A", "B", 3)
        sched.run(until=30.0)
        channel.set_online("B", True)
        sched.run()
        assert [m for _, m, _ in b.received] == [1, 2, 3]

    def test_is_online_reflects_state(self):
        _sched, channel, _a, _b = make_offline()
        assert channel.is_online("A")
        channel.set_online("A", False)
        assert not channel.is_online("A")

    def test_crashed_recipient_gets_nothing_on_flush(self):
        sched, channel, a, b = make_offline()
        channel.set_online("B", False)
        channel.send("A", "B", "hi")
        sched.run(until=20.0)
        b.crash()
        channel.set_online("B", True)
        sched.run()
        assert b.received == []
