"""The streaming incremental checkers agree with the offline ones.

Three layers of evidence:

* handcrafted histories hitting each violation rule (value from the
  future, stale read, new/old inversion, causally-overwritten read,
  causal cycle, fabricated value), replayed through
  :func:`~repro.consistency.incremental.replay_history` and compared
  against the offline verdict;
* randomized protocol runs — honest and Byzantine — with the checkers
  subscribed to the *live* recorder, compared against the offline
  checkers on the final history (and at every periodic audit via
  :class:`~repro.workloads.runner.IncrementalAuditor`);
* the O(delta) accounting: each streamed operation is examined once,
  audits read verdicts in O(1).
"""

from __future__ import annotations

import random

import pytest

from histbuild import h, r, w
from repro.api import FaustParams, SystemConfig, open_system
from repro.baselines.unchecked import LyingUncheckedServer
from repro.common.types import BOTTOM
from repro.consistency import (
    IncrementalCausalChecker,
    IncrementalLinearizabilityChecker,
    attach_incremental_checkers,
    check_causal_consistency,
    check_linearizability,
    replay_history,
)
from repro.ustor.byzantine import Fig3Server, SplitBrainServer, TamperingServer
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts


def _both(history):
    lin = replay_history(IncrementalLinearizabilityChecker(), history)
    causal = replay_history(IncrementalCausalChecker(), history)
    return lin, causal


# --------------------------------------------------------------------- #
# Handcrafted rule hits (incremental verdict == offline verdict)
# --------------------------------------------------------------------- #


class TestHandcrafted:
    def test_clean_sequential_history_passes(self):
        history = h(
            w(0, b"a", 0, 1),
            r(1, 0, b"a", 2, 3),
            w(0, b"b", 4, 5),
            r(1, 0, b"b", 6, 7),
        )
        lin, causal = _both(history)
        assert lin.ok and causal.ok
        assert check_linearizability(history).ok

    def test_value_from_the_future(self):
        history = h(r(1, 0, b"a", 0, 1), w(0, b"a", 2, 3))
        lin, _causal = _both(history)
        assert not lin.ok
        assert not check_linearizability(history).ok
        assert "future" in lin.violation

    def test_stale_read(self):
        history = h(
            w(0, b"a", 0, 1),
            w(0, b"b", 2, 3),
            r(1, 0, b"a", 4, 5),  # b completed before the read was invoked
        )
        lin, _ = _both(history)
        assert not lin.ok
        assert not check_linearizability(history).ok
        assert "stale" in lin.violation

    def test_stale_bottom_read(self):
        history = h(w(0, b"a", 0, 1), r(1, 0, BOTTOM, 2, 3))
        lin, causal = _both(history)
        assert not lin.ok
        assert not check_linearizability(history).ok
        # Causally the BOTTOM read is fine: the write is not in C2's past.
        assert causal.ok == check_causal_consistency(history).ok

    def test_new_old_inversion(self):
        # w_b is still in flight when r2 is invoked (so r2 is not stale),
        # yet r1 — which precedes r2 — already observed the newer value.
        history = h(
            w(0, b"a", 0, 1),
            w(0, b"b", 2, 10),
            r(1, 0, b"b", 2.5, 4),   # sees the new value...
            r(2, 0, b"a", 5, 6),     # ...then a later read sees the old one
        )
        lin, _ = _both(history)
        assert not lin.ok
        assert not check_linearizability(history).ok
        assert "inversion" in lin.violation

    def test_causally_overwritten_read(self):
        # C2 reads b (so a -> b is in its past), then reads a again.
        history = h(
            w(0, b"a", 0, 1),
            w(0, b"b", 2, 3),
            r(1, 0, b"b", 4, 5),
            r(1, 0, b"a", 6, 7),
        )
        _, causal = _both(history)
        assert not causal.ok
        assert not check_causal_consistency(history).ok
        assert "overwritten" in causal.violation

    def test_causally_overwritten_bottom(self):
        history = h(
            w(0, b"a", 0, 1),
            r(1, 0, b"a", 2, 3),
            r(1, 0, BOTTOM, 4, 5),
        )
        _, causal = _both(history)
        assert not causal.ok
        assert not check_causal_consistency(history).ok

    def test_causal_cycle(self):
        # r1 reads v before anyone wrote it; the eventual writer causally
        # depends on r1 — reads-from closes a causal cycle.
        history = h(
            r(0, 1, b"v", 0, 1),
            w(0, b"u", 2, 3),
            r(1, 0, b"u", 4, 5),
            w(1, b"v", 6, 7),
        )
        _, causal = _both(history)
        offline = check_causal_consistency(history)
        assert not causal.ok and not offline.ok
        assert "cycle" in causal.violation

    def test_fabricated_value(self):
        history = h(w(0, b"a", 0, 1), r(1, 0, b"zzz", 2, 3))
        lin, causal = _both(history)
        assert not lin.ok and not causal.ok
        assert not check_linearizability(history).ok
        assert not check_causal_consistency(history).ok
        assert "never" in lin.violation and "never" in causal.violation

    def test_incomplete_ops_match_offline_semantics(self):
        # A pending read is dropped; a pending write may have been read.
        history = h(
            w(0, b"a", 0, None),       # write still in flight
            r(1, 0, b"a", 2, 3),       # legally returns it
            r(2, 0, None, 4, None),    # incomplete read: ignored
        )
        lin, causal = _both(history)
        assert lin.ok == check_linearizability(history).ok
        assert causal.ok == check_causal_consistency(history).ok

    def test_duplicate_write_values_flagged(self):
        checker = IncrementalLinearizabilityChecker()
        verdict = replay_history(
            checker, h(w(0, b"a", 0, 1), w(0, b"a", 2, 3))
        )
        assert not verdict.ok
        assert "unique" in verdict.violation

    def test_orphan_read_is_a_violation_until_resolved(self):
        checker = IncrementalLinearizabilityChecker()
        checker.on_invoke(w(0, b"a", 0, None, op_id=9001))
        read = r(1, 0, b"b", 1, 2, op_id=9002)
        checker.on_response(read)
        assert not checker.result().ok  # offline on this prefix agrees
        write = w(0, b"b", 3, None, op_id=9003)
        checker.on_invoke(write)
        # Resolution turns it into a value-from-the-future violation
        # (the read completed before the write was invoked).
        assert not checker.result().ok
        assert "future" in checker.result().violation


# --------------------------------------------------------------------- #
# Live agreement on protocol runs (honest and Byzantine)
# --------------------------------------------------------------------- #


def _live_run(backend, seed, factory=None, num_clients=4, ops=12, until=800.0):
    system = open_system(
        SystemConfig(
            num_clients=num_clients,
            seed=seed,
            server_factory=factory,
            faust=FaustParams(dummy_read_period=5.0),
        ),
        backend=backend,
    )
    live = attach_incremental_checkers(system.recorder)
    auditor = system.attach_audit(every=37.0)
    scripts = generate_scripts(
        num_clients,
        WorkloadConfig(ops_per_client=ops, read_fraction=0.6, mean_think_time=1.5),
        random.Random(seed),
    )
    driver = Driver(system)
    driver.attach_all(scripts)
    system.run(until=until)
    auditor.final()
    return system, live, auditor


SERVERS = {
    "honest": None,
    "tampering": lambda n, name: TamperingServer(n, target_register=0, name=name),
    "split-brain": lambda n, name: SplitBrainServer(
        n, groups=[{0, 1}, {2, 3}], fork_time=12.0, name=name
    ),
    "figure3": lambda n, name: Fig3Server(n, writer=0, victim=1, name=name),
    "lying-unchecked": lambda n, name: LyingUncheckedServer(n, 0, name=name),
}


@pytest.mark.parametrize("server", sorted(SERVERS))
@pytest.mark.parametrize("seed", [1, 7])
def test_live_agreement_with_offline(server, seed):
    backend = "unchecked" if server == "lying-unchecked" else "ustor"
    system, live, auditor = _live_run(backend, seed, SERVERS[server])
    history = system.history()
    assert live["linearizability"].result().ok == check_linearizability(history).ok
    assert live["causal"].result().ok == check_causal_consistency(history).ok
    # The auditor's final snapshot carries the same verdicts.
    final = auditor.audits[-1]
    assert final.verdicts["linearizability"].ok == check_linearizability(history).ok
    assert final.verdicts["causal"].ok == check_causal_consistency(history).ok


@pytest.mark.parametrize("backend", ["faust", "ustor"])
def test_replay_matches_live(backend):
    system, live, _auditor = _live_run(backend, 23)
    history = system.history()
    assert replay_history(
        IncrementalLinearizabilityChecker(), history
    ).ok == live["linearizability"].result().ok
    assert replay_history(
        IncrementalCausalChecker(), history
    ).ok == live["causal"].result().ok


@pytest.mark.fuzz
@pytest.mark.parametrize("seed", range(20))
def test_live_agreement_seed_sweep(seed):
    factory = None
    if seed % 3 == 1:
        factory = lambda n, name: TamperingServer(  # noqa: E731
            n, target_register=seed % 4, name=name
        )
    elif seed % 3 == 2:
        factory = lambda n, name: SplitBrainServer(  # noqa: E731
            n,
            groups=[{c for c in range(4) if c % 2 == 0},
                    {c for c in range(4) if c % 2}],
            fork_time=5.0 + seed,
            name=name,
        )
    system, live, _ = _live_run("ustor", 100 + seed, factory, ops=16)
    history = system.history()
    assert live["linearizability"].result().ok == check_linearizability(history).ok
    assert live["causal"].result().ok == check_causal_consistency(history).ok


# --------------------------------------------------------------------- #
# The O(delta) accounting and the auditor surface
# --------------------------------------------------------------------- #


def test_audits_examine_each_op_once():
    system, live, auditor = _live_run("ustor", 31)
    total_delta = sum(a.delta_ops for a in auditor.audits)
    # The delta counts operation events once per consistency domain —
    # not once per checker — and nothing is ever rescanned: the audit
    # deltas sum to exactly one domain tally.
    assert total_delta == max(
        c.ops_processed for c in auditor.checkers.values()
    )
    assert total_delta > 0
    assert auditor.ok


def test_auditor_on_cluster_is_per_shard():
    system = open_system(
        SystemConfig(num_clients=4, seed=5, shards=2), backend="cluster"
    )
    auditor = system.attach_audit(every=20.0)
    sessions = system.sessions()
    for i in range(8):
        sessions[i % 4].write(f"val-{i}".encode())
        sessions[(i + 1) % 4].read(i % 4)
    for session in sessions:
        session.barrier(timeout=20_000)
    record = auditor.final()
    assert set(record.verdicts) == {
        "shard0.linearizability", "shard0.causal",
        "shard1.linearizability", "shard1.causal",
    }
    assert record.ok and auditor.ok


def test_auditor_validates_cadence():
    from repro.common.errors import ConfigurationError

    system = open_system(SystemConfig(num_clients=2, seed=1), backend="ustor")
    with pytest.raises(ConfigurationError):
        system.attach_audit(every=0)
    with pytest.raises(ValueError):
        attach_incremental_checkers(system.recorder, checks=("nope",))


def test_duplicate_write_then_read_does_not_desync_causal():
    """A duplicate write leaves the sticky verdict without corrupting the
    write-clock index for later reads (regression: IndexError)."""
    checker = IncrementalCausalChecker()
    verdict = replay_history(
        checker,
        h(
            w(0, b"a", 0, 1),
            w(0, b"a", 2, 3),   # duplicate: sticky violation, no mutation
            w(0, b"b", 4, 5),
            r(1, 0, b"b", 6, 7),  # must not crash on the clock index
        ),
    )
    assert not verdict.ok
    assert "unique" in verdict.violation


def test_attach_mid_run_replays_the_past():
    """Attaching checkers (or an auditor) after operations already ran
    replays the recorder's history first — a read returning a pre-attach
    value must not be misreported as fabricated (regression)."""
    system = open_system(SystemConfig(num_clients=2, seed=13), backend="ustor")
    early = system.session(0)
    early.write_sync(b"pre-attach", timeout=2_000)
    # Attach AFTER the write completed.
    live = attach_incremental_checkers(system.recorder)
    auditor = system.attach_audit(every=10.0)
    value, _t = system.session(1).read_sync(0, timeout=2_000)
    assert value == b"pre-attach"
    assert live["linearizability"].result().ok
    assert live["causal"].result().ok
    assert auditor.final().ok
