"""Views (Definition 1), fork-linearizability, weak fork-linearizability.

The centrepiece is the paper's Figure 3 history, which must separate the
notions exactly as Section 4 claims: causally consistent and weakly
fork-linearizable, but neither linearizable nor fork-linearizable.
"""

from __future__ import annotations

from repro.common.types import BOTTOM
from repro.consistency.fork import (
    check_fork_linearizability_exhaustive,
    no_join_violation,
    prefixes_agree,
    validate_fork_linearizability,
)
from repro.consistency.views import (
    enumerate_views,
    is_view_of,
    lastops,
    preserves_real_time,
    preserves_weak_real_time,
    view_violation,
)
from repro.consistency.weak_fork import (
    at_most_one_join_violation,
    causality_violation,
    check_weak_fork_linearizability_exhaustive,
    validate_weak_fork_linearizability,
)

from histbuild import h, r, w


def figure3_history():
    write = w(0, b"u", 0, 1)
    read1 = r(1, 0, BOTTOM, 2, 3)
    read2 = r(1, 0, b"u", 4, 5)
    return h(write, read1, read2), write, read1, read2


class TestViews:
    def test_own_ops_required_in_order(self):
        hist = h(w(0, b"a", 0, 1), r(0, 1, BOTTOM, 2, 3))
        prepared = hist.completed_for_checking()
        a, b = prepared[0], prepared[1]
        assert is_view_of(prepared, 0, [a, b])
        assert not is_view_of(prepared, 0, [b, a])
        assert not is_view_of(prepared, 0, [a])

    def test_other_ops_optional(self):
        hist = h(w(0, b"a", 0, 1), r(1, 0, BOTTOM, 5, 6))
        prepared = hist.completed_for_checking()
        write, read = prepared[0], prepared[1]
        # C1's view may ignore C2's read entirely.
        assert is_view_of(prepared, 0, [write])
        # C2's view must include its own read; including the write after
        # the read keeps the read legal.
        assert is_view_of(prepared, 1, [read, write])
        assert not is_view_of(prepared, 1, [write, read])  # read illegal

    def test_view_must_be_legal(self):
        hist = h(w(0, b"a", 0, 1), r(1, 0, b"a", 2, 3))
        prepared = hist.completed_for_checking()
        write, read = prepared[0], prepared[1]
        problem = view_violation(prepared, 1, [read, write])
        assert problem is not None and "register specification" in problem

    def test_foreign_operation_rejected(self):
        hist = h(w(0, b"a", 0, 1))
        other = w(1, b"zz", 0, 1, op_id=424242)
        problem = view_violation(hist.completed_for_checking(), 0, [hist[0], other])
        assert problem is not None and "does not occur" in problem

    def test_duplicate_rejected(self):
        hist = h(w(0, b"a", 0, 1))
        prepared = hist.completed_for_checking()
        problem = view_violation(prepared, 0, [prepared[0], prepared[0]])
        assert problem is not None and "twice" in problem

    def test_lastops(self):
        hist, write, read1, read2 = figure3_history()
        assert lastops([write, read1, read2]) == {write.op_id, read2.op_id}
        assert lastops([read1]) == {read1.op_id}
        assert lastops([]) == set()

    def test_preserves_real_time(self):
        hist, write, read1, read2 = figure3_history()
        assert preserves_real_time([write, read1, read2], hist)
        assert not preserves_real_time([read1, write, read2], hist)

    def test_weak_real_time_exempts_last_ops(self):
        hist, write, read1, read2 = figure3_history()
        # write is C1's last op: exempt, so this order is weakly fine.
        assert preserves_weak_real_time([read1, write, read2], hist)

    def test_weak_real_time_still_binds_non_last_ops(self):
        # Four operations so that the trimmed sequence retains a
        # misordered pair: a1 (completed long before b was invoked) placed
        # after b, with neither being its client's last operation.
        a1 = w(0, b"a1", 0, 1)
        a2 = w(0, b"a2", 2, 3)
        b1 = r(1, 0, b"a1", 4, 5)
        b2 = r(1, 0, b"a2", 6, 7)
        hist = h(a1, a2, b1, b2)
        assert not preserves_weak_real_time([b1, a1, a2, b2], hist)
        assert preserves_weak_real_time([a1, a2, b1, b2], hist)

    def test_enumerate_views_yields_legal_orders(self):
        hist = h(w(0, b"a", 0, 1), r(1, 0, b"a", 2, 3))
        prepared = hist.completed_for_checking()
        views = list(enumerate_views(prepared, 1))
        assert views  # at least <write, read>
        for view in views:
            assert is_view_of(prepared, 1, view)


class TestPrefixHelpers:
    def test_prefixes_agree(self):
        hist, write, read1, read2 = figure3_history()
        pi_1 = [write]
        pi_2 = [read1, write, read2]
        assert not prefixes_agree(pi_1, pi_2, write.op_id)
        assert prefixes_agree(pi_2, pi_2, read1.op_id)

    def test_no_join_violation_found(self):
        hist, write, read1, read2 = figure3_history()
        assert no_join_violation([write], [read1, write, read2]) == write.op_id
        assert no_join_violation([write], [read1, read2]) is None

    def test_at_most_one_join_allows_single_common_op(self):
        hist, write, read1, read2 = figure3_history()
        pi_1 = [write]
        pi_2 = [read1, write, read2]
        assert at_most_one_join_violation(pi_1, pi_2) is None
        assert at_most_one_join_violation(pi_2, pi_1) is None

    def test_at_most_one_join_rejects_two_divergent_common_ops(self):
        a1 = w(0, b"a1", 0, 1)
        a2 = w(0, b"a2", 2, 3)
        b = r(1, 0, b"a2", 4, 5)
        pi_i = [a1, a2, b]
        pi_j = [b, a1, a2]  # shares a1 and a2 but different prefix at a1
        problem = at_most_one_join_violation(pi_i, pi_j)
        assert problem is not None


class TestFigure3Separation:
    """The paper's Section 4 example, checked against all four notions."""

    def test_not_linearizable(self):
        from repro.consistency.linearizability import check_linearizability

        hist, *_ = figure3_history()
        assert not check_linearizability(hist)

    def test_causally_consistent(self):
        from repro.consistency.causal import check_causal_consistency

        hist, *_ = figure3_history()
        assert check_causal_consistency(hist)

    def test_not_fork_linearizable(self):
        hist, *_ = figure3_history()
        assert not check_fork_linearizability_exhaustive(hist)

    def test_weakly_fork_linearizable(self):
        hist, *_ = figure3_history()
        result = check_weak_fork_linearizability_exhaustive(hist)
        assert result

    def test_paper_views_validate(self):
        # The exact views the paper exhibits (Section 4).
        hist, write, read1, read2 = figure3_history()
        prepared = hist.completed_for_checking()
        write, read1, read2 = prepared[0], prepared[1], prepared[2]
        views = {0: [write], 1: [read1, write, read2]}
        assert validate_weak_fork_linearizability(hist, views)

    def test_paper_views_fail_fork_validation(self):
        hist, write, read1, read2 = figure3_history()
        prepared = hist.completed_for_checking()
        write, read1, read2 = prepared[0], prepared[1], prepared[2]
        views = {0: [write], 1: [read1, write, read2]}
        result = validate_fork_linearizability(hist, views)
        assert not result  # C2's view breaks real-time order


class TestValidators:
    def test_linearizable_history_validates_everything(self):
        hist = h(w(0, b"a", 0, 1), r(1, 0, b"a", 2, 3))
        prepared = hist.completed_for_checking()
        seq = [prepared[0], prepared[1]]
        views = {0: [prepared[0]], 1: seq}
        assert validate_fork_linearizability(hist, views)
        assert validate_weak_fork_linearizability(hist, views)

    def test_causality_condition_detects_missing_update(self):
        write_a = w(0, b"a", 0, 1)
        read_a = r(1, 0, b"a", 2, 3)
        write_b = w(1, b"b", 4, 5)
        read_b = r(2, 1, b"b", 6, 7)
        hist = h(write_a, read_a, write_b, read_b)
        prepared = hist.completed_for_checking()
        ops = {op.op_id: op for op in prepared}
        # C3's view contains read_b; write_a causally precedes write_b
        # (via C2's read) hence also read_b — omitting it violates cond. 3.
        bad_view = [ops[write_b.op_id], ops[read_b.op_id]]
        problem = causality_violation(prepared, bad_view)
        assert problem is not None and "missing" in problem

    def test_causality_condition_detects_misordered_update(self):
        write_a = w(0, b"a", 0, 1)
        read_a = r(1, 0, b"a", 2, 3)
        hist = h(write_a, read_a)
        prepared = hist.completed_for_checking()
        bad = [prepared[1], prepared[0]]
        problem = causality_violation(prepared, bad)
        assert problem is not None and "follows it" in problem

    def test_weak_fork_violation_reported_per_condition(self):
        hist, write, read1, read2 = figure3_history()
        prepared = hist.completed_for_checking()
        write, read1, read2 = prepared[0], prepared[1], prepared[2]
        # An illegal view (read u before the write is in the view).
        result = validate_weak_fork_linearizability(
            hist, {1: [read1, read2, write]}
        )
        assert not result and "condition 1" in result.violation


class TestExhaustiveForkCheckers:
    def test_sequential_history_is_fork_linearizable(self):
        hist = h(w(0, b"a", 0, 1), r(1, 0, b"a", 2, 3))
        assert check_fork_linearizability_exhaustive(hist)

    def test_forked_groups_are_fork_linearizable(self):
        # Two clients that never see each other's operations: a textbook
        # fork — allowed by fork-linearizability (and the weak variant).
        hist = h(
            w(0, b"a", 0, 1),
            r(0, 1, BOTTOM, 2, 3),
            w(1, b"b", 0.5, 1.5),
            r(1, 0, BOTTOM, 2.5, 3.5),
        )
        assert check_fork_linearizability_exhaustive(hist)
        assert check_weak_fork_linearizability_exhaustive(hist)

    def test_fabricated_value_is_not_weak_fork_linearizable(self):
        hist = h(r(0, 1, b"ghost", 0, 1))
        assert not check_weak_fork_linearizability_exhaustive(hist)
        assert not check_fork_linearizability_exhaustive(hist)

    def test_fork_implies_weak_fork_on_samples(self):
        import random

        from test_consistency_linearizability import _random_history

        for seed in range(60):
            hist = _random_history(random.Random(seed), 2, 5)
            if check_fork_linearizability_exhaustive(hist).ok:
                assert check_weak_fork_linearizability_exhaustive(hist).ok, f"seed {seed}"

    def test_linearizable_implies_fork_linearizable_on_samples(self):
        import random

        from repro.consistency.linearizability import check_linearizability
        from test_consistency_linearizability import _random_history

        for seed in range(60):
            hist = _random_history(random.Random(seed), 2, 5)
            if check_linearizability(hist).ok:
                assert check_fork_linearizability_exhaustive(hist).ok, f"seed {seed}"
