"""The timeline renderer and the churn machinery."""

from __future__ import annotations

import random

import pytest

from repro.analysis.timeline import render_timeline
from repro.common.types import BOTTOM
from repro.workloads.churn import ChurnSchedule, OfflineWindow
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts
from repro.workloads.runner import SystemBuilder
from repro.workloads.scenarios import figure3_scenario

from histbuild import h, r, w


class TestTimeline:
    def test_empty(self):
        assert render_timeline(h()) == "(empty history)"

    def test_one_line_per_client(self):
        hist = h(w(0, b"u", 0, 1), r(1, 0, BOTTOM, 2, 3))
        text = render_timeline(hist)
        lines = text.splitlines()
        assert lines[0].startswith("  C1")
        assert lines[1].startswith("  C2")
        assert lines[-1].strip().startswith("t=")

    def test_labels_present(self):
        hist = h(w(0, b"u", 0, 5), r(1, 0, b"u", 6, 10))
        text = render_timeline(hist, width=80)
        assert "w(X1)" in text
        assert "r(X1)->u" in text

    def test_bottom_read_label(self):
        hist = h(r(1, 0, BOTTOM, 0, 5))
        assert "r(X1)->B" in render_timeline(hist, width=60)

    def test_incomplete_op_extends_right(self):
        hist = h(w(0, b"u", 0, None), r(1, 0, b"u", 1, 10))
        text = render_timeline(hist, width=60)
        assert ">" in text.splitlines()[0]

    def test_figure3_renders(self):
        result = figure3_scenario()
        text = render_timeline(result.history, width=90)
        assert text.count("r(X1)") == 2

    def test_respects_width(self):
        hist = h(w(0, b"u", 0, 1))
        for width in (40, 100):
            line = render_timeline(hist, width=width).splitlines()[0]
            assert len(line) <= width + 5  # name prefix


def churn_system(seed=50):
    system = SystemBuilder(num_clients=3, seed=seed).build_faust(
        dummy_read_period=3.0, probe_check_period=4.0, delta=20.0
    )
    return system


class TestChurn:
    def test_window_takes_client_offline_and_back(self):
        system = churn_system()
        churn = ChurnSchedule(system)
        churn.add_window(client=1, start=5.0, duration=10.0)
        system.run(until=6.0)
        assert not system.offline.is_online("C2")
        system.run(until=20.0)
        assert system.offline.is_online("C2")
        kinds = [n.kind for n in system.trace.notes if n.source == "C2"]
        assert "offline" in kinds and "online" in kinds

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            ChurnSchedule(churn_system()).add_window(0, 1.0, 0.0)

    def test_window_end_property(self):
        assert OfflineWindow(0, 2.0, 3.0).end == 5.0

    def test_churn_causes_no_false_positives(self):
        system = churn_system(seed=51)
        churn = ChurnSchedule(system)
        churn.random_windows(count=6, horizon=80.0, mean_duration=15.0)
        scripts = generate_scripts(
            3, WorkloadConfig(ops_per_client=5, mean_think_time=2.0), random.Random(51)
        )
        driver = Driver(system)
        driver.attach_all(scripts)
        system.run(until=600.0)
        assert not any(c.faust_failed for c in system.clients)

    def test_stability_completes_despite_churn(self):
        system = churn_system(seed=52)
        churn = ChurnSchedule(system)
        # C3 sleeps through the whole working phase.
        churn.add_window(client=2, start=2.0, duration=60.0)
        box = []
        system.clients[0].write(b"while-you-were-out", box.append)
        assert system.run_until(lambda: bool(box), timeout=100)
        t = box[0].timestamp
        # Not stable w.r.t. C3 while it sleeps...
        system.run(until=50.0)
        assert system.clients[0].tracker.stable_timestamp_for(2) < t
        # ...but stability completes after it returns.
        reached = system.run_until(
            lambda: system.clients[0].tracker.stable_timestamp_for_all() >= t,
            timeout=2_000,
        )
        assert reached
        assert not any(c.faust_failed for c in system.clients)

    def test_detection_still_complete_under_churn(self):
        from repro.ustor.byzantine import SplitBrainServer

        system = SystemBuilder(
            num_clients=4,
            seed=53,
            server_factory=lambda n, name: SplitBrainServer(
                n, groups=[{0, 1}, {2, 3}], fork_time=5.0, name=name
            ),
        ).build_faust(dummy_read_period=3.0, probe_check_period=4.0, delta=15.0)
        churn = ChurnSchedule(system)
        churn.add_window(client=3, start=10.0, duration=100.0)
        scripts = generate_scripts(
            4, WorkloadConfig(ops_per_client=6, mean_think_time=1.0), random.Random(53)
        )
        driver = Driver(system)
        driver.attach_all(scripts)
        system.run(until=1_500.0)
        # Every correct client — including the one that slept through the
        # fork — eventually learns of it.
        assert all(c.faust_failed for c in system.clients if not c.crashed)
