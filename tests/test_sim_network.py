"""FIFO channels, latency models, crash filtering, and tracing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ChannelError
from repro.sim.network import (
    ExponentialLatency,
    FixedLatency,
    Network,
    UniformLatency,
    message_kind,
    message_size,
)
from repro.sim.process import Node
from repro.sim.scheduler import Scheduler
from repro.sim.trace import SimTrace


class Recorder(Node):
    def __init__(self, name):
        super().__init__(name)
        self.received = []

    def on_message(self, src, message):
        self.received.append((src, message, self.now))


def make_net(latency=None, seed=0):
    sched = Scheduler(seed=seed)
    trace = SimTrace()
    net = Network(sched, default_latency=latency or FixedLatency(1.0), trace=trace)
    a, b = Recorder("A"), Recorder("B")
    net.register(a)
    net.register(b)
    return sched, net, a, b, trace


class TestDelivery:
    def test_basic_delivery(self):
        sched, net, a, b, _ = make_net()
        a.send("B", "hello")
        sched.run()
        assert b.received == [("A", "hello", 1.0)]

    def test_unknown_recipient_rejected(self):
        _sched, net, a, _b, _ = make_net()
        with pytest.raises(ChannelError):
            a.send("Z", "hello")

    def test_unknown_sender_rejected(self):
        sched, net, _a, _b, _ = make_net()
        with pytest.raises(ChannelError):
            net.send("Z", "A", "hello")

    def test_duplicate_name_rejected(self):
        _sched, net, _a, _b, _ = make_net()
        with pytest.raises(ChannelError):
            net.register(Recorder("A"))

    def test_fifo_on_fixed_latency(self):
        sched, net, a, b, _ = make_net()
        for i in range(5):
            a.send("B", i)
        sched.run()
        assert [m for _, m, _ in b.received] == [0, 1, 2, 3, 4]

    def test_fifo_under_random_latency(self):
        sched, net, a, b, _ = make_net(latency=ExponentialLatency(2.0), seed=3)
        for i in range(50):
            sched.schedule(float(i) * 0.1, a.send, "B", i)
        sched.run()
        assert [m for _, m, _ in b.received] == list(range(50))

    def test_directions_are_independent(self):
        sched, net, a, b, _ = make_net()
        net.set_latency("A", "B", FixedLatency(10.0))
        net.set_latency("B", "A", FixedLatency(1.0))
        a.send("B", "slow")
        b.send("A", "fast")
        sched.run()
        assert a.received[0][2] == 1.0
        assert b.received[0][2] == 10.0

    def test_add_delay_slows_link(self):
        sched, net, a, b, _ = make_net()
        net.add_delay("A", "B", 5.0)
        a.send("B", "m")
        sched.run()
        assert b.received[0][2] == 6.0

    def test_negative_extra_delay_rejected(self):
        _sched, net, _a, _b, _ = make_net()
        with pytest.raises(ChannelError):
            net.add_delay("A", "B", -1.0)


class TestCrash:
    def test_crashed_node_receives_nothing(self):
        sched, net, a, b, _ = make_net()
        b.crash()
        a.send("B", "m")
        sched.run()
        assert b.received == []

    def test_crashed_node_sends_nothing(self):
        sched, net, a, b, _ = make_net()
        a.crash()
        a.send("B", "m")
        sched.run()
        assert b.received == []

    def test_crash_mid_flight_drops_delivery(self):
        sched, net, a, b, _ = make_net()
        a.send("B", "m")
        sched.schedule(0.5, b.crash)
        sched.run()
        assert b.received == []


class TestLatencyModels:
    def test_fixed_rejects_negative(self):
        with pytest.raises(ChannelError):
            FixedLatency(-1)

    def test_uniform_bounds(self):
        sched = Scheduler(seed=1)
        model = UniformLatency(1.0, 2.0)
        for _ in range(100):
            assert 1.0 <= model.sample(sched.rng) <= 2.0

    def test_uniform_rejects_bad_bounds(self):
        with pytest.raises(ChannelError):
            UniformLatency(2.0, 1.0)

    def test_exponential_positive_and_capped(self):
        sched = Scheduler(seed=1)
        model = ExponentialLatency(mean=1.0, cap=3.0)
        samples = [model.sample(sched.rng) for _ in range(200)]
        assert all(0 <= s <= 3.0 for s in samples)

    def test_exponential_rejects_bad_params(self):
        with pytest.raises(ChannelError):
            ExponentialLatency(0)
        with pytest.raises(ChannelError):
            ExponentialLatency(2.0, cap=1.0)

    @settings(max_examples=30)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_deterministic_given_seed(self, seed):
        def run(s):
            sched, net, a, b, _ = make_net(latency=ExponentialLatency(1.5), seed=s)
            for i in range(10):
                a.send("B", i)
            sched.run()
            return [t for _, _, t in b.received]

        assert run(seed) == run(seed)


class TestTraceIntegration:
    def test_messages_recorded_with_kind_and_size(self):
        class Sized:
            kind = "TEST"

            @staticmethod
            def wire_size():
                return 123

        sched, net, a, b, trace = make_net()
        a.send("B", Sized())
        sched.run()
        assert trace.message_count("TEST") == 1
        assert trace.total_bytes("TEST") == 123

    def test_message_kind_fallback(self):
        assert message_kind("plain string") == "str"
        assert message_size("plain string") == 0


class TestTransportBatching:
    """Same-turn same-link bursts coalesce into one delivery event."""

    def make_batched(self, latency=None, seed=0):
        sched = Scheduler(seed=seed)
        trace = SimTrace()
        net = Network(
            sched,
            default_latency=latency or FixedLatency(1.0),
            trace=trace,
            batching=True,
        )
        a, b = Recorder("A"), Recorder("B")
        net.register(a)
        net.register(b)
        return sched, net, a, b, trace

    def test_same_turn_burst_is_one_event(self):
        sched, net, a, b, trace = self.make_batched()
        a.send("B", "m1")
        a.send("B", "m2")
        a.send("B", "m3")
        fired = sched.run()
        # One delivery event for the whole burst...
        assert fired == 1
        assert net.bursts_formed == 1
        assert net.messages_coalesced == 2
        # ...delivering every member, in FIFO order, at the burst time.
        assert [m for _, m, _ in b.received] == ["m1", "m2", "m3"]
        assert len({t for _, _, t in b.received}) == 1
        # Trace still counts messages, not packets (E3/E4 depend on it).
        assert trace.message_count() == 3

    def test_cross_turn_sends_do_not_coalesce(self):
        sched, net, a, b, _ = self.make_batched()
        a.send("B", "m1")
        sched.run()  # the turn ends; the burst is delivered
        a.send("B", "m2")
        sched.run()
        assert net.bursts_formed == 2
        assert net.messages_coalesced == 0
        times = [t for _, _, t in b.received]
        assert times[0] < times[1]  # FIFO across bursts

    def test_distinct_links_get_distinct_bursts(self):
        sched, net, a, b, _ = self.make_batched()
        a.send("B", "to-b")
        b.send("A", "to-a")
        assert sched.run() == 2
        assert net.bursts_formed == 2
        assert net.messages_coalesced == 0

    def test_fifo_clamp_holds_across_bursts(self):
        # A slow burst followed (next turn) by a fast send: the fast one
        # must not overtake.
        sched, net, a, b, _ = self.make_batched(latency=UniformLatency(0.0, 5.0), seed=7)
        a.send("B", "first")
        a.send("B", "second")  # same turn: rides the first burst
        sched.schedule(0.001, lambda: a.send("B", "third"))
        sched.run()
        assert [m for _, m, _ in b.received] == ["first", "second", "third"]
        times = [t for _, _, t in b.received]
        assert times[0] == times[1] <= times[2]

    def test_unbatched_network_reports_batching_off(self):
        sched, net, a, b, _ = make_net()
        assert net.batching is False
        a.send("B", "m")
        sched.run()
        assert net.bursts_formed == 0
