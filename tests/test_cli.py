"""The command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import SERVERS, main


class TestAttacksCommand:
    def test_lists_all_servers(self, capsys):
        assert main(["attacks"]) == 0
        out = capsys.readouterr().out
        for name in SERVERS:
            assert name in out


class TestRunCommand:
    def test_correct_server_run(self, capsys):
        code = main(
            ["run", "--clients", "2", "--ops", "3", "--seed", "5", "--check"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "completed 6/6" in out
        assert "linearizability: OK" in out
        assert "weak-fork-linearizability: OK" in out

    def test_history_flag(self, capsys):
        main(["run", "--clients", "2", "--ops", "2", "--history"])
        out = capsys.readouterr().out
        assert "write_C" in out or "read_C" in out

    def test_tampering_server_detection(self, capsys):
        # seed 1: C1 writes register X1 and someone reads it — the
        # corrupted value trips line 50.
        main(["run", "--clients", "3", "--ops", "6", "--server", "tampering",
              "--seed", "1"])
        out = capsys.readouterr().out
        assert "USTOR fail" in out and "line 50" in out

    def test_split_brain_with_faust(self, capsys):
        main(
            [
                "run",
                "--clients",
                "4",
                "--ops",
                "6",
                "--server",
                "split-brain",
                "--faust",
                "--until",
                "900",
                "--seed",
                "11",
            ]
        )
        out = capsys.readouterr().out
        assert "FAUST fail" in out

    def test_unknown_server_rejected(self, capsys):
        assert main(["run", "--server", "nonsense"]) == 2

    def test_message_statistics_printed(self, capsys):
        main(["run", "--clients", "2", "--ops", "2"])
        out = capsys.readouterr().out
        assert "SUBMIT" in out and "REPLY" in out


class TestExperimentsCommand:
    def test_single_experiment_quick(self, capsys):
        assert main(["experiments", "--quick", "--only", "E12"]) == 0
        out = capsys.readouterr().out
        assert "E12" in out and "incomparable" in out


class TestClusterRunCommand:
    def test_cluster_run_with_per_shard_check(self, capsys):
        code = main(
            ["run", "--backend", "cluster", "--clients", "4", "--shards", "2",
             "--ops", "2", "--seed", "5", "--until", "60", "--check"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cluster: 2 shard(s)" in out
        assert "linearizability [shard 0]" in out
        assert "linearizability [shard 1]" in out
        assert "weak-fork-linearizability: OK" in out

    def test_shard_knobs_require_cluster_backend(self, capsys):
        assert main(["run", "--clients", "4", "--shards", "2"]) == 2
        out = capsys.readouterr().out
        assert "--backend cluster" in out

    def test_server_shard_targets_one_shard(self, capsys):
        code = main(
            ["run", "--backend", "cluster", "--clients", "6", "--shards", "3",
             "--ops", "3", "--server", "tampering", "--server-shard", "0",
             "--until", "150"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cluster: 3 shard(s)" in out

    def test_server_shard_requires_a_byzantine_server(self, capsys):
        code = main(
            ["run", "--backend", "cluster", "--clients", "4", "--shards", "2",
             "--server-shard", "1"]
        )
        assert code == 2
        assert "Byzantine" in capsys.readouterr().out

    def test_shard_outage_flag(self, capsys):
        code = main(
            ["run", "--backend", "cluster", "--clients", "4", "--shards", "2",
             "--ops", "2", "--storage", "log",
             "--shard-outage", "1", "10", "5", "--until", "120"]
        )
        assert code == 0
