"""Long-horizon cluster stress runs (``-m slow``; the extended CI job).

Tier-1 proves the cluster's contracts on short schedules; these runs let
the background machinery, churn and per-shard faults grind against each
other for thousands of virtual time units — the regime where accuracy
bugs (a recovery mistaken for a fork, a sleeping client mistaken for a
faulty server) historically hide.
"""

from __future__ import annotations

import random

import pytest

from repro.api import FaustParams, SystemConfig, open_system
from repro.workloads.churn import ChurnSchedule
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts
from repro.workloads.scenarios import split_brain_shard_scenario

pytestmark = pytest.mark.slow


def test_long_cluster_churn_with_shard_outages_stays_accurate():
    """Client churn + per-shard crash-recovery over a long horizon: with
    durable storage nothing is ever detected, and stability still
    advances on every shard once everyone is back."""
    system = open_system(
        SystemConfig(
            num_clients=6,
            shards=3,
            seed=71,
            storage="log",
            faust=FaustParams(
                delta=60.0, dummy_read_period=5.0, probe_check_period=9.0
            ),
        ),
        backend="cluster",
    )
    churn = ChurnSchedule(system)
    churn.random_windows(count=8, horizon=600.0, mean_duration=40.0)
    churn.random_shard_outages(count=6, horizon=600.0, mean_duration=15.0)

    scripts = generate_scripts(
        6,
        WorkloadConfig(ops_per_client=20, read_fraction=0.5, mean_think_time=30.0),
        random.Random(71),
    )
    driver = Driver(system)
    driver.attach_all(scripts)
    system.run(until=2_000.0)

    assert not system.notifications.failure_events(), (
        "honest churn/recovery must never look like misbehaviour"
    )
    assert driver.stats.all_done()
    # Every client's home-shard stability caught up with its writes.
    for client in range(6):
        session = system.session(client)
        cut = session.stability_cut
        assert min(cut) > 0


@pytest.mark.fuzz
@pytest.mark.parametrize("seed", range(25))
def test_split_brain_detection_scope_over_many_seeds(seed):
    """The acceptance invariant — notified == touched-forked, avoiders
    unharmed — over a wide seed sweep and both shard maps."""
    result = split_brain_shard_scenario(
        num_clients=6,
        shards=4,
        forked_shards=(seed % 4,) if seed % 4 else (1,),
        seed=500 + seed,
        shard_map="hash" if seed % 2 else "range",
        ops_per_client=10,
        run_for=500.0,
    )
    assert result.exact_detection
    assert not (result.notified_clients & result.avoiders)
    assert result.avoiders_completed()
