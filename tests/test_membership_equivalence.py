"""Membership is a liveness layer, not a semantic.

With ``SystemConfig(membership=...)`` clients lease their signer slots
and a wedged member is eventually voted out through a co-signed epoch
chain — but on a fault-free run the layer must be *invisible*: identical
operation outcomes, histories, final versions (vectors AND digest
chains), checker verdicts, stability counts and even the wire-message
census as the same seeded run with membership off.  The epoch chain
stays at genesis and not one epoch share is sent.

And the detection guarantees must survive the layer in both directions:
a rollback attack is detected in exactly the same phase whether
membership is on or off, and a rollback mounted *after* an epoch change
(members evicted a crashed peer, the chain moved on) is still detected
by every surviving member — pruned members must not mean pruned
evidence.
"""

from __future__ import annotations

import pytest

from repro.api import CheckpointPolicy, FaustParams, SystemConfig, open_system
from repro.consistency import (
    attach_incremental_checkers,
    check_causal_consistency,
    check_linearizability,
)
from repro.faust.membership import MembershipPolicy
from repro.sim.network import FixedLatency
from repro.ustor.byzantine import RollbackServer
from repro.workloads.generator import unique_value

#: interval=16 with 4 clients * 2 ops * 24 phases gives a dozen installs.
POLICY = CheckpointPolicy(interval=16, keep_tail=2)
MEMBERSHIP = MembershipPolicy()


def _config(seed: int, membership, **overrides) -> SystemConfig:
    return SystemConfig(
        num_clients=4,
        seed=seed,
        latency=FixedLatency(1.0),
        offline_latency=FixedLatency(0.5),
        storage="log",
        checkpoint=POLICY,
        membership=membership,
        # Dummy reads stay off (they would touch the server and change
        # the byte-level schedule between runs); probes are offline-only
        # VERSION gossip and keep stability advancing.
        faust=FaustParams(
            enable_dummy_reads=False,
            enable_probes=True,
            probe_check_period=2.0,
        ),
        **overrides,
    )


def _open(seed: int, membership, **overrides):
    system = open_system(_config(seed, membership, **overrides), backend="faust")
    incremental = attach_incremental_checkers(system.recorder)
    return system, incremental


def _run_phases(seed: int, membership, phases: int = 24):
    """Each phase: every client writes, then reads round-robin."""
    system, incremental = _open(seed, membership)
    sessions = system.sessions()
    handles = []
    for phase in range(phases):
        for client, session in enumerate(sessions):
            handles.append(session.write(unique_value(client, phase, 20)))
            handles.append(session.read((client + phase) % len(sessions)))
            system.run(until=system.now + 0.013)  # stagger: no ties
        for session in sessions:
            session.barrier(timeout=50_000)
        system.run(until=system.now + 0.1)
    system.run(until=system.now + 20.0)  # let shares in flight settle
    return system, incremental, handles


def _collect(system, handles, incremental):
    outcomes = [
        (h.kind, h.register,
         bytes(h.result().value) if isinstance(h.result().value, bytes)
         else h.result().value,
         h.result().timestamp)
        for h in handles
    ]
    history = system.recorder.history().complete()
    ops = [
        (op.client, op.kind, op.register,
         bytes(op.value) if isinstance(op.value, bytes) else op.value,
         op.timestamp, round(op.invoked_at, 6), round(op.responded_at, 6))
        for client in history.clients()
        for op in history.restrict_to_client(client)
    ]
    versions = [
        (tuple(c.version.vector), c.version.digests) for c in system.clients
    ]
    stable_totals = [c.stable_notifications_total for c in system.clients]
    verdict = (
        check_linearizability(history).ok,
        check_causal_consistency(history).ok,
    )
    incremental_ok = {
        name: checker.result().ok for name, checker in incremental.items()
    }
    census: dict[str, int] = {}
    for record in system.raw.trace.messages:
        census[record.kind] = census.get(record.kind, 0) + 1
    return {
        "outcomes": outcomes,
        "ops": ops,
        "versions": versions,
        "stable_totals": stable_totals,
        "verdict": verdict,
        "incremental": incremental_ok,
        "census": census,
    }


def test_membership_on_equals_off_fault_free():
    """Same seed, membership on vs off: byte-identical observable run."""
    seed = 2026
    sys_off, inc_off, handles_off = _run_phases(seed, None)
    off = _collect(sys_off, handles_off, inc_off)
    sys_on, inc_on, handles_on = _run_phases(seed, MEMBERSHIP)
    on = _collect(sys_on, handles_on, inc_on)

    assert on["outcomes"] == off["outcomes"]
    assert on["ops"] == off["ops"]
    assert on["versions"] == off["versions"]
    assert on["stable_totals"] == off["stable_totals"]
    assert on["verdict"] == off["verdict"] == (True, True)
    assert all(on["incremental"].values())
    assert all(off["incremental"].values())
    # Not one extra message of any kind: no epoch shares, no announces,
    # identical gossip.  The lease layer is pure bookkeeping until a
    # member actually blocks the chain.
    assert on["census"] == off["census"]

    # The layer really was armed: every client carries a manager, all at
    # genesis with the full member set, and checkpoints were installed.
    for client in sys_on.clients:
        manager = client.membership_manager
        assert manager is not None
        assert manager.epoch.epoch == 0
        assert manager.epoch.members == tuple(range(4))
    installs = [c.checkpoint_manager.installed.seq for c in sys_on.clients]
    assert min(installs) >= 3, installs


@pytest.mark.parametrize("membership", (None, MEMBERSHIP))
def test_rollback_detection_is_identical_with_membership(membership):
    """A rollback across installed checkpoints is detected in the same
    phase whether or not the membership layer is armed — and a Byzantine
    server never tricks the quorum into an epoch change."""
    seed = 4242
    factory = lambda n, name: RollbackServer(  # noqa: E731
        n,
        snapshot_after_submits=12,
        rollback_after_submits=113,
        outage=1.0,
        name=name,
    )
    system, _inc = _open(seed, membership, server_factory=factory)
    sessions = system.sessions()
    failed_at = None
    for phase in range(24):
        for client, session in enumerate(sessions):
            try:
                session.write(unique_value(client, phase, 20))
                session.read((client + phase) % len(sessions))
            except Exception:  # noqa: BLE001 - failed sessions refuse ops
                pass
            system.run(until=system.now + 0.013)
        system.run(until=system.now + 8.0)
        if system.notifications.failure_events():
            failed_at = phase
            break
    assert failed_at == 14, failed_at
    failed = [c for c in system.clients if getattr(c, "faust_failed", False)]
    assert len(failed) == len(system.clients)
    if membership is not None:
        # fail_i, not eviction: the chain never left genesis.
        epochs = {c.membership_manager.epoch.epoch for c in system.clients}
        assert epochs == {0}


def test_rollback_after_epoch_change_is_detected():
    """Evict a crashed member, let the chain resume at epoch 1, *then*
    roll the server back: every surviving member still detects it."""
    seed = 1337
    factory = lambda n, name: RollbackServer(  # noqa: E731
        n,
        snapshot_after_submits=12,
        rollback_after_submits=135,
        outage=1.0,
        name=name,
    )
    system, _inc = _open(seed, MEMBERSHIP, server_factory=factory)
    raw = system.raw
    crashed = raw.clients[3]
    raw.scheduler.schedule_at(30.0, crashed.crash)
    sessions = system.sessions()
    failed_at = epoch_changed_at = None
    for phase in range(40):
        for client, session in enumerate(sessions):
            try:
                session.write(unique_value(client, phase, 20))
                session.read((client + phase) % len(sessions))
            except Exception:  # noqa: BLE001 - crashed/failed refuse ops
                pass
            system.run(until=system.now + 0.013)
        system.run(until=system.now + 8.0)
        live = [c for c in system.clients if not c.crashed]
        if epoch_changed_at is None and any(
            c.membership_manager.epoch.epoch >= 1 for c in live
        ):
            epoch_changed_at = phase
        if system.notifications.failure_events():
            failed_at = phase
            break
    assert epoch_changed_at is not None, "crashed member was never evicted"
    assert failed_at is not None, "rollback went undetected"
    assert epoch_changed_at < failed_at, (epoch_changed_at, failed_at)
    live = [c for c in system.clients if not c.crashed]
    # The survivors evicted the crashed member (epoch 1, three names on
    # the roll) and then, operating under the new epoch, every one of
    # them caught the fold.
    for client in live:
        assert client.membership_manager.epoch.epoch == 1
        assert client.membership_manager.epoch.members == (0, 1, 2)
    assert all(c.faust_failed for c in live)
    assert not crashed.faust_failed  # crashed, not fooled
