"""Fuzzing the detection machinery with a randomized adversary."""

from __future__ import annotations

import random

import pytest

from repro.common.types import BOTTOM, parse_client_name
from repro.consistency.causal import check_causal_consistency
from repro.ustor.fuzz import DEVIATIONS, RandomDeviationServer
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts
from repro.workloads.runner import SystemBuilder

#: These are the fast members of the randomized-adversary family; the
#: long sweeps live behind ``-m slow`` (see pyproject markers).
pytestmark = pytest.mark.fuzz


def fuzz_run(seed: int, probability: float, n: int = 3, ops: int = 10):
    system = SystemBuilder(
        num_clients=n,
        seed=seed,
        server_factory=lambda nn, name: RandomDeviationServer(
            nn, deviation_probability=probability, seed=seed, name=name
        ),
    ).build()
    scripts = generate_scripts(
        n,
        WorkloadConfig(ops_per_client=ops, read_fraction=0.5, mean_think_time=0.5),
        random.Random(seed),
    )
    driver = Driver(system)
    driver.attach_all(scripts)
    system.run(until=2_000)
    return system, driver


class TestControl:
    @pytest.mark.parametrize("seed", range(5))
    def test_zero_probability_is_honest(self, seed):
        system, driver = fuzz_run(seed, probability=0.0)
        assert driver.stats.all_done()
        assert not any(c.failed for c in system.clients)
        assert system.server.injected == []


class TestAccuracy:
    """fail only where a deviation was actually delivered."""

    @pytest.mark.parametrize("seed", range(12))
    def test_failures_attributable(self, seed):
        system, _driver = fuzz_run(seed, probability=0.35)
        victims_hit = {dst for _name, dst in system.server.injected}
        for client in system.clients:
            if client.failed:
                assert client.name in victims_hit, (
                    f"{client.name} raised fail ({client.fail_reason}) but "
                    f"never received a deviation"
                )

    @pytest.mark.parametrize("seed", range(12))
    def test_histories_stay_causal(self, seed):
        system, _driver = fuzz_run(seed, probability=0.35)
        assert check_causal_consistency(system.history()), f"seed {seed}"

    @pytest.mark.parametrize("seed", range(12))
    def test_no_fabricated_values_ever_returned(self, seed):
        # The DATA-signature check makes tampered values unreturnable: any
        # read that *completed* carries either BOTTOM or a genuinely
        # written value.
        system, _driver = fuzz_run(seed, probability=0.35)
        history = system.history()
        written = {
            bytes(op.value) for op in history if op.is_write and op.value is not None
        }
        for op in history:
            if op.is_read and op.complete and op.value is not BOTTOM:
                assert bytes(op.value) in written, f"seed {seed}: {op.describe()}"

    def test_deviations_actually_fire(self):
        fired = set()
        for seed in range(12):
            system, _driver = fuzz_run(seed, probability=0.35)
            fired |= {name for name, _dst in system.server.injected}
        # Over a dozen seeds the fuzzer must have exercised most of its
        # catalogue (stale-version needs a committed first version, so it
        # may be rarer).
        assert len(fired & set(DEVIATIONS)) >= 3, fired


class TestHighPressure:
    def test_every_client_eventually_fails_under_constant_deviation(self):
        system, _driver = fuzz_run(seed=99, probability=1.0, ops=6)
        # With a deviation in (almost) every reply, every client that got
        # any reply detects quickly.
        assert all(
            c.failed or c.completed_operations == 0 for c in system.clients
        )

    def test_detection_reasons_reference_algorithm_lines(self):
        system, _driver = fuzz_run(seed=99, probability=1.0, ops=6)
        reasons = [c.fail_reason for c in system.clients if c.fail_reason]
        assert reasons
        assert all("line" in reason for reason in reasons)
