"""The storage engines: WAL, snapshots, compaction, crash recovery.

Pins the recovery invariant (snapshot + WAL replay reproduces the
pre-crash ``ServerState`` byte-for-byte), the compaction policy (count-
and GC-driven checkpoints), the torn-tail tolerance of the WAL frame
format, and the end-to-end fault axis: an honest server crash/restart is
invisible over the log engine, server-side churn composes with client
churn, and the stale-snapshot recovery path feeds the rollback adversary.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError, StorageError
from repro.common.types import OpKind
from repro.crypto.keystore import KeyStore
from repro.store import (
    DirectoryMedium,
    InMemoryMedium,
    LogStructuredEngine,
    MemoryEngine,
    StorageEngine,
    encode_server_state,
    frame_record,
    iter_frames,
    make_engine,
)
from repro.ustor.messages import CommitMessage, InvocationTuple, SubmitMessage
from repro.ustor.server import ServerState, UstorServer, apply_commit, apply_submit
from repro.ustor.version import Version
from repro.workloads.churn import ChurnSchedule
from repro.workloads.runner import SystemBuilder


def _signed_submit(keystore, client, t, kind=OpKind.WRITE, register=None):
    register = client if register is None else register
    signer = keystore.signer(client)
    return SubmitMessage(
        timestamp=t,
        invocation=InvocationTuple(
            client=client,
            opcode=kind,
            register=register,
            submit_sig=signer.sign("SUBMIT", kind, register, t),
        ),
        value=b"v%d" % t if kind is OpKind.WRITE else None,
        data_sig=signer.sign("DATA", t, b"h"),
    )


def _drive(engine: LogStructuredEngine, count: int, num_clients: int = 3):
    """Apply ``count`` submits through state + engine, mirroring the server."""
    keystore = KeyStore(num_clients, scheme="hmac")
    state = engine.recover()
    timestamps = [0] * num_clients
    for k in range(count):
        client = k % num_clients
        timestamps[client] += 1
        message = _signed_submit(keystore, client, timestamps[client])
        apply_submit(state, message)
        engine.log_submit(message)
        engine.maybe_checkpoint(state)
    return state


# --------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------- #


class TestWalFraming:
    def test_roundtrip(self):
        data = frame_record(b"one") + frame_record(b"two") + frame_record(b"")
        assert list(iter_frames(data)) == [b"one", b"two", b""]

    def test_torn_header_and_payload_tolerated(self):
        whole = frame_record(b"first")
        assert list(iter_frames(whole + b"\x00\x00")) == [b"first"]
        torn = whole + frame_record(b"second-record")[:-4]
        assert list(iter_frames(torn)) == [b"first"]

    def test_corrupt_crc_stops_replay(self):
        data = bytearray(frame_record(b"first") + frame_record(b"second"))
        data[-1] ^= 0xFF  # flip a bit in the second payload
        assert list(iter_frames(bytes(data))) == [b"first"]


# --------------------------------------------------------------------- #
# Engines
# --------------------------------------------------------------------- #


class TestMemoryEngine:
    def test_nothing_survives(self):
        engine = MemoryEngine(3)
        assert not engine.durable
        state = engine.recover()
        assert state == ServerState.initial(3)
        keystore = KeyStore(3, scheme="hmac")
        engine.log_submit(_signed_submit(keystore, 0, 1))
        assert engine.recover() == ServerState.initial(3)


class TestLogStructuredEngine:
    def test_recovery_is_byte_identical(self):
        engine = LogStructuredEngine(3, snapshot_interval=5)
        live = _drive(engine, 13)
        recovered = LogStructuredEngine(3, medium=engine.medium).recover()
        assert encode_server_state(recovered) == encode_server_state(live)

    def test_recovery_replays_only_the_suffix(self):
        engine = LogStructuredEngine(3, snapshot_interval=5)
        _drive(engine, 13)
        assert engine.snapshots_taken == 2
        fresh = LogStructuredEngine(3, medium=engine.medium)
        fresh.recover()
        assert fresh.last_recovery_replayed == 3  # 13 records, 10 snapshotted

    def test_checkpoint_compacts_the_wal(self):
        engine = LogStructuredEngine(3, snapshot_interval=10**9)
        state = _drive(engine, 7)
        assert engine.medium.size(engine.WAL) > 0
        engine.checkpoint(state)
        assert engine.medium.size(engine.WAL) == 0
        recovered = LogStructuredEngine(3, medium=engine.medium).recover()
        assert encode_server_state(recovered) == encode_server_state(state)

    def test_gc_signal_checkpoints_earlier(self):
        engine = LogStructuredEngine(2, snapshot_interval=100, gc_snapshot_interval=2)
        keystore = KeyStore(2, scheme="hmac")
        state = engine.recover()
        m1 = _signed_submit(keystore, 0, 1)
        apply_submit(state, m1)
        engine.log_submit(m1)
        engine.maybe_checkpoint(state)  # 1 < 100: no snapshot
        assert engine.snapshots_taken == 0
        version = Version(vector=(1, 0), digests=(b"\x01" * 32, None))
        signer = keystore.signer(0)
        commit = CommitMessage(
            version=version,
            commit_sig=signer.sign("COMMIT", version.vector, version.digests),
            proof_sig=signer.sign("PROOF", version.digests[0]),
        )
        pending_before = len(state.pending)
        apply_commit(state, 0, commit)
        engine.log_commit(0, commit)
        engine.maybe_checkpoint(state, gc_advanced=len(state.pending) < pending_before)
        assert engine.snapshots_taken == 1  # GC threshold (2) reached

    def test_torn_wal_tail_recovers_prefix(self):
        engine = LogStructuredEngine(3, snapshot_interval=10**9)
        _drive(engine, 5)
        medium = engine.medium
        whole = medium.read(engine.WAL)
        medium.truncate(engine.WAL)
        medium.append(engine.WAL, whole[:-7])  # crash mid-append
        recovered_engine = LogStructuredEngine(3, medium=medium)
        recovered_engine.recover()
        assert recovered_engine.last_recovery_replayed == 4

    def test_recovery_trims_the_torn_tail(self):
        """Records appended *after* a torn-tail recovery must survive the
        next recovery — the tear has to be trimmed, not appended past."""
        keystore = KeyStore(2, scheme="hmac")
        engine = LogStructuredEngine(2, snapshot_interval=10**9)
        state = engine.recover()
        first = _signed_submit(keystore, 0, 1)
        apply_submit(state, first)
        engine.log_submit(first)
        medium = engine.medium
        medium.append(engine.WAL, b"\x00\x00\x00\x09torn")  # crash mid-append
        survivor = LogStructuredEngine(2, medium=medium)
        state = survivor.recover()
        second = _signed_submit(keystore, 1, 1)
        apply_submit(state, second)
        survivor.log_submit(second)
        final = LogStructuredEngine(2, medium=medium).recover()
        assert final == state
        assert encode_server_state(final) == encode_server_state(state)

    def test_stale_snapshot_recovery_discards_suffix(self):
        engine = LogStructuredEngine(3, snapshot_interval=10**9)
        state = engine.recover()
        keystore = KeyStore(3, scheme="hmac")
        early = _signed_submit(keystore, 0, 1)
        apply_submit(state, early)
        engine.log_submit(early)
        engine.checkpoint(state)
        stale_bytes = encode_server_state(state)
        late = _signed_submit(keystore, 1, 1)
        apply_submit(state, late)
        engine.log_submit(late)
        rolled_back = engine.recover(replay_wal=False)
        assert encode_server_state(rolled_back) == stale_bytes
        # The discarded suffix is gone for good: honest recovery now
        # returns the stale state too.
        assert encode_server_state(engine.recover()) == stale_bytes

    def test_corrupt_snapshot_raises(self):
        engine = LogStructuredEngine(2, snapshot_interval=10**9)
        state = _drive(engine, 3, num_clients=2)
        engine.checkpoint(state)
        data = bytearray(engine.medium.read(engine.SNAPSHOT))
        data[-1] ^= 0xFF
        engine.medium.write_atomic(engine.SNAPSHOT, bytes(data))
        with pytest.raises(StorageError, match="snapshot"):
            LogStructuredEngine(2, medium=engine.medium).recover()

    def test_directory_medium_end_to_end(self, tmp_path):
        medium = DirectoryMedium(tmp_path / "store")
        engine = LogStructuredEngine(3, medium=medium, snapshot_interval=4)
        live = _drive(engine, 11)
        recovered = LogStructuredEngine(
            3, medium=DirectoryMedium(tmp_path / "store")
        ).recover()
        assert encode_server_state(recovered) == encode_server_state(live)

    def test_invalid_intervals_rejected(self):
        with pytest.raises(ConfigurationError):
            LogStructuredEngine(2, snapshot_interval=0)
        with pytest.raises(ConfigurationError):
            LogStructuredEngine(2, gc_snapshot_interval=0)


class TestMakeEngine:
    def test_by_name_instance_and_factory(self):
        assert isinstance(make_engine("memory", 2), MemoryEngine)
        assert isinstance(make_engine("log", 2), LogStructuredEngine)
        ready = LogStructuredEngine(2)
        assert make_engine(ready, 2) is ready
        made = make_engine(lambda n: LogStructuredEngine(n, snapshot_interval=7), 2)
        assert isinstance(made, LogStructuredEngine)
        assert made.snapshot_interval == 7

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            make_engine("flash", 2)
        with pytest.raises(ConfigurationError):
            make_engine(lambda n: object(), 2)
        with pytest.raises(ConfigurationError):
            make_engine(42, 2)

    def test_abstract_engine_validates_population(self):
        with pytest.raises(ConfigurationError):
            MemoryEngine(0)
        assert issubclass(LogStructuredEngine, StorageEngine)


# --------------------------------------------------------------------- #
# The fault axis end to end
# --------------------------------------------------------------------- #


class TestServerCrashRecovery:
    def _system(self, storage="log", **kwargs):
        return SystemBuilder(num_clients=2, seed=5, storage=storage, **kwargs).build()

    def test_honest_outage_is_invisible_with_log_engine(self):
        system = self._system()
        system.server_outage(5.0, 10.0)
        done = []
        alice, bob = system.clients
        alice.write(b"before", done.append)
        system.run(until=4.5)
        alice.write(b"during-outage", done.append)  # held by the channel
        system.run(until=40.0)
        bob.read(0, done.append)
        system.run(until=60.0)
        assert [o.timestamp for o in done[:2]] == [1, 2]
        assert done[2].value == b"during-outage"
        server = system.server
        assert server.restarts == 1
        assert encode_server_state(server.last_pre_crash_state) == (
            encode_server_state(server.last_recovery_state)
        )
        assert not any(c.failed for c in system.clients)

    def test_memory_engine_restart_is_amnesia(self):
        system = self._system(storage="memory")
        done = []
        system.clients[0].write(b"will-be-forgotten", done.append)
        system.run(until=10.0)
        system.server_outage(10.0, 5.0)
        system.run(until=20.0)
        assert system.server.state == ServerState.initial(2)
        # The writer's next operation meets a server that forgot it: the
        # version check of Algorithm 1 line 36 fires.
        system.clients[0].write(b"after", lambda _o: None)
        system.run(until=40.0)
        assert system.clients[0].failed
        assert "line 36" in system.clients[0].fail_reason

    def test_restart_is_noop_when_not_crashed(self):
        system = self._system()
        system.server.restart()
        assert system.server.restarts == 0

    def test_repeated_outages(self):
        system = self._system()
        system.server_outage(5.0, 5.0)
        system.server_outage(20.0, 5.0)
        done = []
        for k in range(4):
            system.clients[0].write(b"w%d" % k, done.append)
            system.run(until=(k + 1) * 8.0)
        system.run(until=60.0)
        assert len(done) == 4
        assert system.server.restarts == 2
        assert not system.clients[0].failed

    def test_server_churn_composes_with_client_churn(self):
        system = SystemBuilder(num_clients=3, seed=8, storage="log").build_faust(
            dummy_read_period=4.0, probe_check_period=6.0, delta=30.0
        )
        churn = ChurnSchedule(system)
        churn.add_window(client=2, start=10.0, duration=25.0)
        churn.add_server_outage(start=18.0, duration=12.0)
        done = []
        system.clients[0].write(b"survives-both", done.append)
        system.run(until=300.0)
        assert done and churn.server_outages[0].end == 30.0
        assert system.server.restarts == 1
        assert not any(c.faust_failed for c in system.clients)

    def test_server_outage_validation(self):
        system = self._system()
        with pytest.raises(Exception):
            system.server_outage(5.0, 0.0)
        churn_system = SystemBuilder(num_clients=2, seed=1).build_faust()
        churn = ChurnSchedule(churn_system)
        with pytest.raises(ValueError):
            churn.add_server_outage(1.0, -2.0)
        churn.add_server_outage(10.0, 10.0)
        with pytest.raises(ValueError, match="overlap"):
            churn.add_server_outage(15.0, 2.0)

    def test_random_server_outages_never_overlap(self):
        system = SystemBuilder(num_clients=2, seed=13, storage="log").build_faust()
        churn = ChurnSchedule(system)
        churn.random_server_outages(count=12, horizon=200.0, mean_duration=15.0)
        windows = sorted(churn.server_outages, key=lambda w: w.start)
        assert windows  # some draws always land
        for a, b in zip(windows, windows[1:]):
            assert a.end <= b.start
