"""Exposition-layer tests: Prometheus text, the ``/metrics`` HTTP
listener, JSONL snapshots, and trace-id wire-trace replay fidelity.

The HTTP tests drive a real asyncio listener over loopback sockets; the
replay test records a full TCP run with ``trace_ids=True`` and asserts
``repro replay``'s byte-identity verdict still holds — the acceptance
bar for stamping an extra TLV field onto SUBMIT/COMMIT.
"""

from __future__ import annotations

import asyncio
import json
import random

import pytest

from repro.obs.exposition import (
    JsonlSnapshotWriter,
    MetricsHTTPServer,
    render_prometheus,
)
from repro.obs.registry import COUNT_BUCKETS, Registry


def _populated_registry() -> Registry:
    registry = Registry()
    registry.counter("net.frames_sent").inc(3)
    registry.gauge("health.max_stability_lag").set(2.0)
    hist = registry.histogram("session.flush_batch_ops", COUNT_BUCKETS)
    hist.observe(1)
    hist.observe(3)
    return registry


class TestRenderPrometheus:
    def test_counter_gauge_histogram_series(self):
        text = render_prometheus(_populated_registry())
        assert "# TYPE repro_net_frames_sent_total counter" in text
        assert "repro_net_frames_sent_total 3" in text
        assert "repro_health_max_stability_lag 2" in text
        # Histogram: cumulative le buckets, closed by +Inf.
        assert 'repro_session_flush_batch_ops_bucket{le="1"} 1' in text
        assert 'repro_session_flush_batch_ops_bucket{le="4"} 2' in text
        assert 'repro_session_flush_batch_ops_bucket{le="+Inf"} 2' in text
        assert "repro_session_flush_batch_ops_sum 4" in text
        assert "repro_session_flush_batch_ops_count 2" in text

    def test_names_are_sanitized(self):
        registry = Registry()
        registry.counter("a.b-c d").inc()
        assert "repro_a_b_c_d_total 1" in render_prometheus(registry)


async def _scrape(server: MetricsHTTPServer, request: str) -> tuple[str, str]:
    reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
    writer.write(request.encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.decode().partition("\r\n\r\n")
    return head.splitlines()[0], body


class TestMetricsHTTPServer:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_metrics_and_json_and_errors(self):
        async def scenario():
            registry = _populated_registry()
            refreshed = []
            server = MetricsHTTPServer(
                registry, port=0, on_scrape=lambda: refreshed.append(1)
            )
            await server.start()
            try:
                status, body = await _scrape(
                    server, "GET /metrics HTTP/1.0\r\n\r\n"
                )
                assert "200" in status
                assert "repro_net_frames_sent_total 3" in body
                status, body = await _scrape(
                    server, "GET /metrics.json HTTP/1.0\r\n\r\n"
                )
                assert "200" in status
                assert json.loads(body)["net.frames_sent"] == 3
                status, _ = await _scrape(
                    server, "GET /nope HTTP/1.0\r\n\r\n"
                )
                assert "404" in status
                status, _ = await _scrape(
                    server, "POST /metrics HTTP/1.0\r\n\r\n"
                )
                assert "405" in status
                # on_scrape ran for the two successful reads + the 404
                # (it refreshes gauges before routing), scrapes counted.
                assert server.scrapes == 3
                assert refreshed
            finally:
                await server.stop()

        self._run(scenario())

    def test_ephemeral_port_resolved_and_endpoint(self):
        async def scenario():
            server = MetricsHTTPServer(Registry(), port=0)
            await server.start()
            try:
                assert server.port != 0
                assert server.endpoint == f"127.0.0.1:{server.port}"
            finally:
                await server.stop()

        self._run(scenario())


class TestJsonlSnapshotWriter:
    def test_appends_timestamped_snapshots(self, tmp_path):
        registry = Registry()
        counter = registry.counter("x")
        path = tmp_path / "metrics.jsonl"
        hooked = []
        writer = JsonlSnapshotWriter(
            registry, path, on_snapshot=lambda: hooked.append(1)
        )
        counter.inc()
        writer.write(1.0)
        counter.inc()
        writer.write(2.5)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["t"] for line in lines] == [1.0, 2.5]
        assert [line["metrics"]["x"] for line in lines] == [1, 2]
        assert writer.snapshots_written == 2
        assert len(hooked) == 2

    def test_truncates_the_previous_run(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        path.write_text("stale\n")
        JsonlSnapshotWriter(Registry(), path)
        assert path.read_text() == ""


@pytest.mark.net
class TestTraceIdReplayFidelity:
    def test_traced_run_replays_byte_identically(self, tmp_path):
        from repro.net.client import NetRuntime, open_tcp_system
        from repro.net.server import NetServerHost
        from repro.net.trace import replay_trace
        from repro.obs.tracing import SpanLog
        from repro.workloads.generator import (
            Driver,
            WorkloadConfig,
            generate_scripts,
        )

        trace_path = tmp_path / "wire.jsonl"
        runtime = NetRuntime()
        host = NetServerHost(2)
        runtime.run_coroutine(host.start())
        span_log = SpanLog()
        system = open_tcp_system(
            2,
            (host.endpoint,),
            runtime=runtime,
            trace_path=str(trace_path),
            trace_ids=True,
            span_log=span_log,
            default_timeout=10.0,
        )
        system.hosts.append(host)
        system.owns_runtime = True
        with system:
            scripts = generate_scripts(
                2,
                WorkloadConfig(
                    ops_per_client=4, read_fraction=0.5, mean_think_time=0.005
                ),
                random.Random(5),
            )
            driver = Driver(system)
            driver.attach_all(scripts)
            assert driver.run_to_completion(timeout=20.0)
            system.run_until_quiescent(timeout=5.0)

        header = json.loads(trace_path.read_text().splitlines()[0])
        assert header["trace_ids"] is True
        # The clients emitted per-operation instants carrying trace ids.
        assert any(
            r["name"].startswith("submit:") and r["trace_id"] is not None
            for r in span_log.records
        )
        result = replay_trace(str(trace_path))
        assert result.ok, result.divergences
        assert len(result.history) == 8
