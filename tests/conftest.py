"""Shared fixtures and history-building helpers for the test suite."""

from __future__ import annotations

import itertools

import pytest

from repro.common.types import BOTTOM, OpKind
from repro.crypto.keystore import KeyStore
from repro.history.events import Operation
from repro.history.history import History

_ids = itertools.count(1)


def w(client, value, start, end, op_id=None, timestamp=None):
    """A write operation literal (client writes its own register)."""
    return Operation(
        op_id=next(_ids) if op_id is None else op_id,
        client=client,
        kind=OpKind.WRITE,
        register=client,
        value=value,
        invoked_at=start,
        responded_at=end,
        timestamp=timestamp,
    )


def r(client, register, value, start, end, op_id=None, timestamp=None):
    """A read operation literal; ``value`` is the returned value."""
    return Operation(
        op_id=next(_ids) if op_id is None else op_id,
        client=client,
        kind=OpKind.READ,
        register=register,
        value=value,
        invoked_at=start,
        responded_at=end,
        timestamp=timestamp,
    )


def h(*operations) -> History:
    return History(operations)


@pytest.fixture(scope="session")
def keystore3() -> KeyStore:
    return KeyStore(3, scheme="hmac")


@pytest.fixture()
def bottom():
    return BOTTOM
