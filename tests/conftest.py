"""Shared fixtures for the test suite.

The history-building helpers live in :mod:`histbuild`; import them from
there (``from histbuild import h, r, w``), never from ``conftest`` —
module-name collisions with other conftest files break collection.
"""

from __future__ import annotations

import pytest

from repro.common.types import BOTTOM
from repro.crypto.keystore import KeyStore


@pytest.fixture(scope="session")
def keystore3() -> KeyStore:
    return KeyStore(3, scheme="hmac")


@pytest.fixture()
def bottom():
    return BOTTOM
