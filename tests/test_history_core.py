"""Operations, histories, the register spec, and the recorder."""

from __future__ import annotations

import pytest

from repro.common.errors import HistoryError
from repro.common.types import BOTTOM, OpKind
from repro.history.events import Operation
from repro.history.history import History, prefix_up_to
from repro.history.recorder import HistoryRecorder
from repro.history.register_spec import (
    explain_illegal,
    is_legal_sequence,
    run_sequentially,
)

from histbuild import h, r, w


class TestOperation:
    def test_swmr_enforced(self):
        with pytest.raises(HistoryError):
            Operation(1, client=0, kind=OpKind.WRITE, register=1, value=b"x",
                      invoked_at=0, responded_at=1)

    def test_read_any_register_allowed(self):
        op = r(0, 2, b"x", 0, 1)
        assert op.register == 2

    def test_response_before_invocation_rejected(self):
        with pytest.raises(HistoryError):
            w(0, b"x", 5, 1)

    def test_write_needs_value(self):
        with pytest.raises(HistoryError):
            Operation(1, client=0, kind=OpKind.WRITE, register=0, value=None,
                      invoked_at=0, responded_at=1)

    def test_real_time_precedence_strict(self):
        a = w(0, b"a", 0, 1)
        b = r(1, 0, b"a", 2, 3)
        c = r(2, 0, b"a", 1, 4)  # overlaps a's response instant boundary
        assert a.precedes(b)
        assert not b.precedes(a)
        assert not a.precedes(c) or a.responded_at < c.invoked_at

    def test_concurrency(self):
        a = w(0, b"a", 0, 10)
        b = r(1, 0, BOTTOM, 5, 6)
        assert a.concurrent_with(b)
        assert b.concurrent_with(a)

    def test_incomplete_never_precedes(self):
        a = w(0, b"a", 0, None)
        b = r(1, 0, BOTTOM, 100, 101)
        assert not a.precedes(b)

    def test_completed_copy(self):
        pending = w(0, b"a", 0, None)
        done = pending.completed_copy(responded_at=float("inf"))
        assert done.complete and done.value == b"a"

    def test_completed_copy_read_takes_value(self):
        pending = r(0, 1, None, 0, None)
        done = pending.completed_copy(responded_at=5.0, value=b"v")
        assert done.value == b"v"

    def test_describe_uses_paper_notation(self):
        assert w(0, b"u", 0, 1).describe() == "write_C1(X1, 'u')"
        assert r(1, 0, BOTTOM, 0, 1).describe() == "read_C2(X1) -> BOTTOM"


class TestHistory:
    def test_sorted_by_invocation(self):
        late = w(0, b"b", 5, 6)
        early = r(1, 0, BOTTOM, 0, 1)
        hist = h(late, early)
        assert hist[0] is early

    def test_duplicate_op_id_rejected(self):
        a = w(0, b"a", 0, 1, op_id=99)
        b = r(1, 0, BOTTOM, 2, 3, op_id=99)
        with pytest.raises(HistoryError):
            h(a, b)

    def test_overlapping_ops_same_client_rejected(self):
        a = w(0, b"a", 0, 5)
        b = r(0, 0, b"a", 3, 6)
        with pytest.raises(HistoryError):
            h(a, b)

    def test_invoke_while_pending_rejected(self):
        a = w(0, b"a", 0, None)
        b = r(0, 1, BOTTOM, 1, 2)
        with pytest.raises(HistoryError):
            h(a, b)

    def test_complete_filters_pending(self):
        a = w(0, b"a", 0, 1)
        b = w(1, b"b", 0, None)
        assert [op.op_id for op in h(a, b).complete()] == [a.op_id]

    def test_restrict_to_client(self):
        a = w(0, b"a", 0, 1)
        b = r(1, 0, b"a", 2, 3)
        c = r(0, 1, BOTTOM, 2, 3)
        hist = h(a, b, c)
        assert [op.op_id for op in hist.restrict_to_client(0)] == [a.op_id, c.op_id]

    def test_writes_to_in_program_order(self):
        a = w(0, b"a", 0, 1)
        b = w(0, b"b", 2, 3)
        hist = h(a, b)
        assert [op.value for op in hist.writes_to(0)] == [b"a", b"b"]
        assert hist.writes_to(1) == []

    def test_unique_values_enforced(self):
        a = w(0, b"same", 0, 1)
        b = w(0, b"same", 2, 3)
        with pytest.raises(HistoryError):
            h(a, b).assert_unique_write_values()

    def test_same_value_different_registers_allowed(self):
        a = w(0, b"same", 0, 1)
        b = w(1, b"same", 0, 1)
        h(a, b).assert_unique_write_values()

    def test_write_of_value(self):
        a = w(0, b"a", 0, 1)
        hist = h(a)
        assert hist.write_of_value(0, b"a") is a
        assert hist.write_of_value(0, b"zz") is None
        assert hist.write_of_value(0, BOTTOM) is None

    def test_completed_for_checking_drops_incomplete_reads(self):
        a = r(0, 1, None, 0, None)
        assert len(h(a).completed_for_checking()) == 0

    def test_completed_for_checking_keeps_incomplete_writes(self):
        a = w(0, b"a", 0, None)
        prepared = h(a).completed_for_checking()
        assert len(prepared) == 1
        assert prepared[0].responded_at == float("inf")

    def test_prefix_up_to(self):
        a = w(0, b"a", 0, 1)
        b = r(1, 0, b"a", 2, 3)
        assert [op.op_id for op in prefix_up_to([a, b], a)] == [a.op_id]
        with pytest.raises(HistoryError):
            prefix_up_to([a], b)

    def test_op_lookup(self):
        a = w(0, b"a", 0, 1)
        hist = h(a)
        assert hist.op(a.op_id) is a
        with pytest.raises(HistoryError):
            hist.op(10**9)

    def test_clients_and_registers(self):
        hist = h(w(0, b"a", 0, 1), r(2, 1, BOTTOM, 0, 1))
        assert hist.clients() == [0, 2]
        assert hist.registers() == [0, 1]

    def test_describe_includes_pending(self):
        text = h(w(0, b"a", 0, None)).describe()
        assert "pending" in text


class TestRegisterSpec:
    def test_read_after_write(self):
        assert is_legal_sequence([w(0, b"a", 0, 1), r(1, 0, b"a", 2, 3)])

    def test_read_initial(self):
        assert is_legal_sequence([r(1, 0, BOTTOM, 0, 1)])

    def test_stale_read_illegal(self):
        seq = [w(0, b"a", 0, 1), w(0, b"b", 2, 3), r(1, 0, b"a", 4, 5)]
        assert not is_legal_sequence(seq)

    def test_bottom_after_write_illegal(self):
        assert not is_legal_sequence([w(0, b"a", 0, 1), r(1, 0, BOTTOM, 2, 3)])

    def test_registers_independent(self):
        seq = [w(0, b"a", 0, 1), w(1, b"b", 0, 1), r(2, 0, b"a", 2, 3), r(2, 1, b"b", 4, 5)]
        assert is_legal_sequence(seq)

    def test_run_sequentially_reports_offender(self):
        bad = r(1, 0, b"ghost", 0, 1)
        legal, offender, state = run_sequentially([bad])
        assert not legal and offender == bad.op_id

    def test_explain_illegal(self):
        message = explain_illegal([w(0, b"a", 0, 1), r(1, 0, BOTTOM, 2, 3)])
        assert message is not None and "should have returned" in message
        assert explain_illegal([w(0, b"a", 0, 1)]) is None


class TestRecorder:
    def test_begin_end_roundtrip(self):
        rec = HistoryRecorder()
        op_id = rec.begin(0, OpKind.WRITE, 0, invoked_at=1.0, value=b"v", timestamp=1)
        op = rec.end(op_id, responded_at=2.0)
        assert op.value == b"v" and op.complete and op.timestamp == 1

    def test_read_value_set_at_end(self):
        rec = HistoryRecorder()
        op_id = rec.begin(0, OpKind.READ, 1, invoked_at=1.0, timestamp=1)
        op = rec.end(op_id, responded_at=2.0, value=b"seen")
        assert op.value == b"seen"

    def test_pending_included_in_history(self):
        rec = HistoryRecorder()
        rec.begin(0, OpKind.WRITE, 0, invoked_at=1.0, value=b"v", timestamp=1)
        hist = rec.history()
        assert len(hist) == 1 and not hist[0].complete
        assert rec.pending_count == 1 and rec.completed_count == 0

    def test_double_end_rejected(self):
        rec = HistoryRecorder()
        op_id = rec.begin(0, OpKind.WRITE, 0, invoked_at=1.0, value=b"v")
        rec.end(op_id, responded_at=2.0)
        with pytest.raises(HistoryError):
            rec.end(op_id, responded_at=3.0)

    def test_timestamp_lookup(self):
        rec = HistoryRecorder()
        op_id = rec.begin(2, OpKind.READ, 0, invoked_at=0.0, timestamp=7)
        assert rec.op_id_for(2, 7) == op_id
        assert rec.op_id_for(2, 8) is None
