"""Workload generation, the driver, the blocking session surface, scenarios.

Formerly exercised the deprecated ``FaustService`` shim; the blocking
round-trips now go through the ``repro.api`` facade directly (the shim's
own deprecation contract is pinned in ``tests/test_api_facade.py``).
"""

from __future__ import annotations

import math
import random

import pytest

from repro.api import FaustBackend, FaustParams, OperationFailed, SystemConfig
from repro.common.errors import ConfigurationError
from repro.common.types import BOTTOM, OpKind
from repro.workloads.generator import (
    Driver,
    WorkloadConfig,
    generate_scripts,
    unique_value,
)
from repro.workloads.runner import SystemBuilder
from repro.workloads.scenarios import (
    figure3_scenario,
    rollback_attack_scenario,
    server_outage_scenario,
    split_brain_scenario,
)


class TestWorkloadGenerator:
    def test_unique_values_are_unique(self):
        values = {unique_value(c, s, 32) for c in range(5) for s in range(50)}
        assert len(values) == 250

    def test_unique_value_size(self):
        assert len(unique_value(0, 1, 32)) == 32
        assert len(unique_value(0, 1, 4)) >= 4  # stem may exceed tiny sizes

    def test_scripts_respect_counts(self):
        scripts = generate_scripts(3, WorkloadConfig(ops_per_client=7), random.Random(1))
        assert all(len(s) == 7 for s in scripts.values())

    def test_read_fraction_extremes(self):
        all_reads = generate_scripts(
            2, WorkloadConfig(ops_per_client=20, read_fraction=1.0), random.Random(1)
        )
        assert all(op.kind is OpKind.READ for s in all_reads.values() for op in s)
        all_writes = generate_scripts(
            2, WorkloadConfig(ops_per_client=20, read_fraction=0.0), random.Random(1)
        )
        assert all(op.kind is OpKind.WRITE for s in all_writes.values() for op in s)

    def test_writes_target_own_register(self):
        scripts = generate_scripts(
            3, WorkloadConfig(ops_per_client=20, read_fraction=0.3), random.Random(2)
        )
        for client, script in scripts.items():
            for op in script:
                if op.kind is OpKind.WRITE:
                    assert op.register == client

    def test_silent_clients(self):
        scripts = generate_scripts(
            3,
            WorkloadConfig(ops_per_client=5, silent_clients=frozenset({1})),
            random.Random(3),
        )
        assert scripts[1] == [] and len(scripts[0]) == 5

    def test_deterministic_given_seed(self):
        a = generate_scripts(2, WorkloadConfig(ops_per_client=9), random.Random(4))
        b = generate_scripts(2, WorkloadConfig(ops_per_client=9), random.Random(4))
        assert a == b

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(read_fraction=1.5)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(ops_per_client=-1)


class TestDriver:
    def test_completion_fraction(self):
        system = SystemBuilder(num_clients=2, seed=1).build()
        scripts = generate_scripts(2, WorkloadConfig(ops_per_client=4), random.Random(1))
        driver = Driver(system)
        driver.attach_all(scripts)
        assert driver.run_to_completion()
        assert driver.completion_fraction() == 1.0
        assert driver.stats.total_completed() == 8

    def test_crashed_client_stops_mid_script(self):
        system = SystemBuilder(num_clients=2, seed=2).build()
        scripts = generate_scripts(
            2, WorkloadConfig(ops_per_client=10, mean_think_time=1.0), random.Random(2)
        )
        driver = Driver(system)
        driver.attach_all(scripts)
        system.crash_client_at(0, time=5.0)
        system.run(until=1_000)
        assert driver.stats.completed[1] == 10
        assert driver.stats.completed[0] < 10

    def test_empty_script_counts_done(self):
        system = SystemBuilder(num_clients=1, seed=3).build()
        driver = Driver(system)
        driver.attach(0, [])
        assert driver.stats.all_done()
        assert driver.completion_fraction() == 1.0


class TestBlockingSessions:
    """The blocking read/write surface (formerly the FaustService shim),
    exercised through the facade sessions it was deprecated in favour of."""

    def _system(self, seed, **config_kwargs):
        return FaustBackend().open_system(
            SystemConfig(num_clients=2, seed=seed, **config_kwargs)
        )

    def test_write_read_roundtrip(self):
        system = self._system(5)
        alice, bob = system.session(0), system.session(1)
        t = alice.write_sync(b"hello")
        assert t >= 1
        value, _t2 = bob.read_sync(0)
        assert value == b"hello"

    def test_read_unwritten_register(self):
        system = self._system(5)
        value, _t = system.session(0).read_sync(1)
        assert value is BOTTOM

    def test_wait_for_stability(self):
        system = self._system(6, faust=FaustParams(dummy_read_period=2.0))
        alice = system.session(0)
        t = alice.write_sync(b"document")
        assert alice.wait_for_stability(t, timeout=2_000)
        assert min(alice.stability_cut) >= t

    def test_operation_failed_surface(self):
        from repro.ustor.byzantine import TamperingServer

        system = self._system(
            7, server_factory=lambda n, name: TamperingServer(n, 0, name=name)
        )
        system.session(0).write_sync(b"genuine")
        with pytest.raises(OperationFailed):
            system.session(1).read_sync(0)


class TestScenarios:
    def test_figure3_deterministic(self):
        a = figure3_scenario(seed=3)
        b = figure3_scenario(seed=3)
        assert [op.describe() for op in a.history] == [op.describe() for op in b.history]

    def test_split_brain_without_faust_is_silent(self):
        result = split_brain_scenario(num_clients=4, seed=99, faust=False, run_for=300.0)
        assert not any(getattr(c, "failed", False) for c in result.system.clients)

    def test_server_outage_with_recovery_is_invisible(self):
        result = server_outage_scenario(ops_per_client=5)
        assert result.completed_all
        assert result.recovery_byte_identical
        assert not result.failure_events
        assert result.system.server.restarts == 1

    def test_server_outage_on_volatile_storage_is_detected(self):
        result = server_outage_scenario(
            ops_per_client=5, storage="memory", run_for=600.0
        )
        assert not result.recovery_byte_identical
        assert result.failure_events

    def test_rollback_attack_detected_by_all(self):
        result = rollback_attack_scenario(ops_per_client=6)
        assert len(result.detection_times) == 3
        assert not math.isnan(result.detection_latency)
        assert result.detection_latency >= 0
        assert result.restart_time is not None

    def test_rollback_scenario_deterministic(self):
        a = rollback_attack_scenario(ops_per_client=6)
        b = rollback_attack_scenario(ops_per_client=6)
        assert a.detection_times == b.detection_times
        assert a.restart_time == b.restart_time
