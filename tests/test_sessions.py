"""SessionPool: many logical sessions over few signer slots.

The pool is pure bookkeeping — no scheduler, no network — so these tests
drive it directly: lease/release cycling, the reconnect path that wants
one *specific* slot back, lazy materialization of backing clients,
eviction quarantine driven by installed epochs, and the churn planner's
overload rejection.  The tens-of-thousands-of-sessions claim is tested
literally: 20k sessions cycle through 8 slots without the signer count
ever exceeding 8.
"""

from __future__ import annotations

import random

import pytest

from repro.common.errors import ConfigurationError
from repro.faust.membership import Epoch
from repro.workloads.sessions import (
    SessionPool,
    SessionWindow,
    _max_concurrent,
    plan_churn_windows,
)


class _FakeClient:
    """Stands in for a FaustClient with membership on."""

    def __init__(self, slot: int) -> None:
        self.slot = slot
        self.listeners = []

    def add_epoch_listener(self, listener) -> None:
        self.listeners.append(listener)

    def install(self, epoch: Epoch) -> None:
        for listener in self.listeners:
            listener(epoch)


def _pool(n: int = 4):
    built: list[int] = []
    clients: dict[int, _FakeClient] = {}

    def provider(slot: int) -> _FakeClient:
        built.append(slot)
        clients[slot] = _FakeClient(slot)
        return clients[slot]

    return SessionPool(n, provider=provider), built, clients


def _epoch(number: int, members) -> Epoch:
    return Epoch(
        epoch=number, members=tuple(members), parent_digest=b"x", digest=b"y"
    )


# --------------------------------------------------------------------- #
# Lease lifecycle
# --------------------------------------------------------------------- #


def test_acquire_release_cycles_slots_with_monotonic_session_ids():
    pool, _built, _clients = _pool(2)
    a = pool.acquire()
    b = pool.acquire()
    assert {a.slot, b.slot} == {0, 1}
    assert (a.session_id, b.session_id) == (0, 1)
    assert pool.in_use == 2 and pool.available == 0
    pool.release(a)
    assert pool.in_use == 1 and pool.available == 1
    c = pool.acquire()
    assert c.slot == a.slot  # the freed slot, reused
    assert c.session_id == 2  # but a brand-new logical session
    assert pool.peak_in_use == 2
    assert pool.sessions_created == 3


def test_exhaustion_raises_and_try_acquire_returns_none():
    pool, _built, _clients = _pool(1)
    pool.acquire()
    assert pool.try_acquire() is None
    with pytest.raises(ConfigurationError, match="signer slot"):
        pool.acquire()


def test_release_of_a_stale_lease_is_a_no_op():
    pool, _built, _clients = _pool(1)
    lease = pool.acquire()
    pool.release(lease)
    pool.release(lease)  # double release: no double-free
    assert pool.available == 1
    fresh = pool.acquire()
    pool.release(lease)  # releasing the old lease cannot evict the new one
    assert pool.lease_for(fresh.slot) is fresh


def test_try_acquire_slot_is_the_reconnect_path():
    pool, _built, _clients = _pool(3)
    lease = pool.acquire()  # slot 0
    # A specific free slot can be claimed out of order...
    back = pool.try_acquire_slot(2)
    assert back is not None and back.slot == 2
    # ...but a leased slot, or nonsense, cannot.
    assert pool.try_acquire_slot(lease.slot) is None
    assert pool.try_acquire_slot(2) is None
    assert pool.try_acquire_slot(-1) is None
    assert pool.try_acquire_slot(99) is None
    # The generic path still hands out the remaining slot.
    assert pool.acquire().slot == 1


# --------------------------------------------------------------------- #
# Lazy materialization
# --------------------------------------------------------------------- #


def test_clients_materialize_lazily_once_per_slot():
    pool, built, _clients = _pool(100)
    assert built == []  # building the pool costs nothing
    a = pool.acquire()
    assert built == [a.slot]
    pool.release(a)
    pool.try_acquire_slot(a.slot)
    assert built == [a.slot]  # re-lease does not re-build
    pool.try_acquire_slot(7)
    assert built == [a.slot, 7]


def test_pool_without_provider_rejects_materialization():
    pool = SessionPool(2)
    with pytest.raises(ConfigurationError, match="provider"):
        pool.acquire()


def test_pool_needs_at_least_one_slot():
    with pytest.raises(ConfigurationError, match="at least one"):
        SessionPool(0)


# --------------------------------------------------------------------- #
# Membership-driven quarantine
# --------------------------------------------------------------------- #


def test_eviction_quarantines_the_slot_and_ends_its_session():
    pool, _built, clients = _pool(3)
    leases = [pool.acquire() for _ in range(3)]
    clients[0].install(_epoch(1, members=(0, 2)))  # slot 1 evicted
    assert pool.quarantined == (1,)
    assert pool.sessions_evicted == 1
    assert pool.lease_for(1) is None
    assert pool.try_acquire_slot(1) is None
    assert pool.try_acquire() is None  # 0 and 2 are still leased
    # Releasing an evicted session's stale lease cannot resurrect it.
    pool.release(leases[1])
    assert pool.available == 0


def test_readmission_recycles_the_slot():
    pool, _built, clients = _pool(3)
    for _ in range(3):
        pool.acquire()
    clients[0].install(_epoch(1, members=(0, 2)))
    clients[0].install(_epoch(2, members=(0, 1, 2)))  # slot 1 re-admitted
    assert pool.quarantined == ()
    assert pool.sessions_recycled == 1
    fresh = pool.try_acquire()
    assert fresh is not None and fresh.slot == 1


def test_epochs_are_deduplicated_across_reporting_clients():
    pool, _built, clients = _pool(3)
    for _ in range(3):
        pool.acquire()
    epoch = _epoch(1, members=(0, 2))
    clients[0].install(epoch)
    clients[2].install(epoch)  # every member reports the same install
    assert pool.sessions_evicted == 1  # counted once
    clients[0].install(_epoch(2, members=(0, 1, 2)))
    clients[2].install(_epoch(2, members=(0, 1, 2)))
    assert pool.sessions_recycled == 1


def test_eviction_of_a_free_slot_removes_it_from_the_free_list():
    pool, _built, clients = _pool(2)
    lease = pool.acquire()  # slot 0, materialized (and subscribed)
    pool.release(lease)
    clients[0].install(_epoch(1, members=(1,)))  # slot 0 evicted while free
    assert pool.sessions_evicted == 0  # nobody was holding it
    assert pool.try_acquire_slot(0) is None
    got = pool.acquire()
    assert got.slot == 1


# --------------------------------------------------------------------- #
# Scale: sessions are cheap, signers are not
# --------------------------------------------------------------------- #


def test_twenty_thousand_sessions_over_eight_slots():
    pool, built, _clients = _pool(8)
    rng = random.Random(7)
    live = []
    for _ in range(20_000):
        if live and (len(live) == 8 or rng.random() < 0.5):
            pool.release(live.pop(rng.randrange(len(live))))
        lease = pool.acquire()
        live.append(lease)
    assert pool.sessions_created == 20_000
    assert pool.peak_in_use <= 8
    assert len(built) == len(set(built)) <= 8
    ids = pool._next_session
    assert ids == 20_000  # monotonic, never reused


# --------------------------------------------------------------------- #
# Churn planning
# --------------------------------------------------------------------- #


def test_churn_plan_is_deterministic_and_sane():
    a = plan_churn_windows(
        random.Random(11), 20, horizon=500.0, mean_duration=5.0, num_slots=40
    )
    b = plan_churn_windows(
        random.Random(11), 20, horizon=500.0, mean_duration=5.0, num_slots=40
    )
    assert a == b
    assert len(a) == 20
    assert all(0.0 <= w.start < 500.0 for w in a)
    assert all(w.duration >= 1.0 for w in a)
    assert a == sorted(a, key=lambda w: (w.start, w.duration))


def test_churn_plan_rejects_concurrent_overload():
    with pytest.raises(ConfigurationError, match="signer set"):
        plan_churn_windows(
            random.Random(3), 50, horizon=10.0, mean_duration=60.0, num_slots=2
        )


def test_churn_plan_rejects_negative_count():
    with pytest.raises(ConfigurationError, match="non-negative"):
        plan_churn_windows(
            random.Random(3), -1, horizon=10.0, mean_duration=1.0, num_slots=2
        )


def test_max_concurrent_counts_overlap():
    windows = [
        SessionWindow(0.0, 10.0),
        SessionWindow(5.0, 10.0),
        SessionWindow(20.0, 1.0),
    ]
    assert _max_concurrent(windows) == 2
    assert _max_concurrent([]) == 0
    assert windows[0].end == 10.0
