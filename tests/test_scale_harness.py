"""The open-loop scale harness: generators, driver, churn, bounded state.

Everything here is deterministic under a pinned seed — the Poisson/Zipf
schedules, the open-loop driver's issue times, and whole
:func:`repro.workloads.scale.run_scale` reports replay identically.  The
headline property (the reason the harness exists) is the slow-tier
``test_checkpointing_bounds_resident_state``: across 20+ checkpoint
intervals of sustained load, every resident structure stays O(active
window) with checkpointing on, while the same seeded run without it
grows without bound — at identical operation latencies.
"""

from __future__ import annotations

import random

import pytest

from repro.common.errors import ConfigurationError
from repro.faust.checkpoint import CheckpointPolicy
from repro.workloads.generator import (
    OpenLoopConfig,
    ZipfSampler,
    generate_open_loop,
)
from repro.workloads.scale import ScaleConfig, ScaleReport, run_scale

SEED = 20260730


# --------------------------------------------------------------------- #
# Generators
# --------------------------------------------------------------------- #


def test_zipf_sampler_is_skewed_and_deterministic():
    sampler = ZipfSampler(16, exponent=1.0)
    counts = [0] * 16
    rng = random.Random(SEED)
    for _ in range(4000):
        counts[sampler.sample(rng)] += 1
    # Zipf(1): item 0 beats the mid-rank items by a wide margin.
    assert counts[0] > 3 * counts[7]
    assert counts[0] > counts[1] > counts[15]
    replay = [ZipfSampler(16, exponent=1.0).sample(random.Random(SEED))
              for _ in range(1)]
    assert replay[0] == ZipfSampler(16, exponent=1.0).sample(random.Random(SEED))


def test_zipf_exponent_zero_is_uniform():
    sampler = ZipfSampler(8, exponent=0.0)
    counts = [0] * 8
    rng = random.Random(1)
    for _ in range(8000):
        counts[sampler.sample(rng)] += 1
    assert max(counts) < 2 * min(counts)


def test_zipf_sampler_validation():
    with pytest.raises(ConfigurationError):
        ZipfSampler(0)
    with pytest.raises(ConfigurationError):
        ZipfSampler(4, exponent=-0.5)


def test_open_loop_schedule_shape():
    config = OpenLoopConfig(rate=0.5, duration=200.0, read_fraction=0.5)
    schedules = generate_open_loop(4, config, random.Random(SEED))
    assert len(schedules) == 4
    for client, schedule in schedules.items():
        assert schedule, "empty schedule at a 0.5 ops/unit rate"
        times = [op.at for op in schedule]
        assert times == sorted(times)
        assert all(0 <= t < 200.0 for t in times)
        for op in schedule:
            if op.value is not None:
                assert op.register == client  # SWMR: writes own register
            else:
                assert 0 <= op.register < 4
        # Poisson(0.5 * 200) = 100 expected arrivals per client.
        assert 50 <= len(schedule) <= 160
    reads = sum(
        1 for s in schedules.values() for op in s if op.value is None
    )
    total = sum(len(s) for s in schedules.values())
    assert 0.35 <= reads / total <= 0.65


def test_open_loop_schedule_is_deterministic():
    config = OpenLoopConfig(rate=1.0, duration=50.0)
    first = generate_open_loop(3, config, random.Random(99))
    second = generate_open_loop(3, config, random.Random(99))
    assert first == second
    different = generate_open_loop(3, config, random.Random(100))
    assert first != different


def test_open_loop_config_validation():
    with pytest.raises(ConfigurationError):
        OpenLoopConfig(rate=0.0)
    with pytest.raises(ConfigurationError):
        OpenLoopConfig(duration=-1.0)
    with pytest.raises(ConfigurationError):
        OpenLoopConfig(read_fraction=1.5)
    with pytest.raises(ConfigurationError):
        OpenLoopConfig(value_size=0)


def test_scale_config_validation():
    with pytest.raises(ConfigurationError):
        ScaleConfig(sample_every=0.0)
    with pytest.raises(ConfigurationError):
        ScaleConfig(warmup_fraction=1.0)


# --------------------------------------------------------------------- #
# The harness end to end
# --------------------------------------------------------------------- #


def _quick(checkpoint=None, **overrides) -> ScaleConfig:
    return ScaleConfig(
        num_clients=4,
        seed=SEED,
        open_loop=OpenLoopConfig(rate=0.15, duration=250.0),
        checkpoint=checkpoint,
        sample_every=25.0,
        **overrides,
    )


def test_run_scale_replays_identically():
    first = run_scale(_quick(CheckpointPolicy(interval=16, keep_tail=2)))
    second = run_scale(_quick(CheckpointPolicy(interval=16, keep_tail=2)))
    assert first.samples == second.samples
    assert (first.latency_p50, first.latency_p99, first.latency_mean) == (
        second.latency_p50, second.latency_p99, second.latency_mean
    )
    assert first.to_dict() == second.to_dict()
    assert first.completed == first.planned  # underloaded: everything lands
    assert first.checker_ok == {"linearizability": True, "causal": True}
    assert first.failed_clients == 0


def test_run_scale_smoke_with_checkpointing():
    report = run_scale(_quick(CheckpointPolicy(interval=16, keep_tail=2)))
    assert isinstance(report, ScaleReport)
    assert report.checkpoints_installed >= 5
    assert report.server_checkpoints >= 5
    assert report.recorder_compacted > 0
    assert report.throughput > 0
    # The report is JSON-ready and publishes to a registry.
    from repro.obs.registry import Registry

    rendered = report.to_dict()
    assert rendered["checkpoint_interval"] == 16
    registry = Registry()
    report.publish(registry)
    assert registry.gauge("scale.checkpoints_installed").value >= 5
    assert registry.gauge("scale.growth_ratio").value == report.growth_ratio


def test_churned_clients_rejoin_and_checkpointing_resumes():
    """Client churn defers the offline channel, so co-signing stalls
    while anyone is away — and must pick the chain back up after the
    rejoin rather than wedging the run."""
    churned = run_scale(
        _quick(
            CheckpointPolicy(interval=16, keep_tail=2),
            churn_windows=2,
            churn_mean_duration=10.0,
        )
    )
    smooth = run_scale(_quick(CheckpointPolicy(interval=16, keep_tail=2)))
    assert churned.failed_clients == 0
    assert churned.checker_ok == {"linearizability": True, "causal": True}
    # Checkpointing survived the churn: installs happened, and ops kept
    # completing (pausing stops a client's timers, not its queue).
    assert churned.checkpoints_installed >= 3
    assert churned.recorder_compacted > 0
    assert churned.completed == churned.planned
    # Churn can only delay installs, never add them.
    assert churned.checkpoints_installed <= smooth.checkpoints_installed


@pytest.mark.slow
def test_checkpointing_bounds_resident_state():
    """The acceptance run: 20+ checkpoint intervals of open-loop load.

    With checkpointing the resident aggregate (server pending + recorder
    + checkers + view histories + notifications) stays flat — post-warmup
    growth ratio ~1 — while the identical seeded run without it keeps
    growing.  Latency percentiles are identical: bounded state is free.
    """
    base = dict(
        num_clients=4,
        seed=SEED,
        open_loop=OpenLoopConfig(rate=0.15, duration=800.0),
        sample_every=20.0,
    )
    off = run_scale(ScaleConfig(**base, checkpoint=None))
    on = run_scale(
        ScaleConfig(**base, checkpoint=CheckpointPolicy(interval=16, keep_tail=2))
    )

    assert on.checkpoints_installed >= 20, on.checkpoints_installed
    assert on.server_checkpoints >= 20
    assert on.recorder_compacted > 0
    # Identical load and identical latencies: the extension is off the
    # data path entirely (offline channel + local pruning only).
    assert (on.planned, on.completed) == (off.planned, off.completed)
    assert on.completed == on.planned
    assert (on.latency_p50, on.latency_p95, on.latency_p99, on.latency_max) == (
        off.latency_p50, off.latency_p95, off.latency_p99, off.latency_max
    )
    # Bounded vs unbounded, same run length.
    assert on.growth_ratio < 1.25, on.growth_ratio
    assert off.growth_ratio > 1.5, off.growth_ratio
    assert on.samples[-1].bounded_total * 3 < off.samples[-1].bounded_total
    # Nothing pathological happened along the way.
    assert on.checker_ok == off.checker_ok == {
        "linearizability": True, "causal": True
    }
    assert on.failed_clients == off.failed_clients == 0
