"""Health gauges and detection-latency scenarios (``repro.obs.health``).

Unit tests pin the stability-lag and time-to-detection arithmetic on
stub clients; the scenario tests run real Byzantine deployments — the
rollback adversary under FAUST and a targeted tampering server under
bare USTOR, on both the simulator and a TCP loopback — and assert the
``health.time_to_detection`` gauge agrees with the
:class:`~repro.api.events.FailureNotification` timestamps the hub saw.
"""

from __future__ import annotations

import random

import pytest

from repro.api import FailureNotification, SystemConfig, open_system
from repro.obs.health import HealthMonitor
from repro.obs.registry import Registry, use_registry
from repro.ustor.byzantine import RollbackServer, TamperingServer
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts


class _Version:
    def __init__(self, vector):
        self.vector = list(vector)


class _StubClient:
    """Just enough client surface for the monitor: version + listeners."""

    def __init__(self, vector=()):
        self.version = _Version(vector)
        self._listeners = []

    def add_failure_listener(self, listener):
        self._listeners.append(listener)

    def fail(self, reason):
        for listener in self._listeners:
            listener(reason)


class _StubTracker:
    def __init__(self, stable):
        self._stable = stable

    def stable_timestamp_for_all(self):
        return self._stable


class _Clock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestStabilityLags:
    def test_ustor_proxy_is_min_over_vectors(self):
        # C0 issued 3 ops; C1 has only seen 2 of them -> lag 1.
        clients = [_StubClient([3, 0]), _StubClient([2, 0])]
        monitor = HealthMonitor(clients, _Clock(), registry=Registry())
        assert monitor.stability_lags() == [1, 0]

    def test_faust_tracker_answers_directly(self):
        client = _StubClient([4])
        client.tracker = _StubTracker(stable=1)
        monitor = HealthMonitor([client], _Clock(), registry=Registry())
        assert monitor.stability_lags() == [3]

    def test_clients_without_versions_lag_zero(self):
        class Bare:
            pass

        monitor = HealthMonitor([Bare()], _Clock(), registry=Registry())
        assert monitor.stability_lags() == [0]


class TestDetectionArithmetic:
    def test_time_to_detection_from_noted_deviation(self):
        clock = _Clock(0.0)
        client = _StubClient([1])
        monitor = HealthMonitor([client], clock, registry=Registry())
        monitor.note_deviation(10.0)
        monitor.note_deviation(12.0)  # min-keeps the earliest
        assert monitor.deviation_time == 10.0
        assert monitor.time_to_detection() is None  # nothing detected yet
        clock.now = 17.0
        client.fail("tampering")
        assert monitor.first_failure_time() == 17.0
        assert monitor.time_to_detection() == 7.0

    def test_deviation_auto_discovered_from_server_attrs(self):
        class Server:
            rollback_crash_time = 4.0

        clock = _Clock(9.0)
        client = _StubClient([1])
        monitor = HealthMonitor(
            [client], clock, registry=Registry(), servers=[Server()]
        )
        client.fail("rollback")
        stats = monitor.refresh()
        assert monitor.deviation_time == 4.0
        assert stats["health.time_to_detection"] == 5.0

    def test_monitor_start_is_the_conservative_baseline(self):
        clock = _Clock(100.0)
        client = _StubClient([1])
        monitor = HealthMonitor([client], clock, registry=Registry())
        clock.now = 103.0
        client.fail("anything")
        assert monitor.time_to_detection() == 3.0

    def test_refresh_writes_the_gauges(self):
        registry = Registry()
        clock = _Clock(0.0)
        clients = [_StubClient([2, 0]), _StubClient([1, 0])]
        monitor = HealthMonitor(clients, clock, registry=registry)
        clock.now = 6.0
        clients[0].fail("caught")
        stats = monitor.refresh()
        assert registry.get("health.c0.stability_lag").value == 1
        assert registry.get("health.max_stability_lag").value == 1
        assert registry.get("health.first_failure_time").value == 6.0
        assert registry.get("health.failures").value == 1
        assert stats["health.max_stability_lag"] == 1

    def test_auditor_progress_is_reported(self):
        class Auditor:
            audits = [1, 2, 3]
            ok = False

        registry = Registry()
        monitor = HealthMonitor([], _Clock(), registry=registry)
        monitor.watch_auditor(Auditor())
        stats = monitor.refresh()
        assert stats["audit.runs"] == 3
        assert stats["audit.ok"] == 0.0
        assert registry.get("audit.ok").value == 0.0


def _run_scripts(system, num_clients, *, ops, seed, think=1.0):
    scripts = generate_scripts(
        num_clients,
        WorkloadConfig(
            ops_per_client=ops, read_fraction=0.5, mean_think_time=think
        ),
        random.Random(seed),
    )
    driver = Driver(system)
    driver.attach_all(scripts)
    return driver


class TestDetectionLatencySim:
    def test_rollback_server_under_faust(self):
        with use_registry(Registry()) as registry:
            system = open_system(
                SystemConfig(
                    num_clients=3,
                    seed=1,
                    server_factory=lambda n, name: RollbackServer(
                        n,
                        snapshot_after_submits=2,
                        rollback_after_submits=6,
                        outage=5.0,
                        name=name,
                    ),
                ),
                backend="faust",
            )
            monitor = HealthMonitor(
                system.clients,
                lambda: system.now,
                servers=[system.raw.server],
            )
            _run_scripts(system, 3, ops=6, seed=1)
            system.run(until=500.0)

            notifications = [
                e
                for e in system.notifications.history
                if isinstance(e, FailureNotification)
            ]
            assert notifications, "the rollback attack went undetected"
            # Both listen on the same client callbacks under the same
            # virtual clock, so the timestamps agree exactly.
            assert sorted(t for t, _c, _r in monitor.failures) == sorted(
                e.time for e in notifications
            )
            stats = monitor.refresh()
            crash_time = system.raw.server.rollback_crash_time
            assert crash_time is not None
            assert monitor.deviation_time == crash_time
            expected = max(
                0.0, min(e.time for e in notifications) - crash_time
            )
            assert stats["health.time_to_detection"] == pytest.approx(expected)
            assert registry.get(
                "health.time_to_detection"
            ).value == pytest.approx(expected)

    def test_targeted_tampering_under_ustor(self):
        with use_registry(Registry()) as registry:
            system = open_system(
                SystemConfig(
                    num_clients=3,
                    seed=2,
                    server_factory=lambda n, name: TamperingServer(
                        n, target_register=0, name=name
                    ),
                ),
                backend="ustor",
            )
            monitor = HealthMonitor(system.clients, lambda: system.now)
            _run_scripts(system, 3, ops=8, seed=2)
            system.run(until=500.0)

            notifications = [
                e
                for e in system.notifications.history
                if isinstance(e, FailureNotification)
            ]
            assert notifications, "the tampering attack went undetected"
            stats = monitor.refresh()
            # No deviation attribute on this adversary: the monitor's
            # start (t=0 here) is the conservative baseline, so the gauge
            # equals the first notification timestamp.
            assert monitor.started_at == 0.0
            assert stats["health.time_to_detection"] == pytest.approx(
                min(e.time for e in notifications)
            )
            assert stats["health.time_to_detection"] > 0
            assert registry.get("health.failures").value == len(
                monitor.failures
            )


@pytest.mark.net
class TestDetectionLatencyTcp:
    def test_tampering_server_over_loopback(self):
        from repro.api.backends import get_backend
        from repro.api.system import System as ApiSystem
        from repro.net.client import NetRuntime, open_tcp_system
        from repro.net.server import NetServerHost

        with use_registry(Registry()) as registry:
            runtime = NetRuntime()
            host = NetServerHost(
                2,
                server_factory=lambda n, name: TamperingServer(
                    n, target_register=0, name=name
                ),
            )
            runtime.run_coroutine(host.start())
            system = open_tcp_system(
                2, (host.endpoint,), runtime=runtime, default_timeout=10.0
            )
            system.hosts.append(host)
            system.owns_runtime = True
            with system:
                facade = ApiSystem(
                    system, "ustor", get_backend("ustor").capabilities, 10.0
                )
                monitor = HealthMonitor(
                    system.clients, lambda: system.scheduler.now
                )
                driver = _run_scripts(system, 2, ops=6, seed=7, think=0.005)
                assert system.run_until(
                    lambda: any(
                        getattr(c, "failed", False) for c in system.clients
                    ),
                    timeout=20.0,
                ), "no client detected the tampering server"
                del driver

                notifications = [
                    e
                    for e in facade.notifications.history
                    if isinstance(e, FailureNotification)
                ]
                assert notifications
                stats = monitor.refresh()
                # Wall clock: the hub and the monitor read the clock a
                # few microseconds apart inside the same callback chain.
                expected = min(
                    e.time for e in notifications
                ) - monitor.started_at
                assert stats["health.time_to_detection"] == pytest.approx(
                    expected, abs=0.1
                )
                assert stats["health.time_to_detection"] > 0
                assert registry.get(
                    "health.time_to_detection"
                ).value == pytest.approx(expected, abs=0.1)
                assert "health.c0.stability_lag" in stats
