"""The sharded cluster layer: maps, routing, faults, scoped detection.

The load-bearing assertions here are the cluster's three cross-shard
proofs (ISSUE 3 acceptance):

* ``barrier()`` drains every touched shard;
* stability is aggregated per register partition (home-shard cuts);
* a forking shard is detected by exactly the clients that touched it,
  while honest shards keep completing operations — including for the
  detecting clients themselves.
"""

from __future__ import annotations

import pytest

from repro.api import (
    CapabilityError,
    ClusterBackend,
    FaustParams,
    OperationFailed,
    OperationTimeout,
    SystemConfig,
    open_system,
)
from repro.cluster import (
    ClusterSession,
    ClusterSystem,
    HashShardMap,
    RangeShardMap,
    ShardFailureNotification,
    ShardStabilityNotification,
    make_shard_map,
)
from repro.common.errors import ConfigurationError, ProtocolError
from repro.common.types import BOTTOM
from repro.ustor.byzantine import SplitBrainServer, TamperingServer, UnresponsiveServer
from repro.workloads.churn import ChurnSchedule
from repro.workloads.scenarios import split_brain_shard_scenario


def quiet_cluster(num_clients=4, shards=2, seed=5, **overrides) -> ClusterSystem:
    overrides.setdefault(
        "faust", FaustParams(enable_dummy_reads=False, enable_probes=False)
    )
    return ClusterBackend().open_system(
        SystemConfig(num_clients=num_clients, shards=shards, seed=seed, **overrides)
    )


# --------------------------------------------------------------------- #
# Shard maps
# --------------------------------------------------------------------- #


class TestShardMaps:
    def test_range_map_is_balanced_and_contiguous(self):
        shard_map = RangeShardMap(num_shards=3, num_registers=8)
        owners = [shard_map.shard_of(r) for r in range(8)]
        assert owners == sorted(owners)  # contiguous ranges
        partitions = shard_map.partition(8)
        sizes = [len(p) for p in partitions]
        assert sum(sizes) == 8 and max(sizes) - min(sizes) <= 1

    def test_range_map_rejects_out_of_space_registers(self):
        shard_map = RangeShardMap(num_shards=2, num_registers=4)
        with pytest.raises(ConfigurationError):
            shard_map.shard_of(4)
        with pytest.raises(ConfigurationError):
            shard_map.shard_of(-1)

    def test_range_map_rejects_empty_shards(self):
        with pytest.raises(ConfigurationError):
            RangeShardMap(num_shards=5, num_registers=3)

    def test_hash_map_is_deterministic_and_total(self):
        a = HashShardMap(num_shards=4)
        b = HashShardMap(num_shards=4)
        owners = [a.shard_of(r) for r in range(64)]
        assert owners == [b.shard_of(r) for r in range(64)]
        assert all(0 <= s < 4 for s in owners)
        assert len(set(owners)) > 1  # spreads over shards

    def test_hash_map_placement_independent_of_population(self):
        # Consistent hashing: growing the register space never moves an
        # existing register.
        shard_map = HashShardMap(num_shards=3)
        small = [shard_map.shard_of(r) for r in range(10)]
        large = [shard_map.shard_of(r) for r in range(100)]
        assert large[:10] == small

    def test_make_shard_map_resolves_and_validates(self):
        assert isinstance(make_shard_map("range", 2, 4), RangeShardMap)
        assert isinstance(make_shard_map("hash", 2, 4), HashShardMap)
        ready = HashShardMap(num_shards=2)
        assert make_shard_map(ready, 2, 4) is ready
        with pytest.raises(ConfigurationError):
            make_shard_map(ready, 3, 4)  # shard-count mismatch
        with pytest.raises(ConfigurationError):
            make_shard_map("mod", 2, 4)


# --------------------------------------------------------------------- #
# Configuration plumbing
# --------------------------------------------------------------------- #


class TestClusterConfig:
    def test_single_server_backends_reject_shard_knobs(self):
        for backend in ("faust", "ustor", "lockstep", "unchecked"):
            with pytest.raises(ConfigurationError):
                open_system(SystemConfig(num_clients=4, shards=2), backend=backend)

    def test_config_validates_shard_axis(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(num_clients=4, shards=0)
        with pytest.raises(ConfigurationError):
            SystemConfig(num_clients=4, shards=2, shard_protocol="lockstep")
        with pytest.raises(ConfigurationError):
            SystemConfig(num_clients=4, shards=2, shard_outages=((2, 5.0, 5.0),))
        with pytest.raises(ConfigurationError):
            SystemConfig(num_clients=4, shards=2, shard_outages=((0, 5.0, 0.0),))
        with pytest.raises(ConfigurationError):
            SystemConfig(
                num_clients=4,
                shards=2,
                shard_server_factories={3: lambda n, name: None},
            )

    def test_cluster_rejects_more_shards_than_registers(self):
        with pytest.raises(ConfigurationError):
            quiet_cluster(num_clients=2, shards=3)

    def test_cluster_rejects_overlapping_windows_per_shard(self):
        with pytest.raises(ConfigurationError, match="shard 1"):
            quiet_cluster(
                num_clients=4,
                shards=2,
                storage="log",
                server_outages=((10.0, 10.0),),
                shard_outages=((1, 15.0, 5.0),),
            )
        # Same windows on different shards are fine.
        quiet_cluster(
            num_clients=4,
            shards=2,
            storage="log",
            shard_outages=((0, 10.0, 10.0), (1, 15.0, 5.0)),
        )

    def test_cluster_of_one_shard_is_permitted(self):
        system = quiet_cluster(num_clients=3, shards=1)
        assert system.num_shards == 1
        assert system.session(0).write_sync(b"x") == 1

    def test_capabilities_follow_shard_protocol(self):
        faust_cluster = quiet_cluster()
        assert faust_cluster.capabilities.stability
        ustor_cluster = quiet_cluster(shard_protocol="ustor", shard_map="hash")
        assert not ustor_cluster.capabilities.stability
        with pytest.raises(CapabilityError):
            ustor_cluster.require("stability")


# --------------------------------------------------------------------- #
# Routing, sessions, barrier
# --------------------------------------------------------------------- #


class TestClusterSessions:
    def test_cross_shard_roundtrip(self):
        system = quiet_cluster(num_clients=4, shards=2)
        alice, dora = system.session(0), system.session(3)
        assert alice.home_shard != dora.home_shard
        alice.write_sync(b"hello")
        value, _ = dora.read_sync(0)  # read crosses to alice's shard
        assert value == b"hello"
        value, _ = alice.read_sync(3)
        assert value is BOTTOM

    def test_sessions_are_cached_per_client(self):
        system = quiet_cluster()
        assert system.session(1) is system.session(1)
        dedicated = system.session(1, timeout=5.0)
        assert dedicated is not system.session(1)
        assert isinstance(dedicated, ClusterSession)

    def test_barrier_drains_every_touched_shard(self):
        system = quiet_cluster(num_clients=4, shards=2)
        session = system.session(1)
        handles = [session.write(b"w%d" % i) for i in range(3)]
        handles.append(session.read(3))  # second shard
        handles.append(session.read(0))
        assert session.outstanding == 5
        assert len(session.touched_shards) == 2
        session.barrier()
        assert session.outstanding == 0
        assert all(h.done() for h in handles)
        stamps = [h.result().timestamp for h in handles[:3]]
        assert stamps == sorted(stamps) and len(set(stamps)) == 3

    def test_barrier_with_zero_inflight_is_a_noop(self):
        system = quiet_cluster()
        session = system.session(0)
        session.barrier()  # nothing issued at all
        session.write_sync(b"x")
        session.barrier()  # nothing left in flight
        assert session.outstanding == 0

    def test_barrier_timeout_names_the_stuck_shard(self):
        # Shard 1's server ignores every client; shard 0 stays honest.
        system = quiet_cluster(
            num_clients=4,
            shards=2,
            shard_server_factories={
                1: lambda n, name: UnresponsiveServer(
                    n, victims=set(range(n)), name=name
                )
            },
        )
        session = system.session(0)
        session.write(b"fine")  # shard 0
        session.read(3)  # shard 1 — never answered
        with pytest.raises(OperationTimeout, match=r"shard\(s\) \[1\]"):
            session.barrier(timeout=50.0)
        # The honest shard's operation completed regardless.
        assert session.shard_session(0).outstanding == 0

    def test_barrier_short_circuits_on_a_crashed_client(self):
        system = quiet_cluster(num_clients=4, shards=2)
        session = system.session(0)
        session.write(b"w")
        system.clients[0].crash()
        with pytest.raises(OperationFailed, match="crashed"):
            session.barrier(timeout=10_000.0)
        # The barrier must not burn the whole budget of virtual time
        # waiting on handles that can never settle.
        assert system.now < 100.0

    def test_shard_indices_are_validated(self):
        system = quiet_cluster(num_clients=4, shards=2)
        with pytest.raises(ConfigurationError):
            system.session(0).shard_session(-1)
        with pytest.raises(ConfigurationError):
            system.session(0).shard_session(2)
        with pytest.raises(ConfigurationError):
            system.clients[0].instance(-1)
        with pytest.raises(ConfigurationError):
            system.shard_of(-1)
        with pytest.raises(ConfigurationError):
            system.shard_of(4)

    def test_proxy_clients_route_like_sessions(self):
        system = quiet_cluster(num_clients=4, shards=2)
        results = []
        system.clients[0].write(b"via-proxy", results.append)
        system.run_until(lambda: bool(results), timeout=100.0)
        assert results[0].value == b"via-proxy"
        reads = []
        system.clients[3].read(0, reads.append)
        system.run_until(lambda: bool(reads), timeout=100.0)
        assert reads[0].value == b"via-proxy"
        assert system.touched_shards(3) == (0,)

    def test_cluster_history_is_per_shard(self):
        system = quiet_cluster(num_clients=4, shards=2)
        system.session(0).write_sync(b"x")
        system.session(2).write_sync(b"y")
        with pytest.raises(CapabilityError):
            system.history()
        histories = system.shard_histories()
        assert set(histories) == {0, 1}
        assert all(len(h.operations) == 1 for h in histories.values())


# --------------------------------------------------------------------- #
# Stability across partitions
# --------------------------------------------------------------------- #


class TestClusterStability:
    def test_home_shard_stability_with_background_machinery(self):
        system = ClusterBackend().open_system(
            SystemConfig(
                num_clients=3,
                shards=2,
                seed=9,
                faust=FaustParams(
                    delta=30.0, dummy_read_period=3.0, probe_check_period=5.0
                ),
            )
        )
        session = system.session(0)
        t = session.write_sync(b"document")
        assert session.wait_for_stability(t, timeout=400.0)
        assert session.stability_cut[0] >= t
        cuts = session.stability_cuts()
        assert session.home_shard in cuts

    def test_stability_events_carry_the_shard(self):
        system = ClusterBackend().open_system(
            SystemConfig(
                num_clients=3,
                shards=2,
                seed=9,
                faust=FaustParams(
                    delta=30.0, dummy_read_period=3.0, probe_check_period=5.0
                ),
            )
        )
        session = system.session(0)
        t = session.write_sync(b"document")
        session.wait_for_stability(t, timeout=400.0)
        stability = [
            e
            for e in system.notifications.history
            if isinstance(e, ShardStabilityNotification)
        ]
        assert stability
        assert all(0 <= e.shard < 2 for e in stability)
        assert any(e.client == 0 and e.shard == session.home_shard for e in stability)

    def test_ustor_shards_have_no_stability_surface(self):
        system = quiet_cluster(shard_protocol="ustor", shard_map="hash")
        session = system.session(0)
        session.write_sync(b"x")
        with pytest.raises(CapabilityError):
            _ = session.stability_cut


# --------------------------------------------------------------------- #
# Per-shard faults
# --------------------------------------------------------------------- #


class TestShardFaults:
    def test_single_shard_outage_recovers_without_failures(self):
        system = quiet_cluster(
            num_clients=4,
            shards=2,
            storage="log",
            shard_outages=((1, 5.0, 10.0),),
        )
        session = system.session(2)  # home shard 1 — the one that crashes
        system.run(until=6.0)  # the shard is now down
        assert system.servers[1].crashed and not system.servers[0].crashed
        handle = session.write(b"held")  # held by the reliable channel
        # The honest shard keeps serving while shard 1 is down.
        assert system.session(0).write_sync(b"fine") == 1
        assert handle.result(timeout=100.0).value == b"held"
        assert system.now >= 15.0  # only completed after recovery
        assert not system.notifications.failure_events()

    def test_whole_cluster_outage_hits_every_shard(self):
        system = quiet_cluster(
            num_clients=4, shards=2, storage="log", server_outages=((5.0, 5.0),)
        )
        system.run(until=6.0)
        assert all(server.crashed for server in system.servers)
        system.run(until=11.0)
        assert not any(server.crashed for server in system.servers)

    def test_tampering_shard_fails_only_its_readers(self):
        system = quiet_cluster(
            num_clients=4,
            shards=2,
            shard_server_factories={
                0: lambda n, name: TamperingServer(n, 0, name=name)
            },
        )
        writer, victim, bystander = (
            system.session(0),
            system.session(1),
            system.session(2),
        )
        writer.write_sync(b"genuine")
        with pytest.raises(OperationFailed):
            victim.read_sync(0)
        assert victim.failed and victim.failed_shards == (0,)
        # The bystander only ever uses shard 1 and stays clean.
        bystander.write_sync(b"clean")
        assert not bystander.failed
        events = system.notifications.failure_events()
        assert events and all(isinstance(e, ShardFailureNotification) for e in events)
        assert all(e.shard == 0 for e in events)

    def test_touching_an_already_failed_shard_notifies_immediately(self):
        system = quiet_cluster(
            num_clients=4,
            shards=2,
            shard_server_factories={
                0: lambda n, name: TamperingServer(n, 0, name=name)
            },
        )
        system.session(0).write_sync(b"genuine")
        with pytest.raises(OperationFailed):
            system.session(1).read_sync(0)
        # Let the FAILURE alert reach every instance on the bad shard.
        system.run(until=system.now + 50.0)
        before = {e.client for e in system.notifications.failure_events()}
        assert 3 not in before
        # Client 3's first contact with the shard is *after* its own
        # instance already learned of the failure via the FAILURE alert:
        # the op is rejected and the notification fires at touch time.
        with pytest.raises((OperationFailed, ProtocolError)):
            system.session(3).read_sync(1)
        after = {e.client for e in system.notifications.failure_events()}
        assert 3 in after

    def test_detecting_client_keeps_using_honest_shards(self):
        system = quiet_cluster(
            num_clients=4,
            shards=2,
            shard_server_factories={
                1: lambda n, name: TamperingServer(n, 2, name=name)
            },
        )
        system.session(2).write_sync(b"poisoned")
        session = system.session(0)
        session.write_sync(b"pre")  # shard 0, fine
        with pytest.raises(OperationFailed):
            session.read_sync(2)  # shard 1 tampers
        assert session.failed and session.failed_shards == (1,)
        # Operations on the honest home shard still complete.
        assert session.write_sync(b"post") == 2
        value, _ = system.session(1).read_sync(0)
        assert value == b"post"


# --------------------------------------------------------------------- #
# Cluster churn
# --------------------------------------------------------------------- #


class TestClusterChurn:
    def test_shard_targeted_churn_windows(self):
        system = quiet_cluster(
            num_clients=4, shards=2, seed=11, storage="log"
        )
        churn = ChurnSchedule(system)
        churn.add_server_outage(5.0, 5.0, shard=0)
        churn.add_server_outage(7.0, 5.0, shard=1)  # overlap, other shard: ok
        with pytest.raises(ValueError):
            churn.add_server_outage(6.0, 2.0, shard=0)  # same shard overlap
        with pytest.raises(ValueError):
            churn.add_server_outage(6.0, 2.0)  # whole-cluster vs shard 0
        system.run(until=6.0)
        assert system.servers[0].crashed and not system.servers[1].crashed
        system.run(until=8.0)
        assert system.servers[1].crashed
        system.run(until=13.0)
        assert not any(s.crashed for s in system.servers)

    def test_shard_churn_requires_a_cluster(self):
        from repro.api import FaustBackend

        single = FaustBackend().open_system(
            SystemConfig(
                num_clients=2,
                faust=FaustParams(enable_dummy_reads=False, enable_probes=False),
            )
        )
        churn = ChurnSchedule(single.raw)
        with pytest.raises(ValueError):
            churn.add_server_outage(5.0, 5.0, shard=0)

    def test_client_churn_pauses_every_shard_instance(self):
        system = ClusterBackend().open_system(
            SystemConfig(num_clients=4, shards=2, seed=13)
        )
        churn = ChurnSchedule(system)
        churn.add_window(client=1, start=5.0, duration=20.0)
        system.run(until=10.0)
        proxy = system.clients[1]
        assert all(inst._dummy_timer is None for inst in proxy.instances)
        assert not system.offline.is_online(proxy.name)
        system.run(until=30.0)
        assert system.offline.is_online(proxy.name)
        assert all(inst._dummy_timer is not None for inst in proxy.instances)


# --------------------------------------------------------------------- #
# The acceptance scenario (ISSUE 3)
# --------------------------------------------------------------------- #


class TestSplitBrainShardScenario:
    def test_forked_shard_detected_by_exactly_its_users(self):
        result = split_brain_shard_scenario(
            num_clients=6, shards=4, forked_shards=(1,), seed=41
        )
        # Both populations are non-trivial.
        assert result.avoiders and result.expected_detectors
        # 1. Every client that touched the forked shard was notified.
        # 2. No client that avoided it was.
        assert result.exact_detection
        assert not (result.notified_clients & result.avoiders)
        # 3. Honest-shard operations completed normally.
        assert result.avoiders_completed()
        # The notifications name the forked shard, and the fork was found
        # quickly after it happened.
        failures = result.system.notifications.failure_events()
        assert failures and {e.shard for e in failures} == {1}
        assert 0.0 <= result.detection_latency < 200.0

    def test_every_forked_shard_is_reported_separately(self):
        result = split_brain_shard_scenario(
            num_clients=6, shards=4, forked_shards=(1, 2), seed=43
        )
        assert result.exact_detection
        reported = {e.shard for e in result.system.notifications.failure_events()}
        assert reported <= {1, 2} and reported

    def test_hash_map_variant_detects_exactly_too(self):
        result = split_brain_shard_scenario(
            num_clients=8, shards=3, forked_shards=(1,), seed=47,
            shard_map="hash", ops_per_client=8, run_for=400.0,
        )
        assert result.exact_detection
        assert result.avoiders_completed()


class TestShardSeedDerivation:
    """Regression: shards must not share RNG streams (ISSUE 8 bugfix —
    ``seed=config.seed`` verbatim gave every shard correlated
    "randomness")."""

    def test_sub_seeds_are_distinct_and_collision_safe(self):
        from repro.cluster.backend import derive_shard_seed

        seeds = {derive_shard_seed(seed, shard)
                 for seed in range(8) for shard in range(8)}
        assert len(seeds) == 64  # notably: (0, 1) != (1, 0)

    def test_shards_draw_distinct_latency_samples(self):
        # Two identically-configured shards carrying identically-shaped
        # traffic (one write per client) must sample *different* message
        # latencies; with the old shared stream they drew in lockstep.
        from repro.sim.network import UniformLatency

        system = ClusterBackend().open_system(
            SystemConfig(
                num_clients=4,
                seed=9,
                shards=2,
                latency=UniformLatency(0.5, 1.5),
                faust=FaustParams(enable_dummy_reads=False, enable_probes=False),
            )
        )
        for client in range(4):
            system.session(client).write_sync(b"x")
        samples = []
        for shard in system.shards:
            samples.append([
                round(m.delivered_at - m.sent_at, 9)
                for m in shard.trace.messages
                if m.kind == "SUBMIT" and m.delivered_at is not None
            ])
        assert samples[0] and samples[1]
        assert samples[0] != samples[1]
