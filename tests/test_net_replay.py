"""Recorded real runs replay on the simulator to identical results.

The acceptance property of the real transport: every TCP run records an
append-only JSONL wire trace from the clients' vantage point, and
replaying that trace on the deterministic sim backend reproduces

* every client-to-server frame byte-for-byte (signatures included —
  the keys are deterministic in ``(scheme, n)``),
* the same history up to wall-clock instants
  (:func:`~repro.net.trace.history_signature`),
* the same consistency-checker verdicts and the same ``fail_i``
  outcomes — including under injected disconnects and a Byzantine
  server.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.api.session import as_session
from repro.common.errors import ConfigurationError
from repro.consistency.causal import check_causal_consistency
from repro.consistency.linearizability import check_linearizability
from repro.net.client import NetRuntime, open_tcp_system
from repro.net.server import NetServerHost
from repro.net.trace import history_signature, load_trace, replay_trace
from repro.ustor.byzantine import TamperingServer
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts

pytestmark = pytest.mark.net


def record_loopback_run(
    tmp_path,
    *,
    num_clients: int = 3,
    server_factory=None,
    drive=None,
):
    """Run a recorded loopback workload; returns (trace_path, history)."""
    trace_path = tmp_path / "run.jsonl"
    runtime = NetRuntime()
    host = NetServerHost(num_clients, server_factory=server_factory)
    runtime.run_coroutine(host.start())
    system = open_tcp_system(
        num_clients,
        (host.endpoint,),
        runtime=runtime,
        trace_path=str(trace_path),
        default_timeout=5.0,
    )
    system.hosts.append(host)
    system.owns_runtime = True
    with system:
        drive(system)
        system.run_until_quiescent(timeout=5.0)
        history = system.history()
        real_failures = {
            c.client_id: c.fail_reason for c in system.clients if c.failed
        }
    return trace_path, history, real_failures


def drive_workload(seed: int = 11, ops: int = 5):
    def drive(system) -> None:
        scripts = generate_scripts(
            len(system.clients),
            WorkloadConfig(
                ops_per_client=ops, read_fraction=0.5, mean_think_time=0.004
            ),
            random.Random(seed),
        )
        driver = Driver(system)
        driver.attach_all(scripts)
        assert driver.run_to_completion(timeout=20.0)

    return drive


class TestReplayEquivalence:
    def test_correct_run_replays_byte_identically(self, tmp_path):
        trace_path, history, failures = record_loopback_run(
            tmp_path, drive=drive_workload()
        )
        assert not failures
        result = replay_trace(str(trace_path))
        assert result.divergences == []
        assert history_signature(result.history) == history_signature(history)
        for checker in (check_linearizability, check_causal_consistency):
            assert checker(result.history).ok == checker(history).ok

    def test_run_with_injected_disconnects_replays_identically(self, tmp_path):
        # Kill every live connection between operations: the clients
        # reconnect and retransmit (flagged retx in the trace), and the
        # replay — which skips retx frames — still matches exactly.
        def drive(system) -> None:
            sessions = [as_session(system, i) for i in range(3)]
            for round_no in range(4):
                for i, session in enumerate(sessions):
                    session.write_sync(f"r{round_no}-c{i}".encode())
                for connection in system.connections:
                    if connection._writer is not None:
                        connection._writer.close()
            for session in sessions:
                value, _t = session.read_sync(0)
                assert value == b"r3-c0"

        trace_path, history, failures = record_loopback_run(
            tmp_path, drive=drive
        )
        assert not failures
        header, records = load_trace(str(trace_path))
        assert any(
            r["t"] == "frame" and r.get("retx") for r in records
        ), "the disconnect injection never forced a retransmission"
        result = replay_trace(str(trace_path))
        assert result.divergences == []
        assert history_signature(result.history) == history_signature(history)
        assert not result.fail_reasons()

    def test_byzantine_run_replays_same_fail_verdicts(self, tmp_path):
        # A tampering server corrupts reads of register 0 (caught at
        # Algorithm 1 line 50).  The replay re-delivers the recorded
        # bytes to fresh clients and must re-derive the same fail_i.
        def drive(system) -> None:
            writer = as_session(system, 0)
            reader = as_session(system, 1, timeout=1.0)
            writer.write_sync(b"the-truth")
            with pytest.raises(Exception):
                reader.read_sync(0)  # fails or times out: server is lying

        trace_path, history, failures = record_loopback_run(
            tmp_path,
            server_factory=lambda n, name: TamperingServer(
                n, target_register=0, name=name
            ),
            drive=drive,
        )
        assert 1 in failures and "line 50" in failures[1]
        result = replay_trace(str(trace_path))
        assert result.divergences == []
        assert history_signature(result.history) == history_signature(history)
        assert result.fail_reasons() == failures
        # The verdict the trace supports is the clients': detection,
        # not silent corruption — on the replay exactly as live.
        assert not check_linearizability(result.history).ok or failures


class TestTraceFormat:
    def test_trace_is_json_lines_with_header_first(self, tmp_path):
        trace_path, _history, _failures = record_loopback_run(
            tmp_path, drive=drive_workload(ops=2)
        )
        lines = trace_path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["t"] == "header"
        assert records[0]["v"] == 1
        assert records[0]["n"] == 3
        kinds = {r["t"] for r in records}
        assert {"header", "invoke", "response", "frame"} <= kinds
        seqs = [r["seq"] for r in records[1:]]
        assert seqs == sorted(seqs)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t":"invoke","seq":0,"c":0}\n')
        with pytest.raises(ConfigurationError, match="header"):
            load_trace(str(path))

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text('{"t":"header","v":99,"n":1,"server":"S","seq":0}\n')
        with pytest.raises(ConfigurationError, match="version"):
            load_trace(str(path))

    def test_history_signature_strips_only_the_clock(self):
        from repro.history.events import Operation
        from repro.history.history import History
        from repro.common.types import OpKind

        def op(value, responded):
            return Operation(
                op_id=1,
                client=0,
                kind=OpKind.WRITE,
                register=0,
                value=value,
                invoked_at=1.23,
                responded_at=responded,
                timestamp=1,
            )

        base = history_signature(History([op(b"x", 4.56)]))
        later = history_signature(History([op(b"x", 9.99)]))
        other = history_signature(History([op(b"y", 4.56)]))
        unresponded = history_signature(History([op(b"x", None)]))
        assert base == later  # wall-clock differences are invisible
        assert base != other
        assert base != unresponded
