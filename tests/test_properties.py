"""Hypothesis-driven whole-protocol properties.

Each test draws randomized deployments (population, latency model, mix,
crash schedules) and asserts a guarantee of Definition 5 end to end.
These complement the seeded matrices in test_integration.py with
shrinking: a failing draw minimises to a small counterexample.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.consistency.causal import check_causal_consistency
from repro.consistency.linearizability import check_linearizability
from repro.consistency.weak_fork import validate_weak_fork_linearizability
from repro.sim.network import ExponentialLatency, FixedLatency, UniformLatency
from repro.ustor.viewhistory import build_client_views
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts
from repro.workloads.runner import SystemBuilder

_SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

deployments = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=10_000),
        "n": st.integers(min_value=2, max_value=5),
        "latency": st.sampled_from(["fixed", "uniform", "exponential"]),
        "read_fraction": st.sampled_from([0.0, 0.3, 0.7, 1.0]),
        "piggyback": st.booleans(),
        "ops": st.integers(min_value=3, max_value=10),
    }
)


def _latency(name: str):
    return {
        "fixed": FixedLatency(1.0),
        "uniform": UniformLatency(0.1, 2.5),
        "exponential": ExponentialLatency(1.0, cap=6.0),
    }[name]


def _run(params):
    system = SystemBuilder(
        num_clients=params["n"],
        seed=params["seed"],
        latency=_latency(params["latency"]),
        commit_piggyback=params["piggyback"],
    ).build()
    scripts = generate_scripts(
        params["n"],
        WorkloadConfig(
            ops_per_client=params["ops"], read_fraction=params["read_fraction"]
        ),
        random.Random(params["seed"]),
    )
    driver = Driver(system)
    driver.attach_all(scripts)
    completed = driver.run_to_completion(timeout=1_000_000)
    return system, driver, completed


class TestDefinition5Properties:
    @_SLOW
    @given(deployments)
    def test_wait_freedom(self, params):
        _system, _driver, completed = _run(params)
        assert completed

    @_SLOW
    @given(deployments)
    def test_linearizability_and_causality(self, params):
        system, _driver, completed = _run(params)
        assert completed
        history = system.history()
        assert check_linearizability(history)
        assert check_causal_consistency(history)

    @_SLOW
    @given(deployments)
    def test_weak_fork_witnesses(self, params):
        system, _driver, completed = _run(params)
        assert completed
        history = system.history()
        views = build_client_views(history, system.recorder, system.clients)
        assert validate_weak_fork_linearizability(history, views)

    @_SLOW
    @given(deployments)
    def test_no_detection_under_correct_server(self, params):
        system, _driver, _completed = _run(params)
        assert not any(c.failed for c in system.clients)

    @_SLOW
    @given(deployments, st.floats(min_value=1.0, max_value=30.0))
    def test_crash_tolerance(self, params, crash_time):
        system = SystemBuilder(
            num_clients=params["n"],
            seed=params["seed"],
            latency=_latency(params["latency"]),
        ).build()
        scripts = generate_scripts(
            params["n"],
            WorkloadConfig(ops_per_client=params["ops"], mean_think_time=1.0),
            random.Random(params["seed"]),
        )
        driver = Driver(system)
        driver.attach_all(scripts)
        system.crash_client_at(0, time=crash_time)
        system.run(until=100_000)
        # Every survivor finishes its whole script.
        for client in system.clients[1:]:
            assert driver.stats.completed[client.client_id] == params["ops"]
        # And the joint history (with the crashed client's pending op)
        # remains linearizable and causal.
        history = system.history()
        assert check_linearizability(history)
        assert check_causal_consistency(history)


class TestVersionMonotonicity:
    @_SLOW
    @given(deployments)
    def test_committed_versions_form_chains(self, params):
        system, _driver, completed = _run(params)
        assert completed
        # Per client, the sequence of committed versions is totally ordered.
        for client in system.clients:
            assert client.version.total_operations() >= params["ops"]
