"""Fleet-level membership robustness under injected client faults.

The acceptance runs for the membership layer, driven through the scale
harness (``repro scale --client-faults``): a crashed-forever client is
evicted and the checkpoint chain (and the bounded-state growth ratio)
recovers; a crash-restart inside the lease window is never evicted; a
lease-expiry-then-return client rejoins through a fresh epoch without a
single false ``fail``; and the stall gauge names who is blocking.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.faust.checkpoint import CheckpointPolicy
from repro.faust.membership import MembershipPolicy
from repro.workloads.generator import OpenLoopConfig
from repro.workloads.scale import ScaleConfig, run_scale

SEED = 20260807


def _config(**overrides) -> ScaleConfig:
    defaults = dict(
        num_clients=4,
        seed=SEED,
        open_loop=OpenLoopConfig(rate=0.5, duration=400.0),
        checkpoint=CheckpointPolicy(interval=8, keep_tail=2),
        membership=MembershipPolicy(),
        sample_every=20.0,
    )
    defaults.update(overrides)
    return ScaleConfig(**defaults)


def test_crash_forever_is_evicted_and_the_chain_resumes():
    report = run_scale(_config(client_faults=("crash-forever:2@120",)))
    # The quorum noticed, evicted, and kept checkpointing: the chain is
    # well past where it stood at the crash.
    assert report.epoch == 1
    assert report.evicted_clients == (2,)
    assert report.checkpoints_installed >= 10
    # Eviction is membership, not failure: no fail_i was ever raised and
    # the verdicts are clean.
    assert report.failed_clients == 0
    assert report.checker_ok == {"linearizability": True, "causal": True}
    # Post-eviction the resident state is bounded again.
    assert report.growth_ratio <= 1.1, report.growth_ratio
    # The final stall is bounded by the eviction lag, not the run length.
    assert report.checkpoint_stall_seconds < 150.0


def test_crash_forever_without_membership_stalls_unboundedly():
    """The baseline the tentpole exists to beat: same fault, membership
    off — the chain wedges at the crash and resident state grows."""
    report = run_scale(_config(membership=None, client_faults=("crash-forever:2@120",)))
    assert report.epoch == 0
    assert report.evicted_clients == ()
    # A handful of installs before the crash, then nothing.
    assert report.checkpoints_installed <= 8
    assert report.growth_ratio > 1.1, report.growth_ratio
    # The stall clock has been running since shortly after the crash.
    assert report.checkpoint_stall_seconds > 150.0
    assert report.failed_clients == 0  # a stall is not a fork


def test_membership_beats_baseline_on_the_same_fault():
    on = run_scale(_config(client_faults=("crash-forever:2@120",)))
    off = run_scale(_config(membership=None, client_faults=("crash-forever:2@120",)))
    assert on.checkpoints_installed > 2 * off.checkpoints_installed
    assert on.growth_ratio < off.growth_ratio
    assert on.samples[-1].bounded_total < off.samples[-1].bounded_total


def test_crash_restart_within_lease_is_never_evicted():
    report = run_scale(_config(client_faults=("crash-restart:1@120+30",)))
    assert report.epoch == 0
    assert report.evicted_clients == ()
    assert report.failed_clients == 0
    assert report.checkpoints_installed >= 10
    assert report.checker_ok == {"linearizability": True, "causal": True}


def test_lease_expiry_then_return_rejoins_without_false_fail():
    report = run_scale(_config(client_faults=("lease-expiry:1@100+200",)))
    # Evicted while away, re-admitted on return: the epoch chain shows
    # both transitions and the final member set is whole again.
    assert report.epoch == 2
    assert report.rejoins >= 1
    assert report.evicted_clients == ()
    # The critical property: a stale-but-honest returnee is never a
    # false fork.
    assert report.failed_clients == 0
    assert report.checker_ok == {"linearizability": True, "causal": True}
    assert report.checkpoints_installed >= 10


def test_session_pool_recycles_the_evicted_slot_after_rejoin():
    report = run_scale(_config(client_faults=("lease-expiry:1@100+200",)))
    assert report.sessions_created >= 4
    assert report.sessions_recycled >= 1


def test_client_faults_require_well_formed_specs():
    from repro.common.errors import SimulationError

    with pytest.raises(SimulationError):
        run_scale(_config(client_faults=("crash-forever:nope@10",)))


def test_churn_windows_exceeding_signer_set_are_rejected():
    with pytest.raises(ConfigurationError) as excinfo:
        run_scale(
            _config(
                num_clients=2,
                churn_windows=40,
                churn_mean_duration=60.0,
            )
        )
    assert "signer set" in str(excinfo.value)
    assert "--churn-windows" in str(excinfo.value)
