"""Every Byzantine server attack, and the layer that catches it (or doesn't).

The detection matrix being tested (see repro.ustor.byzantine):

    tampering     -> USTOR line 50 (DATA-signature)
    forged version-> USTOR line 35 (COMMIT-signature)
    replay        -> USTOR line 36/43 (version monotonicity / self-concurrency)
    split brain   -> invisible to USTOR, FAUST-detectable (tested in FAUST tests)
    figure 3      -> invisible to USTOR by design (weak fork-linearizable)
    crash         -> never detectable as Byzantine (just non-completion)
"""

from __future__ import annotations

import pytest

from repro.common.errors import ProtocolError
from repro.common.types import BOTTOM
from repro.consistency.causal import check_causal_consistency
from repro.consistency.linearizability import check_linearizability
from repro.ustor.byzantine import (
    CrashingServer,
    ForgingServer,
    ReplayServer,
    SplitBrainServer,
    TamperingServer,
    UnresponsiveServer,
)
from repro.workloads.runner import SystemBuilder
from repro.workloads.scenarios import figure3_scenario

from test_ustor_protocol import run_ops


def build(server_factory, n=3, seed=1):
    return SystemBuilder(num_clients=n, seed=seed, server_factory=server_factory).build()


class TestTampering:
    def test_reader_detects_corrupted_value(self):
        system = build(lambda n, name: TamperingServer(n, target_register=0, name=name))
        run_ops(system, [(0, "write", b"genuine")])
        box = []
        system.clients[1].read(0, box.append)
        system.run(until=50)
        reader = system.clients[1]
        assert reader.failed
        assert "line 50" in reader.fail_reason
        assert not box  # the operation never returns — fail_i instead

    def test_untampered_registers_unaffected(self):
        system = build(lambda n, name: TamperingServer(n, target_register=0, name=name))
        outcomes = run_ops(system, [(1, "write", b"clean"), (2, "read", 1)])
        assert outcomes[1].value == b"clean"
        assert not system.clients[2].failed

    def test_writer_itself_unaffected(self):
        system = build(lambda n, name: TamperingServer(n, target_register=0, name=name))
        outcomes = run_ops(system, [(0, "write", b"genuine")])
        assert outcomes[0].timestamp == 1 and not system.clients[0].failed


class TestForgedVersion:
    def test_client_detects_unsigned_version(self):
        system = build(lambda n, name: ForgingServer(n, name=name))
        box = []
        system.clients[0].write(b"x", box.append)
        system.run(until=50)
        client = system.clients[0]
        assert client.failed
        assert "line 35" in client.fail_reason
        assert not box


class TestReplay:
    def test_replayed_state_detected_on_second_operation(self):
        system = build(lambda n, name: ReplayServer(n, freeze_after_submits=2, name=name))
        # Two ops pass honestly; then the server freezes and replays.
        run_ops(system, [(0, "write", b"a"), (1, "read", 0)])
        box = []
        system.clients[0].write(b"b", box.append)  # served from frozen state
        system.run(until=50)
        # C1's own version advanced past the frozen SVER — caught.
        client0 = system.clients[0]
        # Either the first post-freeze op already trips (frozen Vc[i] is
        # stale) or the follow-up does; run one more if needed.
        if not client0.failed and box:
            system.clients[0].write(b"c", box.append)
            system.run(until=100)
        assert client0.failed
        assert "line 36" in client0.fail_reason or "line 43" in client0.fail_reason


class TestCrash:
    def test_operations_hang_without_detection(self):
        system = build(lambda n, name: CrashingServer(n, crash_after_submits=1, name=name))
        outcomes = run_ops(system, [(0, "write", b"a")])
        assert outcomes[0].timestamp == 1
        box = []
        system.clients[1].read(0, box.append)
        system.run(until=200)
        assert not box  # hangs forever
        assert not system.clients[1].failed  # but is NOT evidence of Byzantine
        assert system.clients[1].busy

    def test_crash_is_not_wait_freedom_violation_of_protocol(self):
        # Wait-freedom is promised only for correct servers; this documents
        # the model boundary.
        system = build(lambda n, name: CrashingServer(n, crash_after_submits=0, name=name))
        box = []
        system.clients[0].write(b"a", box.append)
        system.run(until=100)
        assert not box and not system.clients[0].failed


class TestUnresponsive:
    def test_victims_hang_others_proceed(self):
        system = build(lambda n, name: UnresponsiveServer(n, victims={0}, name=name))
        box0, box1 = [], []
        system.clients[0].write(b"a", box0.append)
        system.clients[1].write(b"b", box1.append)
        system.run(until=100)
        assert not box0 and box1
        assert not system.clients[0].failed


class TestSplitBrain:
    def test_groups_diverge_silently_at_ustor_level(self):
        system = build(
            lambda n, name: SplitBrainServer(
                n, groups=[{0}, {1, 2}], fork_time=0.0, name=name
            )
        )
        outcomes = run_ops(
            system,
            [
                (0, "write", b"left"),
                (1, "write", b"right"),
                (1, "read", 0),  # group {1,2} never sees C1's write
                (2, "read", 1),
                (0, "read", 1),  # group {0} never sees C2's write
            ],
        )
        assert outcomes[2].value is BOTTOM
        assert outcomes[3].value == b"right"
        assert outcomes[4].value is BOTTOM
        assert not any(c.failed for c in system.clients)

    def test_history_not_linearizable_but_causal(self):
        system = build(
            lambda n, name: SplitBrainServer(
                n, groups=[{0}, {1, 2}], fork_time=0.0, name=name
            )
        )
        run_ops(
            system,
            [(0, "write", b"left"), (1, "read", 0), (0, "read", 0), (1, "read", 0)],
        )
        history = system.history()
        assert not check_linearizability(history)
        assert check_causal_consistency(history)

    def test_within_group_consistency(self):
        system = build(
            lambda n, name: SplitBrainServer(
                n, groups=[{0, 1}, {2}], fork_time=0.0, name=name
            )
        )
        outcomes = run_ops(system, [(0, "write", b"v"), (1, "read", 0)])
        assert outcomes[1].value == b"v"  # same group: normal service

    def test_groups_must_partition(self):
        with pytest.raises(ProtocolError):
            SplitBrainServer(3, groups=[{0}, {1}], fork_time=0.0)
        with pytest.raises(ProtocolError):
            SplitBrainServer(2, groups=[{0, 1}, {1}], fork_time=0.0)

    def test_fork_after_common_prefix(self):
        system = build(
            lambda n, name: SplitBrainServer(
                n, groups=[{0}, {1, 2}], fork_time=10.0, name=name
            )
        )
        # Before the fork everyone is consistent.
        outcomes = run_ops(system, [(0, "write", b"pre"), (1, "read", 0)])
        assert outcomes[1].value == b"pre"
        system.run(until=12.0)
        # After the fork, C1's new write is invisible to the other group.
        run_ops(system, [(0, "write", b"post")])
        box = []
        system.clients[1].read(0, box.append)
        assert system.run_until(lambda: bool(box), timeout=100)
        assert box[0].value == b"pre"


class TestFigure3EndToEnd:
    def test_exact_paper_history(self):
        result = figure3_scenario()
        ops = list(result.history)
        assert [op.describe() for op in ops] == [
            "write_C1(X1, 'u')",
            "read_C2(X1) -> BOTTOM",
            "read_C2(X1) -> 'u'",
        ]

    def test_attack_is_invisible_to_ustor(self):
        result = figure3_scenario()
        assert not result.ustor_detected

    def test_versions_incomparable_after_join(self):
        result = figure3_scenario()
        writer, victim = result.system.clients
        assert not writer.version.comparable(victim.version)
