"""Every example script must run to completion (its asserts are checks)."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[1] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 4


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout  # every example narrates what it shows


def test_quickstart_reports_stability():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert "stable w.r.t. all clients: True" in completed.stdout


def test_forking_attack_shows_separation():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "forking_attack.py")],
        capture_output=True,
        text=True,
        timeout=180,
    )
    out = completed.stdout
    assert "linearizability" in out and "violated" in out
    assert "weak fork-linearizability" in out and "HOLDS" in out
