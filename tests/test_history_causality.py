"""Reads-from and potential causality (the Definition 3 machinery)."""

from __future__ import annotations

from repro.common.types import BOTTOM
from repro.history.causality import build_causal_structure

from histbuild import h, r, w


class TestReadsFrom:
    def test_read_maps_to_unique_writer(self):
        a = w(0, b"a", 0, 1)
        b = r(1, 0, b"a", 2, 3)
        cs = build_causal_structure(h(a, b))
        assert cs.reads_from == {b.op_id: a.op_id}

    def test_bottom_read_has_no_source(self):
        b = r(1, 0, BOTTOM, 0, 1)
        cs = build_causal_structure(h(b))
        assert cs.reads_from == {}
        assert not cs.fabricated_reads

    def test_fabricated_read_flagged(self):
        b = r(1, 0, b"never-written", 0, 1)
        cs = build_causal_structure(h(b))
        assert cs.fabricated_reads == [b.op_id]


class TestCausalOrder:
    def test_program_order(self):
        a = w(0, b"a", 0, 1)
        b = r(0, 1, BOTTOM, 2, 3)
        cs = build_causal_structure(h(a, b))
        assert cs.causally_precedes(a, b)
        assert not cs.causally_precedes(b, a)

    def test_reads_from_edge(self):
        a = w(0, b"a", 0, 1)
        b = r(1, 0, b"a", 2, 3)
        cs = build_causal_structure(h(a, b))
        assert cs.causally_precedes(a, b)

    def test_transitivity_across_clients(self):
        # C1 writes a; C2 reads a then writes b; C3 reads b.
        # The write of a causally precedes C3's read via C2.
        a = w(0, b"a", 0, 1)
        b = r(1, 0, b"a", 2, 3)
        c = w(1, b"b", 4, 5)
        d = r(2, 1, b"b", 6, 7)
        cs = build_causal_structure(h(a, b, c, d))
        assert cs.causally_precedes(a, d)

    def test_not_reflexive(self):
        a = w(0, b"a", 0, 1)
        cs = build_causal_structure(h(a))
        assert not cs.causally_precedes(a, a)

    def test_concurrent_unrelated_ops(self):
        a = w(0, b"a", 0, 1)
        b = w(1, b"b", 0, 1)
        cs = build_causal_structure(h(a, b))
        assert not cs.causally_precedes(a, b)
        assert not cs.causally_precedes(b, a)

    def test_real_time_alone_is_not_causality(self):
        # Potential causality ignores real-time order between different
        # clients with no data flow.
        a = w(0, b"a", 0, 1)
        b = w(1, b"b", 5, 6)
        cs = build_causal_structure(h(a, b))
        assert not cs.causally_precedes(a, b)

    def test_ancestors_and_descendants(self):
        a = w(0, b"a", 0, 1)
        b = r(1, 0, b"a", 2, 3)
        c = w(1, b"b", 4, 5)
        cs = build_causal_structure(h(a, b, c))
        assert cs.ancestors(c.op_id) == {a.op_id, b.op_id}
        assert cs.descendants(a.op_id) == {b.op_id, c.op_id}

    def test_acyclic_in_honest_history(self):
        ops = [w(0, b"a", 0, 1), r(1, 0, b"a", 2, 3), w(1, b"b", 4, 5)]
        cs = build_causal_structure(h(*ops))
        assert not cs.has_cycle()

    def test_cycle_detected_in_pathological_history(self):
        # A server colluding with value prediction: C1 reads C2's value
        # before C2 writes it, and vice versa — only possible if causality
        # is already broken, and has_cycle must say so.
        r1 = r(0, 1, b"y", 0, 1)
        w1 = w(0, b"x", 2, 3)
        r2 = r(1, 0, b"x", 4, 5)
        w2 = w(1, b"y", 6, 7)
        cs = build_causal_structure(h(r1, w1, r2, w2))
        # Edges: w1 -> r2 (reads-from), r2 -> w2 (program), w2 -> r1
        # (reads-from), r1 -> w1 (program): a cycle.
        assert cs.has_cycle()
