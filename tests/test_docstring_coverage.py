"""Tier-1 enforcement of public-API docstring coverage.

``tools/check_docstrings.py`` (the repo's dependency-free ``interrogate``
stand-in) must report 100% coverage over the audited packages —
``repro.api``, ``repro.cluster`` and ``repro.perf``.  Running it inside
the suite keeps the gate active for plain ``pytest`` runs, not just CI.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_docstrings import DEFAULT_TARGETS, audit_file, main  # noqa: E402


def test_public_surface_fully_documented(capsys):
    assert main([]) == 0, capsys.readouterr().out


def test_audit_counts_something():
    """The gate must actually be auditing a non-trivial surface."""
    audited = 0
    for target in DEFAULT_TARGETS:
        for path in sorted(target.rglob("*.py")):
            count, _missing = audit_file(path)
            audited += count
    assert audited > 80, f"only {audited} definitions audited — targets wrong?"


def test_detects_missing_docstring(tmp_path):
    victim = tmp_path / "naked.py"
    victim.write_text("def exposed():\n    pass\n")
    # Module *and* function lack docstrings -> nonzero exit.
    assert main([str(victim)]) == 1
