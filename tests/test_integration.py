"""End-to-end integration: the paper's guarantees over a seed matrix.

These tests tie the whole stack together: simulation -> protocol ->
recorded history -> independent checkers, across correct and Byzantine
servers, with and without crashes — Definition 5's conditions in
executable form.
"""

from __future__ import annotations

import random

import pytest

from repro.consistency.causal import check_causal_consistency
from repro.consistency.linearizability import check_linearizability
from repro.consistency.weak_fork import validate_weak_fork_linearizability
from repro.sim.network import ExponentialLatency, UniformLatency
from repro.ustor.byzantine import SplitBrainServer
from repro.ustor.viewhistory import build_client_views
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts
from repro.workloads.runner import SystemBuilder


class TestCorrectServerGuarantees:
    """Definition 5, conditions 1-4 with a correct server."""

    @pytest.mark.parametrize("seed", range(10))
    def test_full_matrix(self, seed):
        rng = random.Random(seed)
        n = rng.choice([2, 3, 5])
        latency = rng.choice(
            [ExponentialLatency(1.0, cap=10.0), UniformLatency(0.2, 3.0)]
        )
        piggyback = rng.random() < 0.3
        system = SystemBuilder(
            num_clients=n, seed=seed, latency=latency, commit_piggyback=piggyback
        ).build()
        scripts = generate_scripts(
            n,
            WorkloadConfig(
                ops_per_client=15,
                read_fraction=rng.choice([0.2, 0.5, 0.8]),
                mean_think_time=rng.choice([0.0, 1.0, 4.0]),
            ),
            rng,
        )
        driver = Driver(system)
        driver.attach_all(scripts)
        # Wait-freedom (condition 2): everything completes.
        assert driver.run_to_completion(), f"seed {seed}: blocked"
        history = system.history()
        # Linearizability (condition 1).
        assert check_linearizability(history), f"seed {seed}"
        # Causality (condition 3).
        assert check_causal_consistency(history), f"seed {seed}"
        # Integrity (condition 4): per-client timestamps increase.
        for client in history.clients():
            stamps = [
                op.timestamp
                for op in history.restrict_to_client(client)
                if op.timestamp is not None
            ]
            assert stamps == sorted(stamps)
            assert len(set(stamps)) == len(stamps)
        # The constructive weak-fork witness validates (Section 5 theorem).
        views = build_client_views(history, system.recorder, system.clients)
        assert validate_weak_fork_linearizability(history, views), f"seed {seed}"
        # Accuracy (condition 5): nobody cried wolf.
        assert not any(c.failed for c in system.clients)

    @pytest.mark.parametrize("seed", range(5))
    def test_with_client_crashes(self, seed):
        n = 4
        system = SystemBuilder(
            num_clients=n, seed=seed, latency=ExponentialLatency(1.0, cap=8.0)
        ).build()
        scripts = generate_scripts(
            n, WorkloadConfig(ops_per_client=12, mean_think_time=1.0), random.Random(seed)
        )
        driver = Driver(system)
        driver.attach_all(scripts)
        system.crash_client_at(0, time=10.0)
        system.crash_client_at(1, time=20.0)
        system.run(until=5_000)
        # Survivors finish everything (wait-freedom despite crashes).
        assert driver.stats.completed[2] == 12
        assert driver.stats.completed[3] == 12
        history = system.history()
        assert check_linearizability(history), f"seed {seed}"
        assert check_causal_consistency(history), f"seed {seed}"
        views = build_client_views(
            history,
            system.recorder,
            system.clients,  # all clients: crashed ones still hold VH records
            view_clients=[c.client_id for c in system.clients if not c.crashed],
        )
        assert validate_weak_fork_linearizability(history, views), f"seed {seed}"


class TestByzantineGuarantees:
    """Weak fork-linearizability and causality under forking attacks."""

    @pytest.mark.parametrize("seed", range(5))
    def test_split_brain_preserves_weak_fork_and_causality(self, seed):
        n = 4
        groups = [{0, 1}, {2, 3}]
        system = SystemBuilder(
            num_clients=n,
            seed=seed,
            server_factory=lambda nn, name: SplitBrainServer(
                nn, groups=groups, fork_time=5.0, name=name
            ),
        ).build()
        scripts = generate_scripts(
            n, WorkloadConfig(ops_per_client=10, mean_think_time=1.0), random.Random(seed)
        )
        driver = Driver(system)
        driver.attach_all(scripts)
        system.run(until=5_000)
        history = system.history()
        # Causality holds under the attack (Definition 5, condition 3).
        assert check_causal_consistency(history), f"seed {seed}"
        # The protocol's own views certify weak fork-linearizability.
        views = build_client_views(history, system.recorder, system.clients)
        assert validate_weak_fork_linearizability(history, views), f"seed {seed}"
        # USTOR never halts on a per-branch-consistent server.
        assert not any(c.failed for c in system.clients), f"seed {seed}"

    @pytest.mark.parametrize("seed", range(3))
    def test_split_brain_usually_not_linearizable(self, seed):
        # With both groups writing, the joint history should not be
        # linearizable (sanity check that the attack really forks).
        n = 4
        system = SystemBuilder(
            num_clients=n,
            seed=seed + 50,
            server_factory=lambda nn, name: SplitBrainServer(
                nn, groups=[{0, 1}, {2, 3}], fork_time=0.0, name=name
            ),
        ).build()
        scripts = generate_scripts(
            n,
            WorkloadConfig(ops_per_client=8, read_fraction=0.5, mean_think_time=0.5),
            random.Random(seed),
        )
        driver = Driver(system)
        driver.attach_all(scripts)
        system.run(until=5_000)
        history = system.history()
        reads_cross_group = any(
            op.is_read and (op.client < 2) != (op.register < 2) for op in history
        )
        if reads_cross_group:
            assert not check_linearizability(history)


class TestScaling:
    def test_many_clients(self):
        n = 16
        system = SystemBuilder(num_clients=n, seed=1).build()
        scripts = generate_scripts(
            n, WorkloadConfig(ops_per_client=5), random.Random(1)
        )
        driver = Driver(system)
        driver.attach_all(scripts)
        assert driver.run_to_completion(timeout=50_000)
        history = system.history()
        assert len(history) == n * 5
        assert check_linearizability(history)

    def test_long_run_server_state_bounded(self):
        system = SystemBuilder(num_clients=3, seed=2).build()
        scripts = generate_scripts(
            3, WorkloadConfig(ops_per_client=60, mean_think_time=0.2), random.Random(2)
        )
        driver = Driver(system)
        driver.attach_all(scripts)
        assert driver.run_to_completion(timeout=100_000)
        # Eager COMMITs keep the pending list near the concurrency level.
        assert system.server.max_pending_len <= 6
