"""Canonical encoding: injectivity is what the signatures rely on."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.encoding import decode, decode_reference, encode, encode_sequence
from repro.common.errors import (
    DecodeError,
    EncodingError,
    OversizedFrameError,
    TruncatedFrameError,
)
from repro.common.types import OpKind


class TestBasicEncoding:
    def test_none_encodes(self):
        assert isinstance(encode(None), bytes)

    def test_ints_encode(self):
        assert encode(0) != encode(1)

    def test_negative_int_differs_from_positive(self):
        assert encode(-5) != encode(5)

    def test_large_int(self):
        big = 2**200 + 17
        assert encode(big) != encode(big + 1)

    def test_bool_differs_from_int(self):
        assert encode(True) != encode(1)
        assert encode(False) != encode(0)

    def test_bytes_and_str_differ(self):
        assert encode(b"abc") != encode("abc")

    def test_enum_members_distinct(self):
        assert encode(OpKind.READ) != encode(OpKind.WRITE)

    def test_enum_differs_from_its_name(self):
        assert encode(OpKind.READ) != encode("READ")

    def test_nested_sequences(self):
        assert encode((1, (2, 3))) != encode((1, 2, 3))

    def test_empty_sequence(self):
        assert encode(()) != encode((None,))

    def test_unsupported_type_raises(self):
        with pytest.raises(EncodingError):
            encode(object())

    def test_float_rejected(self):
        # Floats have no canonical form; protocols must not sign them.
        with pytest.raises(EncodingError):
            encode(1.5)

    def test_encode_sequence_matches_tuple(self):
        assert encode_sequence([1, 2]) == encode((1, 2))

    def test_bytearray_and_bytes_agree(self):
        assert encode(bytearray(b"xy")) == encode(b"xy")


class TestConcatenationAmbiguity:
    """The classical ambiguities plain concatenation suffers from."""

    def test_string_split_points(self):
        assert encode("ab", "c") != encode("a", "bc")

    def test_bytes_split_points(self):
        assert encode(b"ab", b"c") != encode(b"a", b"bc")

    def test_empty_vs_missing(self):
        assert encode("a", "") != encode("a")

    def test_protocol_payload_shapes(self):
        # The exact payload shapes USTOR signs must be mutually distinct.
        submit = encode("SUBMIT", OpKind.WRITE, 0, 1)
        data = encode("DATA", 1, b"\x00" * 32)
        commit = encode("COMMIT", (1, 0), (b"\x01" * 32, None))
        proof = encode("PROOF", b"\x01" * 32)
        payloads = [submit, data, commit, proof]
        assert len(set(payloads)) == 4


class TestUntrustedInputHardening:
    """Socket peers are untrusted: decode failures must be typed.

    The real transport (``repro.net``) feeds bytes straight off a TCP
    stream into :func:`decode`; these tests pin the error contract the
    frame reader relies on (both decoder implementations, since the
    equivalence suite asserts they reject identically).
    """

    DECODERS = (decode, decode_reference)

    def test_truncation_is_typed_at_every_cut(self):
        blob = encode("SUBMIT", OpKind.WRITE, 7, b"\x00" * 32, ("x", -1), None)
        for cut in range(len(blob)):
            for dec in self.DECODERS:
                with pytest.raises(TruncatedFrameError):
                    dec(blob[:cut], enums=(OpKind,))

    def test_truncated_is_a_decode_and_encoding_error(self):
        assert issubclass(TruncatedFrameError, DecodeError)
        assert issubclass(OversizedFrameError, DecodeError)
        assert issubclass(DecodeError, EncodingError)

    def test_oversized_input_rejected_before_decoding(self):
        blob = encode(b"\x01" * 1024)
        for dec in self.DECODERS:
            with pytest.raises(OversizedFrameError):
                dec(blob, max_bytes=64)

    def test_max_bytes_at_exact_size_accepted(self):
        blob = encode("hello")
        for dec in self.DECODERS:
            assert dec(blob, max_bytes=len(blob)) == ("hello",)

    def test_huge_declared_sequence_count_fails_fast(self):
        # A 1 TiB element count in a 9-byte input must be rejected without
        # looping a trillion times.
        bad = b"\x05" + (2**40).to_bytes(8, "big")
        for dec in self.DECODERS:
            with pytest.raises(TruncatedFrameError):
                dec(bad)

    def test_huge_declared_byte_length_fails_fast(self):
        bad = b"\x05" + (1).to_bytes(8, "big") + b"\x03" + (2**40).to_bytes(8, "big")
        for dec in self.DECODERS:
            with pytest.raises(TruncatedFrameError):
                dec(bad)

    def test_structural_corruption_stays_plain_encoding_error(self):
        # Unknown tags / bad sign bytes are corruption, not truncation.
        unknown_tag = b"\x05" + (1).to_bytes(8, "big") + b"\x7f"
        bad_sign = (
            b"\x05" + (1).to_bytes(8, "big") + b"\x02\x09" + (1).to_bytes(8, "big") + b"\x01"
        )
        for blob in (unknown_tag, bad_sign):
            for dec in self.DECODERS:
                with pytest.raises(EncodingError) as excinfo:
                    dec(blob)
                assert not isinstance(excinfo.value, DecodeError)


_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.binary(max_size=24),
    st.text(max_size=24),
)
_values = st.recursive(
    _scalars, lambda inner: st.lists(inner, max_size=4).map(tuple), max_leaves=8
)


class TestEncodingProperties:
    @given(st.lists(_values, max_size=5), st.lists(_values, max_size=5))
    def test_injective_on_random_values(self, left, right):
        if tuple(left) != tuple(right):
            assert encode(*left) != encode(*right)
        else:
            assert encode(*left) == encode(*right)

    @given(_values)
    def test_deterministic(self, value):
        assert encode(value) == encode(value)

    @given(_values, _values)
    def test_prefix_code(self, a, b):
        # No encoding is a strict prefix of another (needed for streaming
        # safety of concatenated fields).
        ea, eb = encode(a), encode(b)
        if ea != eb:
            assert not eb.startswith(ea)
            assert not ea.startswith(eb)
