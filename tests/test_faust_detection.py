"""FAUST failure detection: accuracy (no false positives) and completeness."""

from __future__ import annotations

import random

import pytest

from repro.sim.network import ExponentialLatency
from repro.ustor.byzantine import SplitBrainServer, TamperingServer
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts
from repro.workloads.runner import SystemBuilder
from repro.workloads.scenarios import figure3_scenario, split_brain_scenario


class TestAccuracy:
    """Definition 5, condition 5: fail_i only if the server is faulty."""

    @pytest.mark.parametrize("seed", range(6))
    def test_no_false_positives_with_correct_server(self, seed):
        system = SystemBuilder(
            num_clients=3,
            seed=seed,
            latency=ExponentialLatency(1.0, cap=6.0),
        ).build_faust(dummy_read_period=3.0, probe_check_period=4.0, delta=12.0)
        scripts = generate_scripts(
            3, WorkloadConfig(ops_per_client=10), random.Random(seed)
        )
        driver = Driver(system)
        driver.attach_all(scripts)
        driver.run_to_completion()
        system.run(until=system.now + 300)
        assert not any(c.faust_failed for c in system.clients)

    def test_no_false_positives_with_disconnections(self, ):
        # Clients going offline and returning is not failure evidence.
        system = SystemBuilder(num_clients=3, seed=77).build_faust(
            dummy_read_period=3.0, probe_check_period=4.0, delta=10.0
        )
        lazy = system.clients[2]
        system.offline.set_online(lazy.name, False)
        lazy.pause()
        scripts = generate_scripts(
            3,
            WorkloadConfig(ops_per_client=8, silent_clients=frozenset({2})),
            random.Random(77),
        )
        driver = Driver(system)
        driver.attach_all(scripts)
        driver.run_to_completion()
        system.run(until=system.now + 100)
        system.offline.set_online(lazy.name, True)
        lazy.resume()
        system.run(until=system.now + 300)
        assert not any(c.faust_failed for c in system.clients)


class TestCompleteness:
    """Definition 5, condition 7: failures eventually reach every client."""

    def test_split_brain_detected_at_all_correct_clients(self):
        result = split_brain_scenario(num_clients=4, seed=11, run_for=800.0)
        for client in result.system.clients:
            if client.crashed:
                continue
            assert client.faust_failed, f"{client.name} missed the fork"
            assert client.faust_fail_reason is not None

    def test_detection_reasons_are_informative(self):
        result = split_brain_scenario(num_clients=4, seed=12, run_for=800.0)
        reasons = {c.faust_fail_reason for c in result.system.clients}
        assert any("incomparable" in (r or "") for r in reasons)

    def test_figure3_fork_detected_via_offline_exchange(self):
        result = figure3_scenario(faust=True)
        system = result.system
        system.run(until=system.now + 400)
        assert all(c.faust_failed for c in system.clients)

    def test_ustor_detection_propagates_via_failure_messages(self):
        # C2 catches the tamper locally (line 50); C1 and C3 learn only
        # through the FAILURE alert on the offline channel.
        system = SystemBuilder(
            num_clients=3,
            seed=13,
            server_factory=lambda n, name: TamperingServer(n, target_register=0, name=name),
        ).build_faust(dummy_read_period=1_000.0, probe_check_period=1_000.0)
        box = []
        system.clients[0].write(b"genuine", box.append)
        assert system.run_until(lambda: bool(box), timeout=100)
        system.clients[1].read(0, lambda o: None)
        system.run(until=system.now + 100)
        assert system.clients[1].faust_failed
        assert "USTOR detection" in system.clients[1].faust_fail_reason
        # Propagation to everyone else despite zero background reads:
        assert system.clients[0].faust_failed
        assert system.clients[2].faust_failed
        assert "FAILURE alert" in system.clients[2].faust_fail_reason

    def test_failed_client_halts_operations(self):
        from repro.common.errors import ProtocolError

        result = figure3_scenario(faust=True)
        system = result.system
        system.run(until=system.now + 400)
        victim = system.clients[1]
        with pytest.raises(ProtocolError):
            victim.read(0)

    def test_detection_latency_shrinks_with_probe_rate(self):
        def detection_time(delta):
            result = split_brain_scenario(
                num_clients=4, seed=21, delta=delta, run_for=3_000.0
            )
            times = [
                c.faust_fail_time
                for c in result.system.clients
                if c.faust_fail_time is not None
            ]
            assert times, f"no detection with delta={delta}"
            return max(times)

        fast = detection_time(delta=10.0)
        slow = detection_time(delta=120.0)
        assert fast < slow


class TestOfflineWindows:
    def test_failure_alert_waits_in_mailbox(self):
        # C3 is disconnected when the FAILURE alert goes out; the mailbox
        # holds it and delivery happens at reconnection — eventual
        # completeness across offline windows.
        system = SystemBuilder(
            num_clients=3,
            seed=41,
            server_factory=lambda n, name: TamperingServer(n, target_register=0, name=name),
        ).build_faust(dummy_read_period=1_000.0, probe_check_period=1_000.0)
        sleeper = system.clients[2]
        system.offline.set_online(sleeper.name, False)
        box = []
        system.clients[0].write(b"genuine", box.append)
        assert system.run_until(lambda: bool(box), timeout=100)
        system.clients[1].read(0, lambda o: None)
        system.run(until=system.now + 100)
        assert system.clients[1].faust_failed
        assert not sleeper.faust_failed  # still asleep, alert in mailbox
        assert system.offline.mailbox_depth(sleeper.name) >= 1
        system.offline.set_online(sleeper.name, True)
        system.run(until=system.now + 50)
        assert sleeper.faust_failed  # woke up to the bad news


class TestSplitBrainStability:
    def test_no_cross_group_stability_after_fork(self):
        # Operations executed after the fork must never become stable
        # w.r.t. clients of the other group (stability-detection accuracy).
        result = split_brain_scenario(num_clients=4, seed=31, fork_time=20.0, run_for=600.0)
        system = result.system
        groups = result.groups
        for client in system.clients:
            own_group = next(g for g in groups if client.client_id in g)
            other = [c for g in groups if g is not own_group for c in g]
            # Find the client's first post-fork timestamp.
            post_fork = [
                op.timestamp
                for op in system.history()
                if op.client == client.client_id
                and op.invoked_at > result.fork_time + 5.0
                and op.timestamp is not None
            ]
            if not post_fork:
                continue
            earliest = min(post_fork)
            for peer in other:
                # Allow at most the fork-instant race (one in-flight op).
                assert client.tracker.stable_timestamp_for(peer) <= earliest, (
                    f"{client.name} believes op t={earliest} (post-fork) is "
                    f"stable w.r.t. C{peer + 1}"
                )
