"""Unit tests for the lease-based membership layer.

Covers :mod:`repro.faust.membership` in isolation — policy validation,
the epoch hash chain, strike accounting, the eviction/majority/countersign
rules, supersede and non-equivocation behaviour, announces and rejoin —
plus the client fault injector's spec parsing.  The fleet-level
behaviour (eviction under ``repro scale`` faults, growth ratios, the
equivalence guarantees) lives in ``test_membership_faults.py`` and
``test_membership_equivalence.py``.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.crypto.keystore import KeyStore
from repro.faust.checkpoint import CheckpointManager, CheckpointPolicy
from repro.faust.membership import (
    Epoch,
    MembershipManager,
    MembershipPolicy,
    epoch_digest,
)
from repro.faust.messages import EpochShareMessage
from repro.sim.faults import CLIENT_FAULT_KINDS, ClientFault, ClientFaultInjector

# --------------------------------------------------------------------- #
# Policy and chain basics
# --------------------------------------------------------------------- #


def test_membership_policy_validation():
    with pytest.raises(ConfigurationError):
        MembershipPolicy(lease_checkpoints=0)
    with pytest.raises(ConfigurationError):
        MembershipPolicy(evict_after=0)
    with pytest.raises(ConfigurationError):
        MembershipPolicy(check_period=0.0)
    policy = MembershipPolicy()
    assert policy.lease_checkpoints == 2 and policy.rejoin


def test_epoch_genesis_and_digest_binding():
    genesis = Epoch.genesis(3)
    assert genesis.epoch == 0
    assert genesis.members == (0, 1, 2)
    assert genesis.digest == epoch_digest(0, (0, 1, 2), b"")
    # The digest binds number, members and ancestry.
    child = epoch_digest(1, (0, 1), genesis.digest)
    assert child != epoch_digest(2, (0, 1), genesis.digest)
    assert child != epoch_digest(1, (0, 2), genesis.digest)
    assert child != epoch_digest(1, (0, 1), b"other")


# --------------------------------------------------------------------- #
# A direct-wired fleet: managers + checkpoint managers, no simulator
# --------------------------------------------------------------------- #


class _FakeTracker:
    """A stability tracker whose cuts and staleness the test dictates."""

    def __init__(self, n: int):
        self.vector_all = (0,) * n
        self.by_members: dict[tuple[int, ...], tuple[int, ...]] = {}
        self.stale: set[int] = set()

    def stable_vector(self, members=None):
        if members is None:
            return self.vector_all
        return self.by_members.get(tuple(members), self.vector_all)

    def stale_peers(self, now, delta):
        return frozenset(self.stale)


class _Fleet:
    """N membership+checkpoint manager pairs with instantaneous delivery.

    ``crashed`` clients neither send nor receive — the crash-forever
    model the membership layer exists to survive.
    """

    def __init__(self, n: int = 4, interval: int = 4, policy=None):
        self.n = n
        self.keystore = KeyStore(n)
        self.crashed: set[int] = set()
        self.failures: dict[int, str] = {}
        self.epochs: dict[int, list[Epoch]] = {i: [] for i in range(n)}
        self.announces: list[tuple[int, int]] = []  # (sender, target)
        self.rejoin_requests: list[tuple[int, int]] = []
        self.trackers = [_FakeTracker(n) for _ in range(n)]
        self.memberships: list[MembershipManager] = []
        self.checkpoints: list[CheckpointManager] = []
        policy = policy or MembershipPolicy(lease_checkpoints=1, evict_after=1)
        for i in range(n):
            mm = MembershipManager(
                client_id=i,
                num_clients=n,
                signer=self.keystore.signer(i),
                policy=policy,
                tracker=self.trackers[i],
                delta=10.0,
                send_share=self._broadcast_epoch(i),
                send_announce=self._announce(i),
                request_rejoin=lambda peer, i=i: self.rejoin_requests.append(
                    (i, peer)
                ),
                on_epoch=self._on_epoch(i),
                on_fail=lambda reason, i=i: self.failures.__setitem__(i, reason),
            )
            cm = CheckpointManager(
                client_id=i,
                num_clients=n,
                signer=self.keystore.signer(i),
                policy=CheckpointPolicy(interval=interval, prune_history=False),
                send_share=self._broadcast_ckpt(i),
                send_server=lambda _msg: None,
                on_fail=lambda reason, i=i: self.failures.__setitem__(i, reason),
                membership=mm,
            )
            mm.bind(cm)
            self.memberships.append(mm)
            self.checkpoints.append(cm)

    def _broadcast_epoch(self, sender: int):
        def send(share: EpochShareMessage) -> None:
            if sender in self.crashed:
                return
            for j in range(self.n):
                if j != sender and j not in self.crashed:
                    self.memberships[j].on_share(share)

        return send

    def _broadcast_ckpt(self, sender: int):
        def send(share) -> None:
            if sender in self.crashed:
                return
            for j in range(self.n):
                if j != sender and j not in self.crashed:
                    self.checkpoints[j].on_share(share)

        return send

    def _announce(self, sender: int):
        def send(target: int, announce) -> None:
            self.announces.append((sender, target))
            if sender not in self.crashed and target not in self.crashed:
                self.memberships[target].on_announce(announce)

        return send

    def _on_epoch(self, owner: int):
        def on_epoch(epoch: Epoch) -> None:
            self.epochs[owner].append(epoch)
            cm = self.checkpoints[owner]
            cm.on_members_changed()
            cm.on_stability(
                self.trackers[owner].stable_vector(members=epoch.members)
            )

        return on_epoch

    # -- conveniences -------------------------------------------------- #

    def live(self):
        return [j for j in range(self.n) if j not in self.crashed]

    def set_stability(self, vector, *, members_vector=None, stale=()):
        members = tuple(self.live())
        for j in self.live():
            tracker = self.trackers[j]
            tracker.vector_all = tuple(vector)
            tracker.stale = set(stale)
            if members_vector is not None:
                tracker.by_members[members] = tuple(members_vector)
            self.checkpoints[j].on_stability(tuple(vector))

    def tick(self, now: float) -> None:
        for j in self.live():
            self.memberships[j].on_tick(now)


def test_fault_free_run_never_changes_epoch_or_sends_shares():
    fleet = _Fleet(n=3)
    fleet.set_stability((2, 2, 1))  # crosses interval 4: seq 1 installs
    for _ in range(10):
        fleet.tick(100.0)
    assert all(m.epoch.epoch == 0 for m in fleet.memberships)
    assert all(m.shares_sent == 0 for m in fleet.memberships)
    assert all(m.announces_sent == 0 for m in fleet.memberships)
    assert all(cm.installed.seq == 1 for cm in fleet.checkpoints)
    assert not fleet.failures


def test_crashed_forever_client_is_evicted_and_the_chain_resumes():
    fleet = _Fleet(n=4)
    fleet.crashed.add(3)
    # All-clients stability is frozen (client 3's row never advances) but
    # the surviving rows alone carry a full interval: the counterfactual
    # blocking case.
    fleet.set_stability(
        (0, 0, 0, 0), members_vector=(2, 2, 1, 0), stale=(3,)
    )
    # lease_checkpoints=1 + evict_after=1: two blocking checks to evict.
    fleet.tick(10.0)
    assert all(m.epoch.epoch == 0 for m in fleet.memberships[:3])
    fleet.tick(20.0)
    assert all(m.epoch.epoch == 1 for m in fleet.memberships[:3])
    assert all(m.members == (0, 1, 2) for m in fleet.memberships[:3])
    assert all(m.evicted_clients() == (3,) for m in fleet.memberships[:3])
    # The checkpoint chain resumed at the new quorum: seq 1 installed
    # with the shrunken signer set, full-width cut.
    for cm in fleet.checkpoints[:3]:
        assert cm.installed.seq == 1
        assert cm.installed.signers == (0, 1, 2)
        assert len(cm.installed.cut) == 4
    assert not fleet.failures


def test_lease_renewal_resets_strikes_and_prevents_eviction():
    fleet = _Fleet(n=3, policy=MembershipPolicy(lease_checkpoints=2, evict_after=2))
    fleet.crashed.add(2)
    fleet.set_stability((0, 0, 0), members_vector=(3, 2, 0), stale=(2,))
    for now in (10.0, 20.0, 30.0):
        fleet.tick(now)
    assert fleet.memberships[0].strikes[2] == 3
    assert fleet.memberships[0].lease_lapsed(2)
    # The slow client comes back just in time: its checkpoint share is
    # its lease renewal, one tick before the eviction threshold (4).
    fleet.crashed.discard(2)
    fleet.set_stability((3, 2, 1), stale=())
    assert all(cm.installed.seq == 1 for cm in fleet.checkpoints)
    assert fleet.memberships[0].strikes[2] == 0
    for now in (40.0, 50.0):
        fleet.tick(now)
    assert all(m.epoch.epoch == 0 for m in fleet.memberships)
    assert not fleet.failures


def test_no_eviction_without_a_strict_majority_of_survivors():
    fleet = _Fleet(n=4)
    fleet.crashed.update((2, 3))  # two of four: survivors are not a majority
    fleet.set_stability(
        (0, 0, 0, 0), members_vector=(3, 2, 0, 0), stale=(2, 3)
    )
    for now in (10.0, 20.0, 30.0, 40.0):
        fleet.tick(now)
    assert all(m.epoch.epoch == 0 for m in fleet.memberships[:2])
    assert all(m.shares_sent == 0 for m in fleet.memberships[:2])
    assert not fleet.failures


def test_member_refuses_epoch_whose_evictees_are_not_lapsed_in_its_view():
    fleet = _Fleet(n=3)
    # Client 0 unilaterally proposes evicting 2, but clients 1 and 2 see
    # no blocking at all: nobody countersigns, no epoch installs.
    proposer = fleet.memberships[0]
    proposer.strikes[2] = 99
    proposer._propose((0, 1))
    assert proposer.shares_sent == 1
    assert all(m.epoch.epoch == 0 for m in fleet.memberships)
    assert fleet.memberships[1].shares_sent == 0
    assert not fleet.failures


def test_invalid_epoch_share_signature_is_forking_evidence():
    fleet = _Fleet(n=3)
    forged = EpochShareMessage(
        sender=1,
        epoch=1,
        members=(0, 1),
        parent_digest=fleet.memberships[0].epoch.digest,
        signature=b"not-a-signature",
    )
    fleet.memberships[0].on_share(forged)
    assert fleet.memberships[0].failed
    assert "invalid" in fleet.failures[0]


def test_share_diverging_from_installed_epoch_is_forking_evidence():
    fleet = _Fleet(n=4)
    fleet.crashed.add(3)
    fleet.set_stability((0, 0, 0, 0), members_vector=(2, 2, 1, 0), stale=(3,))
    fleet.tick(10.0)
    fleet.tick(20.0)
    assert fleet.memberships[0].epoch.epoch == 1
    # A signed record for epoch 1 with a *different* member set than the
    # one installed: forked membership history.
    signer = fleet.keystore.signer(2)
    divergent = EpochShareMessage(
        sender=2,
        epoch=1,
        members=(0, 2),
        parent_digest=fleet.memberships[0].chain[0].digest,
        signature=signer.sign("EPOCH", 1, (0, 2), fleet.memberships[0].chain[0].digest),
    )
    fleet.memberships[0].on_share(divergent)
    assert fleet.memberships[0].failed
    assert "diverges" in fleet.failures[0]


def test_malformed_member_sets_are_ignored_not_evidence():
    fleet = _Fleet(n=3)
    parent = fleet.memberships[0].epoch.digest
    signer = fleet.keystore.signer(1)
    for bad in ((), (1, 0), (0, 0, 1), (0, 7)):
        share = EpochShareMessage(
            sender=1,
            epoch=1,
            members=bad,
            parent_digest=parent,
            signature=signer.sign("EPOCH", 1, bad, parent),
        )
        fleet.memberships[0].on_share(share)
    assert not fleet.memberships[0].failed
    assert fleet.memberships[0].epoch.epoch == 0


def test_returning_evictee_rejoins_through_an_add_epoch():
    fleet = _Fleet(n=4)
    fleet.crashed.add(3)
    fleet.set_stability((0, 0, 0, 0), members_vector=(2, 2, 1, 0), stale=(3,))
    fleet.tick(10.0)
    fleet.tick(20.0)
    assert fleet.memberships[0].evicted_clients() == (3,)
    # Client 3 returns and makes contact (any offline message from it
    # lands in note_contact); a member answers with the chain and
    # sponsors an add-epoch that every member co-signs.
    fleet.crashed.discard(3)
    fleet.memberships[0].note_contact(3)
    assert (0, 3) in fleet.announces
    assert all(m.epoch.epoch == 2 for m in fleet.memberships)
    assert all(m.members == (0, 1, 2, 3) for m in fleet.memberships)
    assert fleet.memberships[3].epoch.digest == fleet.memberships[0].epoch.digest
    assert fleet.memberships[0].rejoins >= 1
    assert not fleet.failures


def test_rejoin_disabled_policy_never_readmits():
    fleet = _Fleet(
        n=4, policy=MembershipPolicy(lease_checkpoints=1, evict_after=1, rejoin=False)
    )
    fleet.crashed.add(3)
    fleet.set_stability((0, 0, 0, 0), members_vector=(2, 2, 1, 0), stale=(3,))
    fleet.tick(10.0)
    fleet.tick(20.0)
    assert fleet.memberships[0].evicted_clients() == (3,)
    fleet.crashed.discard(3)
    fleet.memberships[0].note_contact(3)
    assert fleet.memberships[0].epoch.epoch == 1
    assert fleet.memberships[0].announces_sent == 0


def test_evicted_client_solicits_rejoin_on_tick():
    fleet = _Fleet(n=4)
    fleet.crashed.add(3)
    fleet.set_stability((0, 0, 0, 0), members_vector=(2, 2, 1, 0), stale=(3,))
    fleet.tick(10.0)
    fleet.tick(20.0)
    fleet.crashed.discard(3)
    # The evictee first has to LEARN it was evicted (the announce); after
    # adopting the chain its own ticks solicit rejoin from a member.
    fleet.memberships[3].on_announce(fleet.memberships[0].build_announce())
    assert fleet.memberships[3].epoch.epoch == 1
    assert not fleet.memberships[3].is_member()
    fleet.memberships[3].on_tick(30.0)
    assert (3, 0) in fleet.rejoin_requests


def test_announce_adoption_reseeds_the_checkpoint_base():
    fleet = _Fleet(n=4)
    fleet.crashed.add(3)
    fleet.set_stability((0, 0, 0, 0), members_vector=(4, 3, 1, 0), stale=(3,))
    fleet.tick(10.0)
    fleet.tick(20.0)
    assert fleet.checkpoints[0].installed.seq == 1
    fleet.crashed.discard(3)
    fleet.memberships[3].on_announce(fleet.memberships[0].build_announce())
    # The returnee adopted both the epoch chain and the members' last
    # installed checkpoint as its new history base.
    assert fleet.memberships[3].epoch.epoch == 1
    assert fleet.checkpoints[3].installed.digest == (
        fleet.checkpoints[0].installed.digest
    )
    assert not fleet.failures


def test_diverging_announce_is_forking_evidence():
    fleet = _Fleet(n=4)
    fleet.crashed.add(3)
    fleet.set_stability((0, 0, 0, 0), members_vector=(2, 2, 1, 0), stale=(3,))
    fleet.tick(10.0)
    fleet.tick(20.0)
    announce = fleet.memberships[0].build_announce()
    forked = announce.__class__(
        sender=announce.sender,
        records=(announce.records[0], (1, (1, 2), announce.records[1][2])),
        checkpoint_seq=announce.checkpoint_seq,
        checkpoint_cut=announce.checkpoint_cut,
        checkpoint_parent=announce.checkpoint_parent,
    )
    fleet.memberships[1].on_announce(forked)
    assert fleet.memberships[1].failed
    assert "diverges" in fleet.failures[1]


# --------------------------------------------------------------------- #
# Client fault specs
# --------------------------------------------------------------------- #


def test_client_fault_spec_parsing():
    fault = ClientFaultInjector.parse_spec("crash-forever:1@200")
    assert fault == ClientFault("crash-forever", 1, 200.0)
    fault = ClientFaultInjector.parse_spec("crash-restart:2@100+300")
    assert fault == ClientFault("crash-restart", 2, 100.0, 300.0)
    fault = ClientFaultInjector.parse_spec("lease-expiry:0@150+400.5")
    assert fault == ClientFault("lease-expiry", 0, 150.0, 400.5)


@pytest.mark.parametrize(
    "spec",
    [
        "crash-forever",
        "crash-forever:1",
        "crash-forever:x@200",
        "crash-forever:1@200+50",  # crash-forever has no duration
        "crash-restart:1@200",  # crash-restart needs one
        "lease-expiry:1@200+0",
        "unknown-kind:1@200",
        "crash-forever:1@-5",
    ],
)
def test_malformed_client_fault_specs_are_rejected(spec):
    with pytest.raises(SimulationError):
        ClientFaultInjector.parse_spec(spec)


def test_client_fault_kinds_are_the_documented_three():
    assert CLIENT_FAULT_KINDS == ("crash-forever", "crash-restart", "lease-expiry")


def test_fault_injector_rejects_out_of_range_clients():
    class _Sched:
        def schedule_at(self, *_a):  # pragma: no cover - never reached
            raise AssertionError

    injector = ClientFaultInjector(_Sched(), clients=[object()])
    with pytest.raises(SimulationError):
        injector.schedule(ClientFault("crash-forever", 5, 10.0))
