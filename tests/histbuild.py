"""History-building helpers shared by the test suite.

A proper module (not ``conftest.py``) so test files can import it
unambiguously: a bare ``from conftest import ...`` resolves to whichever
``conftest.py`` pytest imported first, which broke collection when the
benchmark suite's conftest shadowed ours.
"""

from __future__ import annotations

import itertools

from repro.common.types import OpKind
from repro.history.events import Operation
from repro.history.history import History

_ids = itertools.count(1)


def w(client, value, start, end, op_id=None, timestamp=None):
    """A write operation literal (client writes its own register)."""
    return Operation(
        op_id=next(_ids) if op_id is None else op_id,
        client=client,
        kind=OpKind.WRITE,
        register=client,
        value=value,
        invoked_at=start,
        responded_at=end,
        timestamp=timestamp,
    )


def r(client, register, value, start, end, op_id=None, timestamp=None):
    """A read operation literal; ``value`` is the returned value."""
    return Operation(
        op_id=next(_ids) if op_id is None else op_id,
        client=client,
        kind=OpKind.READ,
        register=register,
        value=value,
        invoked_at=start,
        responded_at=end,
        timestamp=timestamp,
    )


def h(*operations, base=None) -> History:
    """A history literal.

    ``base`` maps register -> ``(pruned_write_count, last_pruned_response
    _time)`` for histories that begin after a checkpoint compaction
    instead of at timestamp 0 / BOTTOM.
    """
    return History(operations, base=base)
