"""Periodic timers, metrics aggregation, and trace queries."""

from __future__ import annotations

import pytest

from repro.common.errors import SimulationError
from repro.sim.metrics import Counter, MetricsRegistry, Sample, percentile, summarize
from repro.sim.scheduler import Scheduler
from repro.sim.timers import PeriodicTimer
from repro.sim.trace import SimTrace


class TestPeriodicTimer:
    def test_fires_periodically(self):
        sched = Scheduler()
        ticks = []
        timer = PeriodicTimer(sched, 2.0, lambda: ticks.append(sched.now))
        timer.start()
        sched.run(until=7.0)
        assert ticks == [2.0, 4.0, 6.0]

    def test_initial_delay(self):
        sched = Scheduler()
        ticks = []
        timer = PeriodicTimer(sched, 5.0, lambda: ticks.append(sched.now), initial_delay=1.0)
        timer.start()
        sched.run(until=7.0)
        assert ticks == [1.0, 6.0]

    def test_stop(self):
        sched = Scheduler()
        ticks = []
        timer = PeriodicTimer(sched, 1.0, lambda: ticks.append(sched.now))
        timer.start()
        sched.schedule(2.5, timer.stop)
        sched.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_callback_can_stop_timer(self):
        sched = Scheduler()
        ticks = []
        timer = PeriodicTimer(sched, 1.0, lambda: (ticks.append(sched.now), timer.stop()))
        timer.start()
        sched.run(until=10.0)
        assert ticks == [1.0]

    def test_start_is_idempotent(self):
        sched = Scheduler()
        ticks = []
        timer = PeriodicTimer(sched, 1.0, lambda: ticks.append(1))
        timer.start()
        timer.start()
        sched.run(until=1.0)
        assert ticks == [1]

    def test_jitter_stays_near_period(self):
        sched = Scheduler(seed=9)
        ticks = []
        timer = PeriodicTimer(sched, 10.0, lambda: ticks.append(sched.now), jitter=0.2)
        timer.start()
        sched.run(until=100.0)
        gaps = [b - a for a, b in zip(ticks, ticks[1:])]
        assert all(8.0 <= g <= 12.0 for g in gaps)
        assert len(ticks) >= 8

    def test_invalid_period_rejected(self):
        with pytest.raises(SimulationError):
            PeriodicTimer(Scheduler(), 0.0, lambda: None)

    def test_invalid_jitter_rejected(self):
        with pytest.raises(SimulationError):
            PeriodicTimer(Scheduler(), 1.0, lambda: None, jitter=1.0)


class TestMetrics:
    def test_summary_values(self):
        s = summarize([1, 2, 3, 4, 5])
        assert s.count == 5
        assert s.mean == 3
        assert s.minimum == 1
        assert s.maximum == 5
        assert s.p50 == 3

    def test_percentile_nearest_rank(self):
        data = sorted([10.0, 20.0, 30.0, 40.0])
        assert percentile(data, 0.0) == 10.0
        assert percentile(data, 0.5) == 20.0
        assert percentile(data, 1.0) == 40.0

    def test_percentile_rejects_empty(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_summarize_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_counter_monotonic(self):
        c = Counter("x")
        c.increment()
        c.increment(2)
        assert c.value == 3
        with pytest.raises(ValueError):
            c.increment(-1)

    def test_registry_reuses_instances(self):
        reg = MetricsRegistry()
        reg.counter("a").increment()
        reg.counter("a").increment()
        assert reg.counters() == {"a": 2}

    def test_registry_summaries_skip_empty(self):
        reg = MetricsRegistry()
        reg.sample("empty")
        reg.sample("full").observe(1.0)
        assert list(reg.summaries()) == ["full"]

    def test_summary_format(self):
        text = summarize([1.0, 2.0]).format("ms")
        assert "mean=1.500 ms" in text


class TestTrace:
    def test_note_queries(self):
        trace = SimTrace()
        trace.note(1.0, "C1", "stable", (1, 0))
        trace.note(2.0, "C2", "fail", "reason")
        trace.note(3.0, "C1", "stable", (2, 0))
        assert len(trace.notes_of_kind("stable")) == 2
        first = trace.first_note("stable", source="C1")
        assert first is not None and first.time == 1.0
        assert trace.first_note("nothing") is None

    def test_message_aggregation(self):
        trace = SimTrace()
        trace.record_message(0.0, 1.0, "A", "B", "SUBMIT", 100)
        trace.record_message(0.0, 1.0, "A", "B", "SUBMIT", 50)
        trace.record_message(0.0, 1.0, "B", "A", "REPLY", 70)
        assert trace.message_count() == 3
        assert trace.message_count("SUBMIT") == 2
        assert trace.total_bytes("SUBMIT") == 150
        assert trace.total_bytes() == 220
