"""Canonical-encoding round trips: serialize → deserialize identity.

The recovery invariant of the storage engine rests on two properties
pinned here: the codec is the identity on every persisted structure
(``decode(encode(x)) == x``), and restoring a state from bytes is
equivalent to ``clone()`` — structurally equal, sharing no mutable
containers — which is exactly what the rollback adversary relies on when
it "recovers" yesterday's state.
"""

from __future__ import annotations

import pytest

from repro.common.encoding import decode, encode
from repro.common.errors import EncodingError
from repro.common.types import BOTTOM, OpKind
from repro.crypto.keystore import KeyStore
from repro.store import (
    commit_from_tuple,
    commit_to_tuple,
    decode_server_state,
    encode_server_state,
    invocation_from_tuple,
    invocation_to_tuple,
    mem_entry_from_tuple,
    mem_entry_to_tuple,
    signed_version_from_tuple,
    signed_version_to_tuple,
    submit_from_tuple,
    submit_to_tuple,
    version_from_tuple,
    version_to_tuple,
)
from repro.store.codec import decode_payload
from repro.ustor.messages import (
    CommitMessage,
    InvocationTuple,
    MemEntry,
    SignedVersion,
    SubmitMessage,
)
from repro.ustor.server import ServerState, apply_commit, apply_submit
from repro.ustor.version import Version


@pytest.fixture(scope="module")
def keystore():
    return KeyStore(3, scheme="hmac")


def _submit(keystore, client=0, t=1, kind=OpKind.WRITE, register=None, piggyback=None):
    register = client if register is None else register
    signer = keystore.signer(client)
    return SubmitMessage(
        timestamp=t,
        invocation=InvocationTuple(
            client=client,
            opcode=kind,
            register=register,
            submit_sig=signer.sign("SUBMIT", kind, register, t),
        ),
        value=b"payload-%d" % t if kind is OpKind.WRITE else None,
        data_sig=signer.sign("DATA", t, b"h"),
        piggyback=piggyback,
    )


def _commit(keystore, client=0, vector=(1, 0, 0)):
    signer = keystore.signer(client)
    version = Version(vector=vector, digests=(b"\x11" * 32, None, None))
    return CommitMessage(
        version=version,
        commit_sig=signer.sign("COMMIT", version.vector, version.digests),
        proof_sig=signer.sign("PROOF", version.digests[client]),
    )


def _populated_state(keystore) -> ServerState:
    """A state exercised through the honest state machine: non-trivial
    MEM, SVER, pending list and proofs."""
    state = ServerState.initial(3)
    apply_submit(state, _submit(keystore, client=0, t=1))
    apply_commit(state, 0, _commit(keystore, client=0, vector=(1, 0, 0)))
    apply_submit(state, _submit(keystore, client=1, t=1))
    apply_submit(state, _submit(keystore, client=2, t=1, kind=OpKind.READ, register=0))
    return state


# --------------------------------------------------------------------- #
# Structure-level round trips
# --------------------------------------------------------------------- #


class TestStructureRoundTrips:
    def test_version(self):
        for version in (
            Version.zero(3),
            Version(vector=(2, 5, 0), digests=(b"\x01" * 32, b"\x02" * 32, None)),
        ):
            assert version_from_tuple(version_to_tuple(version)) == version

    def test_signed_version(self):
        for signed in (
            SignedVersion.zero(2),
            SignedVersion(
                version=Version(vector=(1, 1), digests=(b"\x03" * 32, None)),
                commit_sig=b"\x04" * 64,
            ),
        ):
            assert signed_version_from_tuple(signed_version_to_tuple(signed)) == signed

    def test_mem_entry_including_bottom(self):
        initial = MemEntry.initial()
        assert initial.value is BOTTOM
        restored = mem_entry_from_tuple(mem_entry_to_tuple(initial))
        assert restored == initial
        assert restored.value is BOTTOM  # the singleton survives
        written = MemEntry(timestamp=4, value=b"data", data_sig=b"\x05" * 64)
        assert mem_entry_from_tuple(mem_entry_to_tuple(written)) == written

    def test_invocation(self, keystore):
        invocation = _submit(keystore, client=1, t=3).invocation
        assert invocation_from_tuple(invocation_to_tuple(invocation)) == invocation

    def test_commit_message(self, keystore):
        commit = _commit(keystore)
        assert commit_from_tuple(commit_to_tuple(commit)) == commit

    def test_submit_message_with_and_without_piggyback(self, keystore):
        plain = _submit(keystore, client=0, t=2)
        assert submit_from_tuple(submit_to_tuple(plain)) == plain
        read = _submit(keystore, client=2, t=1, kind=OpKind.READ, register=0)
        assert read.value is None
        assert submit_from_tuple(submit_to_tuple(read)) == read
        piggybacked = _submit(keystore, client=0, t=3, piggyback=_commit(keystore))
        assert submit_from_tuple(submit_to_tuple(piggybacked)) == piggybacked


# --------------------------------------------------------------------- #
# ServerState: encode/decode identity and clone-vs-restore equivalence
# --------------------------------------------------------------------- #


class TestServerStateRoundTrip:
    def test_initial_state(self):
        state = ServerState.initial(4)
        assert decode_server_state(encode_server_state(state)) == state

    def test_populated_state(self, keystore):
        state = _populated_state(keystore)
        assert state.pending and state.commit_index == 0
        assert decode_server_state(encode_server_state(state)) == state

    def test_equal_states_equal_bytes(self, keystore):
        a = _populated_state(keystore)
        b = _populated_state(keystore)
        assert a is not b
        assert encode_server_state(a) == encode_server_state(b)

    def test_restore_equivalent_to_clone(self, keystore):
        """The equivalence the rollback adversary relies on: restoring from
        bytes behaves exactly like ``clone()`` — equal now, independent
        under mutation."""
        state = _populated_state(keystore)
        cloned = state.clone()
        restored = decode_server_state(encode_server_state(state))
        assert restored == cloned == state
        # Mutating the original must not leak into either copy.
        apply_submit(state, _submit(keystore, client=1, t=2))
        assert restored == cloned
        assert restored != state
        # And the restored copy is itself mutable through the state machine.
        apply_submit(restored, _submit(keystore, client=1, t=2))
        assert restored == state

    def test_restored_state_serves_identical_replies(self, keystore):
        state = _populated_state(keystore)
        restored = decode_server_state(encode_server_state(state))
        probe = _submit(keystore, client=1, t=2, kind=OpKind.READ, register=0)
        assert apply_submit(restored, probe) == apply_submit(state, probe)


# --------------------------------------------------------------------- #
# Decoder error paths
# --------------------------------------------------------------------- #


class TestDecoderErrors:
    def test_decode_inverse_on_primitives(self):
        values = (1, -7, 0, True, False, None, b"bytes", "text", (1, (2, b"x")))
        assert decode(encode(*values)) == values

    def test_truncated(self, keystore):
        data = encode_server_state(_populated_state(keystore))
        with pytest.raises(EncodingError, match="truncated"):
            decode(data[:-3], enums=(OpKind,))

    def test_trailing_garbage(self):
        with pytest.raises(EncodingError, match="trailing"):
            decode(encode(1, 2) + b"\x00")

    def test_unknown_tag(self):
        with pytest.raises(EncodingError, match="unknown encoding tag"):
            decode(b"\x05" + (1).to_bytes(8, "big") + b"\x7f")

    def test_enum_requires_registry(self):
        data = encode(OpKind.WRITE)
        assert decode(data, enums=(OpKind,)) == (OpKind.WRITE,)
        with pytest.raises(EncodingError, match="enum"):
            decode(data)

    def test_malformed_shape_rejected(self):
        with pytest.raises(EncodingError, match="ServerState"):
            decode_server_state(encode((1, 2)))

    def test_payload_decode_is_enum_aware(self):
        assert decode_payload(encode((OpKind.READ,))) == ((OpKind.READ,),)
