"""The unified ``repro.api`` facade, exercised across every backend.

The same read/write/failure scenario matrix runs against the FAUST,
lock-step and unchecked backends (plus plain USTOR): the *interface*
stays identical, the *guarantees* differ exactly as the paper says they
must — the tampering scenario is detected by every checked protocol and
sails through the unchecked baseline.
"""

from __future__ import annotations

import pytest

from repro.api import (
    BACKENDS,
    Backend,
    CapabilityError,
    FailureNotification,
    FaustBackend,
    FaustParams,
    LockstepBackend,
    OperationFailed,
    OperationTimeout,
    StabilityNotification,
    SystemConfig,
    UncheckedBackend,
    UstorBackend,
    get_backend,
    open_system,
)
from repro.baselines.lockstep import TamperingLockStepServer
from repro.baselines.unchecked import LyingUncheckedServer
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.types import BOTTOM, OpKind
from repro.store import encode_server_state
from repro.ustor.byzantine import RollbackServer, TamperingServer, UnresponsiveServer

ALL_BACKENDS = [FaustBackend(), UstorBackend(), LockstepBackend(), UncheckedBackend()]
IDS = [b.name for b in ALL_BACKENDS]


def quiet_config(num_clients=2, seed=5, **overrides) -> SystemConfig:
    """A config whose FAUST deployments run no background machinery, so
    the same scripted schedules behave identically across backends."""
    overrides.setdefault(
        "faust", FaustParams(enable_dummy_reads=False, enable_probes=False)
    )
    return SystemConfig(num_clients=num_clients, seed=seed, **overrides)


# --------------------------------------------------------------------- #
# The shared scenario matrix
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", ALL_BACKENDS, ids=IDS)
class TestScenarioMatrix:
    def test_write_read_roundtrip(self, backend):
        system = backend.open_system(quiet_config())
        alice, bob = system.session(0), system.session(1)
        t = alice.write_sync(b"hello")
        assert t >= 1
        value, _ = bob.read_sync(0)
        assert value == b"hello"

    def test_read_unwritten_register_returns_bottom(self, backend):
        system = backend.open_system(quiet_config())
        value, _ = system.session(0).read_sync(1)
        assert value is BOTTOM

    def test_timestamps_monotone_per_client(self, backend):
        system = backend.open_system(quiet_config())
        session = system.session(0)
        stamps = [session.write_sync(b"v%d" % i) for i in range(4)]
        assert stamps == sorted(stamps) and len(set(stamps)) == 4

    def test_pipelined_handles_settle_in_order(self, backend):
        system = backend.open_system(quiet_config())
        session = system.session(0)
        handles = [session.write(b"w%d" % i) for i in range(3)]
        handles.append(session.read(1))
        assert session.outstanding == 4
        session.barrier()
        assert all(h.done() for h in handles)
        assert session.outstanding == 0
        results = [h.result() for h in handles]
        writes = [r.timestamp for r in results[:3]]
        assert writes == sorted(writes)
        assert results[3].kind is OpKind.READ and results[3].value is BOTTOM

    def test_add_done_callback(self, backend):
        system = backend.open_system(quiet_config())
        session = system.session(0)
        seen = []
        handle = session.write(b"x")
        handle.add_done_callback(seen.append)
        assert handle.result().value == b"x"
        assert seen == [handle]
        # Late registration fires immediately.
        handle.add_done_callback(seen.append)
        assert seen == [handle, handle]

    def test_tampering_scenario_matrix(self, backend):
        """The same attack; the guarantee differs per backend."""
        factories = {
            "faust": lambda n, name: TamperingServer(n, 0, name=name),
            "ustor": lambda n, name: TamperingServer(n, 0, name=name),
            "lockstep": lambda n, name: TamperingLockStepServer(n, 0, name=name),
            "unchecked": lambda n, name: LyingUncheckedServer(n, 0, name=name),
        }
        system = backend.open_system(
            quiet_config(seed=7, server_factory=factories[backend.name])
        )
        writer, reader = system.session(0), system.session(1)
        writer.write_sync(b"genuine")
        if backend.capabilities.failure_detection:
            with pytest.raises(OperationFailed):
                reader.read_sync(0)
            assert reader.failed
            assert system.notifications.failure_events()
        else:
            value, _ = reader.read_sync(0)
            assert value.startswith(b"FABRICATED")  # believed blindly
            assert not reader.failed
            assert not system.notifications.failure_events()

    def test_stability_surface_matches_capability(self, backend):
        system = backend.open_system(quiet_config())
        session = system.session(0)
        if backend.capabilities.stability:
            assert session.stability_cut == (0, 0)
        else:
            with pytest.raises(CapabilityError):
                _ = session.stability_cut
            with pytest.raises(CapabilityError):
                session.wait_for_stability(1, timeout=10)


# --------------------------------------------------------------------- #
# OpHandle timeout and error paths
# --------------------------------------------------------------------- #


class TestHandleEdges:
    def test_timeout_names_kind_and_register(self):
        system = FaustBackend().open_system(
            quiet_config(
                seed=5,
                server_factory=lambda n, name: UnresponsiveServer(
                    n, victims={0}, name=name
                ),
            )
        )
        handle = system.session(0).write(b"never-acked")
        with pytest.raises(OperationTimeout) as excinfo:
            handle.result(timeout=30.0)
        message = str(excinfo.value)
        assert "write" in message and "X1" in message and "withholding" in message
        # The timeout error satisfies both legacy contracts.
        assert isinstance(excinfo.value, OperationFailed)
        assert isinstance(excinfo.value, SimulationError)
        assert not handle.done()  # still pending, not failed

    def test_timeout_leaves_other_sessions_usable(self):
        system = FaustBackend().open_system(
            quiet_config(
                seed=6,
                server_factory=lambda n, name: UnresponsiveServer(
                    n, victims={0}, name=name
                ),
            )
        )
        with pytest.raises(OperationTimeout):
            system.session(0).write(b"blocked").result(timeout=20.0)
        assert system.session(1).write_sync(b"fine") >= 1

    def test_failure_rejects_all_outstanding_handles(self):
        system = FaustBackend().open_system(
            quiet_config(
                seed=7,
                server_factory=lambda n, name: TamperingServer(n, 0, name=name),
            )
        )
        system.session(0).write_sync(b"genuine")
        reader = system.session(1)
        first = reader.read(0)
        queued = reader.read(0)  # pipelined behind the poisoned read
        with pytest.raises(OperationFailed):
            first.result()
        assert queued.done()
        assert isinstance(queued.exception(), OperationFailed)
        with pytest.raises(OperationFailed):
            queued.result()

    def test_submitting_on_failed_client_raises(self):
        from repro.common.errors import ProtocolError

        system = FaustBackend().open_system(
            quiet_config(
                seed=8,
                server_factory=lambda n, name: TamperingServer(n, 0, name=name),
            )
        )
        system.session(0).write_sync(b"genuine")
        reader = system.session(1)
        with pytest.raises(OperationFailed):
            reader.read_sync(0)
        with pytest.raises(ProtocolError):
            reader.read(0)

    def test_barrier_timeout(self):
        system = FaustBackend().open_system(
            quiet_config(
                seed=9,
                server_factory=lambda n, name: UnresponsiveServer(
                    n, victims={0}, name=name
                ),
            )
        )
        session = system.session(0)
        session.write(b"stuck")
        with pytest.raises(OperationTimeout, match="barrier"):
            session.barrier(timeout=25.0)


# --------------------------------------------------------------------- #
# The storage/recovery fault axis
# --------------------------------------------------------------------- #

STORAGE_BACKENDS = [FaustBackend(), UstorBackend()]


@pytest.mark.parametrize("backend", STORAGE_BACKENDS, ids=[b.name for b in STORAGE_BACKENDS])
class TestCrashRecoveryMatrix:
    def test_honest_recovery_is_invisible(self, backend):
        """A crash + WAL/snapshot recovery must look like slowness: every
        operation completes, no failure notification, byte-identical state."""
        system = backend.open_system(
            quiet_config(storage="log", server_outages=((5.0, 10.0),))
        )
        alice, bob = system.session(0), system.session(1)
        t1 = alice.write_sync(b"before-outage")
        system.run(until=4.5)
        handle = alice.write(b"during-outage")  # held while the server is down
        t2 = handle.result(timeout=100.0).timestamp
        assert (t1, t2) == (1, 2)
        value, _ = bob.read_sync(0)
        assert value == b"during-outage"
        server = system.server
        assert server.restarts == 1
        assert encode_server_state(server.last_pre_crash_state) == (
            encode_server_state(server.last_recovery_state)
        )
        assert not system.notifications.failure_events()
        assert not alice.failed and not bob.failed

    def test_rollback_adversary_raises_failure(self, backend):
        """Recovering from a stale snapshot forks clients into the past —
        and must be detected, unlike the honest recovery above."""
        system = backend.open_system(
            quiet_config(
                server_factory=lambda n, name: RollbackServer(
                    n,
                    snapshot_after_submits=1,
                    rollback_after_submits=3,
                    outage=2.0,
                    name=name,
                )
            )
        )
        alice, bob = system.session(0), system.session(1)
        for k in range(3):
            alice.write_sync(b"w%d" % k)
        system.run(until=system.now + 5.0)  # the dishonest restart happens
        with pytest.raises(OperationFailed):
            bob.read_sync(0)
        assert bob.failed
        assert system.notifications.failure_events()
        assert system.server.restarts == 1

    def test_storage_engine_instrumented(self, backend):
        system = backend.open_system(quiet_config(storage="log"))
        system.session(0).write_sync(b"logged")
        engine = system.server.engine
        assert engine.durable and engine.wal_appends >= 1


class TestStorageConfig:
    def test_baselines_reject_storage_knobs(self):
        for backend in (LockstepBackend(), UncheckedBackend()):
            with pytest.raises(ConfigurationError, match="storage"):
                backend.open_system(quiet_config(storage="log"))
            with pytest.raises(ConfigurationError, match="storage"):
                backend.open_system(quiet_config(server_outages=((1.0, 1.0),)))

    def test_outage_windows_validated(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(num_clients=2, server_outages=((1.0, 0.0),))
        with pytest.raises(ConfigurationError):
            SystemConfig(num_clients=2, server_outages=((1.0,),))
        with pytest.raises(ConfigurationError):
            SystemConfig(num_clients=2, server_outages=((-5.0, 10.0),))
        with pytest.raises(ConfigurationError, match="overlap"):
            # The nested window's restart would cut the outer outage short.
            SystemConfig(num_clients=2, server_outages=((10.0, 30.0), (20.0, 5.0)))
        SystemConfig(num_clients=2, server_outages=((10.0, 5.0), (15.0, 5.0)))

    def test_unsorted_back_to_back_outages_both_happen(self):
        """Windows given out of order must still schedule restart-then-crash
        at the shared boundary instant: the server stays down over [10, 20)
        and both recovery cycles occur."""
        system = FaustBackend().open_system(
            quiet_config(storage="log", server_outages=((15.0, 5.0), (10.0, 5.0)))
        )
        system.run(until=17.0)
        assert system.server.crashed  # mid second window
        system.run(until=30.0)
        assert not system.server.crashed
        assert system.server.restarts == 2


# --------------------------------------------------------------------- #
# Notification subscriptions
# --------------------------------------------------------------------- #


class TestNotifications:
    def _stability_system(self, seed=11):
        return FaustBackend().open_system(
            SystemConfig(
                num_clients=2,
                seed=seed,
                faust=FaustParams(dummy_read_period=2.0),
            )
        )

    def test_stability_events_ordered_and_monotone(self):
        system = self._stability_system()
        sub = system.notifications.subscribe(kinds=StabilityNotification)
        session = system.session(0)
        t = session.write_sync(b"document")
        assert session.wait_for_stability(t, timeout=2_000)
        events = sub.events
        assert events, "stability must produce notifications"
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        times = [e.time for e in events]
        assert times == sorted(times)
        # Each client's cut only ever grows, component-wise.
        last: dict[int, tuple[int, ...]] = {}
        for event in events:
            previous = last.get(event.client)
            if previous is not None:
                assert all(a >= b for a, b in zip(event.cut, previous))
            last[event.client] = event.cut

    def test_client_filter_and_unsubscribe(self):
        system = self._stability_system(seed=12)
        only_alice = system.notifications.subscribe(
            kinds=StabilityNotification, clients=[0]
        )
        everything = system.notifications.subscribe()
        session = system.session(0)
        t = session.write_sync(b"x")
        session.wait_for_stability(t, timeout=2_000)
        assert only_alice.events and all(e.client == 0 for e in only_alice.events)
        count = len(everything.events)
        assert count >= len(only_alice.events)
        everything.unsubscribe()
        t2 = session.write_sync(b"y")
        session.wait_for_stability(t2, timeout=2_000)
        assert len(everything.events) == count  # frozen after unsubscribe
        assert len(system.notifications.history) > count

    def test_callback_delivery_matches_events(self):
        system = self._stability_system(seed=13)
        seen = []
        system.notifications.subscribe(seen.append, kinds=StabilityNotification)
        session = system.session(0)
        t = session.write_sync(b"z")
        session.wait_for_stability(t, timeout=2_000)
        assert seen == system.notifications.stability_events()

    def test_failure_events_reach_every_client(self):
        from repro.workloads.scenarios import split_brain_scenario

        result = split_brain_scenario(num_clients=4, seed=11, run_for=2_000.0)
        events = result.system.notifications.failure_events()
        assert {e.client for e in events} == {0, 1, 2, 3}
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)
        for event in events:
            assert isinstance(event, FailureNotification) and event.reason


# --------------------------------------------------------------------- #
# Backend registry and config validation
# --------------------------------------------------------------------- #


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(BACKENDS) == {"faust", "ustor", "lockstep", "unchecked", "cluster"}
        for name, backend in BACKENDS.items():
            assert isinstance(backend, Backend)
            assert get_backend(name) is backend

    def test_get_backend_passthrough_and_unknown(self):
        mine = FaustBackend()
        assert get_backend(mine) is mine
        with pytest.raises(ConfigurationError):
            get_backend("sundr")

    def test_open_system_by_name(self):
        system = open_system(quiet_config(), backend="lockstep")
        assert system.backend_name == "lockstep"
        assert not system.capabilities.wait_free

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(num_clients=0)
        with pytest.raises(ConfigurationError):
            SystemConfig(num_clients=1, default_timeout=0.0)

    def test_require_capability(self):
        system = open_system(quiet_config(), backend="unchecked")
        system.require("timestamps")
        with pytest.raises(CapabilityError):
            system.require("stability")


# --------------------------------------------------------------------- #
# The deprecated shim
# --------------------------------------------------------------------- #


class TestFaustServiceShim:
    def test_shim_warns_and_forwards(self):
        from repro.faust.service import FaustService

        system = FaustBackend().open_system(quiet_config(seed=5))
        with pytest.warns(DeprecationWarning):
            service = FaustService(system, 0, timeout=100.0)
        t = service.write(b"via-shim")
        assert t == 1
        value, _ = service.read(0)
        assert value == b"via-shim"
        assert service.session.client is system.clients[0]
