"""FAUST client edge cases: queueing, dummy reads, pause/resume, ablation."""

from __future__ import annotations

import pytest

from repro.common.errors import ProtocolError
from repro.faust.ablation import VectorOnlyTracker, ablate_system, vector_comparable
from repro.faust.messages import ProbeMessage, VersionMessage
from repro.ustor.version import Version
from repro.workloads.runner import SystemBuilder

from test_faust_stability import chained_versions


class TestOperationQueueing:
    def test_user_ops_queue_behind_each_other(self):
        system = SystemBuilder(num_clients=2, seed=1).build_faust()
        client = system.clients[0]
        results = []
        client.write(b"first", results.append)
        client.write(b"second", results.append)  # queued, not an error
        client.read(0, results.append)
        assert system.run_until(lambda: len(results) == 3, timeout=200)
        assert [r.timestamp for r in results] == sorted(r.timestamp for r in results)
        assert results[2].value == b"second"

    def test_dummy_read_defers_to_queued_user_ops(self):
        system = SystemBuilder(num_clients=2, seed=2).build_faust(dummy_read_period=0.5)
        client = system.clients[0]
        system.run(until=5.0)  # several dummy reads happen
        issued_before = client.dummy_reads_issued
        assert issued_before > 0
        # While a user op is queued/in flight, no dummy reads are issued.
        results = []
        client.write(b"user-op", results.append)
        assert system.run_until(lambda: bool(results), timeout=50)

    def test_idle_property(self):
        system = SystemBuilder(num_clients=2, seed=3).build_faust(
            enable_dummy_reads=False, enable_probes=False
        )
        client = system.clients[0]
        assert client.idle
        client.write(b"x", lambda o: None)
        assert not client.idle
        system.run(until=50)
        assert client.idle


class TestPauseResume:
    def test_paused_client_issues_no_dummy_reads(self):
        system = SystemBuilder(num_clients=2, seed=4).build_faust(dummy_read_period=1.0)
        client = system.clients[0]
        system.run(until=5.0)
        client.pause()
        before = client.dummy_reads_issued
        system.run(until=20.0)
        assert client.dummy_reads_issued == before
        client.resume()
        system.run(until=30.0)
        assert client.dummy_reads_issued > before

    def test_enable_background_late(self):
        system = SystemBuilder(num_clients=2, seed=5).build_faust(
            enable_dummy_reads=False, enable_probes=False
        )
        client = system.clients[0]
        system.run(until=20.0)
        assert client.dummy_reads_issued == 0
        client.enable_background(dummy_reads=True, probes=True)
        system.run(until=60.0)
        assert client.dummy_reads_issued > 0


class TestProbeProtocol:
    def test_probe_answered_with_max_version(self):
        system = SystemBuilder(num_clients=2, seed=6).build_faust(
            enable_dummy_reads=False, enable_probes=False
        )
        c0, c1 = system.clients
        box = []
        c0.write(b"x", box.append)
        assert system.run_until(lambda: bool(box), timeout=50)
        # Deliver a probe from C2 by hand.
        system.offline.send(c1.name, c0.name, ProbeMessage(sender=1))
        system.run(until=system.now + 50)
        # C2 must now know C1's version and have a stability entry for it.
        assert c1.tracker.versions[0].vector[0] == 1

    def test_version_message_updates_tracker(self):
        system = SystemBuilder(num_clients=2, seed=7).build_faust(
            enable_dummy_reads=False, enable_probes=False
        )
        c0 = system.clients[0]
        version = chained_versions([1], 2)[0]
        c0.on_message("C2", VersionMessage(sender=1, version=version))
        assert c0.tracker.versions[1] == version

    def test_failed_client_rejects_new_operations(self):
        system = SystemBuilder(num_clients=2, seed=8).build_faust(
            enable_dummy_reads=False, enable_probes=False
        )
        c0 = system.clients[0]
        fork_a = chained_versions([0, 0], 2)[-1]
        fork_b = chained_versions([1, 1], 2)[-1]
        c0.on_message("C2", VersionMessage(sender=1, version=fork_a))
        c0.on_message("C2", VersionMessage(sender=1, version=fork_b))
        assert c0.faust_failed
        with pytest.raises(ProtocolError):
            c0.write(b"too-late")


class TestAblation:
    def test_vector_comparability(self):
        a = Version((1, 0), (b"x" * 32, None))
        b = Version((1, 1), (b"y" * 32, b"z" * 32))
        # Digest-aware order rejects (digests differ at equal entry 0);
        # vector-only order accepts.
        assert not a.le(b)
        assert vector_comparable(a, b)

    def test_vector_only_tracker_blind_to_digest_divergence(self):
        full = chained_versions([0, 1], 2)
        diverged = chained_versions([1, 0], 2)
        tracker = VectorOnlyTracker(0, 2)
        tracker.absorb(0, full[-1], now=1.0)
        outcome = tracker.absorb(1, diverged[-1], now=2.0)
        assert not outcome.incomparable  # the ablated check misses it

    def test_ablate_system_swaps_trackers(self):
        system = SystemBuilder(num_clients=2, seed=9).build_faust()
        ablate_system(system)
        assert all(isinstance(c.tracker, VectorOnlyTracker) for c in system.clients)

    def test_ablated_system_still_works_honestly(self):
        system = SystemBuilder(num_clients=2, seed=10).build_faust(dummy_read_period=2.0)
        ablate_system(system)
        box = []
        system.clients[0].write(b"v", box.append)
        assert system.run_until(lambda: bool(box), timeout=100)
        t = box[0].timestamp
        assert system.run_until(
            lambda: system.clients[0].tracker.stable_timestamp_for_all() >= t,
            timeout=1_000,
        )
        assert not any(c.faust_failed for c in system.clients)
