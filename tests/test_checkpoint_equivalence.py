"""Checkpointing is an optimization, not a semantic.

With ``SystemConfig(checkpoint=...)`` clients co-sign checkpoints, the
server truncates its pending list, and the recorder/checkers compact —
but the protocol's observable behaviour must not move: identical
operation outcomes, histories, final versions (vectors AND digest
chains), checker verdicts and stability notification counts as the same
seeded run without checkpointing, on every backend that supports the
knob (faust, cluster, replicated cluster).  Rollback across a checkpoint
must still be detected — the whole point of authenticated cuts is that
pruning history does not prune evidence.  Backends that cannot honour
the knob reject it loudly.
"""

from __future__ import annotations

import pytest

from repro.api import CheckpointPolicy, FaustParams, SystemConfig, open_system
from repro.common.errors import ConfigurationError
from repro.consistency import (
    attach_incremental_checkers,
    check_causal_consistency,
    check_linearizability,
)
from repro.faust.validator import validate_fail_aware_run
from repro.sim.network import FixedLatency
from repro.ustor.byzantine import RollbackServer
from repro.workloads.generator import unique_value

#: interval=16 with 4 clients * 2 ops * 24 phases gives a dozen installs.
POLICY = CheckpointPolicy(interval=16, keep_tail=2)

BACKENDS = ("faust", "cluster", "replica")


def _policy(backend: str) -> CheckpointPolicy:
    """Sharded deployments see half the ops per shard system, so the
    interval halves to yield a comparable number of installs."""
    if backend == "faust":
        return POLICY
    return CheckpointPolicy(interval=8, keep_tail=2)


def _config(backend: str, seed: int, checkpoint, **overrides) -> SystemConfig:
    return SystemConfig(
        num_clients=4,
        seed=seed,
        latency=FixedLatency(1.0),
        offline_latency=FixedLatency(0.5),
        storage="log",
        checkpoint=checkpoint,
        shards=2 if backend == "cluster" else 1,
        replicas=2 if backend == "replica" else 1,
        # Dummy reads stay off (they would touch the server and change
        # the byte-level schedule between runs); probes are offline-only
        # VERSION gossip and are needed on sharded deployments, where a
        # client can never observe a peer's version for a shard that
        # holds none of the peer's registers.
        faust=FaustParams(
            enable_dummy_reads=False,
            enable_probes=True,
            probe_check_period=2.0,
        ),
        **overrides,
    )


def _open(backend: str, seed: int, checkpoint, **overrides):
    name = "cluster" if backend == "replica" else backend
    system = open_system(
        _config(backend, seed, checkpoint, **overrides), backend=name
    )
    recorders = (
        [shard.recorder for shard in system.shards]
        if backend != "faust"
        else [system.recorder]
    )
    incremental = [attach_incremental_checkers(rec) for rec in recorders]
    return system, recorders, incremental


def _instances(system, backend: str):
    if backend == "faust":
        return list(system.clients)
    return [inst for proxy in system.clients for inst in proxy.instances]


def _run_phases(backend: str, seed: int, checkpoint, phases: int = 24):
    """Each phase: every client writes, then reads round-robin.

    The rotating read target makes every client's version visible to
    every other client within a few phases, which is what advances the
    all-clients stability cut (dummy reads and probes are off to keep
    runs byte-comparable).
    """
    system, recorders, incremental = _open(backend, seed, checkpoint)
    sessions = system.sessions()
    handles = []
    for phase in range(phases):
        for client, session in enumerate(sessions):
            handles.append(session.write(unique_value(client, phase, 20)))
            handles.append(session.read((client + phase) % len(sessions)))
            system.run(until=system.now + 0.013)  # stagger: no ties
        for session in sessions:
            session.barrier(timeout=50_000)
        system.run(until=system.now + 0.1)
    system.run(until=system.now + 20.0)  # let shares in flight settle
    return system, recorders, incremental, handles


def _collect(system, backend: str, handles, recorders, incremental):
    outcomes = [
        (h.kind, h.register,
         bytes(h.result().value) if isinstance(h.result().value, bytes)
         else h.result().value,
         h.result().timestamp)
        for h in handles
    ]
    histories = (
        [rec.history().complete() for rec in recorders]
    )
    per_client_ops = [
        [
            (op.client, op.kind, op.register,
             bytes(op.value) if isinstance(op.value, bytes) else op.value,
             op.timestamp, round(op.invoked_at, 6), round(op.responded_at, 6))
            for client in history.clients()
            for op in history.restrict_to_client(client)
        ]
        for history in histories
    ]
    instances = _instances(system, backend)
    versions = [(tuple(i.version.vector), i.version.digests) for i in instances]
    stable_totals = [i.stable_notifications_total for i in instances]
    verdicts = [
        (check_linearizability(history).ok, check_causal_consistency(history).ok)
        for history in histories
    ]
    incremental_ok = [
        {name: checker.result().ok for name, checker in attached.items()}
        for attached in incremental
    ]
    return {
        "outcomes": outcomes,
        "ops": per_client_ops,
        "versions": versions,
        "stable_totals": stable_totals,
        "verdicts": verdicts,
        "incremental": incremental_ok,
    }


@pytest.mark.parametrize("backend", BACKENDS)
def test_checkpointing_on_equals_off(backend):
    """Same seed, checkpointing on vs off: identical observable run."""
    seed = 2026
    sys_off, rec_off, inc_off, handles_off = _run_phases(backend, seed, None)
    off = _collect(sys_off, backend, handles_off, rec_off, inc_off)
    sys_on, rec_on, inc_on, handles_on = _run_phases(
        backend, seed, _policy(backend)
    )
    on = _collect(sys_on, backend, handles_on, rec_on, inc_on)

    # The off-run history is complete; the on-run history was compacted,
    # so the retained suffix must be a suffix of the off-run's ops.
    for shard_on, shard_off in zip(on["ops"], off["ops"]):
        remaining = set(map(tuple, shard_on))
        assert remaining <= set(map(tuple, shard_off))
    assert on["outcomes"] == off["outcomes"]
    assert on["versions"] == off["versions"]
    assert on["stable_totals"] == off["stable_totals"]
    assert on["verdicts"] == off["verdicts"]
    assert all(ok for run in (on, off)
               for shard in run["incremental"] for ok in shard.values())
    assert all(ok for shard in on["verdicts"] for ok in shard)

    # ...and the bounded-state machinery actually ran: checkpoints were
    # installed by every client and history really was compacted.
    instances = _instances(sys_on, backend)
    installs = [i.checkpoint_manager.installed.seq for i in instances]
    assert min(installs) >= (3 if backend == "faust" else 2), installs
    assert all(rec.compacted_ops > 0 for rec in rec_on)
    assert sum(len(rec.history()) for rec in rec_on) < sum(
        len(rec.history()) for rec in rec_off
    )
    assert not any(getattr(i, "faust_failed", False) for i in instances)


def test_checkpointed_run_passes_definition5():
    """The full fail-aware validator accepts a checkpointed (compacted)
    run against a correct server — Definition 5 end to end."""
    system, _, _, _ = _run_phases("faust", 7, POLICY)
    report = validate_fail_aware_run(system.raw, server_correct=True)
    assert report.ok, report.render()


def test_server_truncates_and_compacts_behind_checkpoints():
    system, _, _, _ = _run_phases("faust", 11, POLICY)
    server = system.server
    assert server.checkpoints_handled >= 3
    assert server.last_checkpoint_seq == server.checkpoints_handled
    # Every install forced a snapshot + WAL truncation, so the live WAL
    # only holds records since the last checkpoint.
    engine = server.engine
    assert engine.snapshots_taken >= server.checkpoints_handled
    assert engine.records_since_checkpoint < 3 * POLICY.interval


@pytest.mark.parametrize("checkpoint", (None, POLICY))
def test_rollback_across_checkpoint_is_detected(checkpoint):
    """A server that 'recovers' from a pre-checkpoint snapshot forks its
    clients into the folded past.  Pruned history must not mean pruned
    evidence: detection fires exactly as without checkpointing."""
    seed = 4242
    # Snapshot early, roll back late: by the rollback point the on-run
    # has installed checkpoints PAST the snapshot, so the replayed state
    # predates the latest authenticated cut.  The crash lands on the
    # FIRST submit of a phase with an outage shorter than the commit
    # round-trip: the phase's remaining submits are held and answered
    # from the stale state before any client's COMMIT can quietly repair
    # the server's version table (a longer outage lets held COMMITs mask
    # the rollback entirely — the attack fizzles, nothing stale is ever
    # served, and there is correctly nothing to detect).
    factory = lambda n, name: RollbackServer(  # noqa: E731
        n,
        snapshot_after_submits=12,
        rollback_after_submits=113,
        outage=1.0,
        name=name,
    )
    sys_evil, _rec_evil, _inc = _open(
        "faust", seed, checkpoint, server_factory=factory
    )
    sessions = sys_evil.sessions()
    failed_at = None
    for phase in range(24):
        for client, session in enumerate(sessions):
            try:
                session.write(unique_value(client, phase, 20))
                session.read((client + phase) % len(sessions))
            except Exception:  # noqa: BLE001 - failed sessions refuse ops
                pass
            sys_evil.run(until=sys_evil.now + 0.013)
        sys_evil.run(until=sys_evil.now + 8.0)
        if sys_evil.notifications.failure_events():
            failed_at = phase
            break
    assert failed_at is not None, "rollback went undetected"
    assert sys_evil.server.restarts == 1
    failed = [c for c in sys_evil.clients if getattr(c, "faust_failed", False)]
    # Detection is system-wide and identical to the checkpoint-free run:
    # every client fails, in the same phase (14, right after the crash).
    assert len(failed) == len(sys_evil.clients)
    assert failed_at == 14
    if checkpoint is not None:
        # The rollback really did cross installed checkpoints: the
        # replayed snapshot (12 submits old) predates the latest
        # authenticated cut every client holds.
        installs = [
            c.checkpoint_manager.installed.seq for c in sys_evil.clients
        ]
        assert min(installs) >= 1, installs
        assert sum(
            max(c.checkpoint_manager.installed.cut for c in sys_evil.clients)
        ) > 12


# --------------------------------------------------------------------- #
# Loud rejection everywhere the knob cannot be honoured
# --------------------------------------------------------------------- #


def test_checkpoint_rejected_on_non_faust_backends():
    for backend in ("ustor", "lockstep", "unchecked"):
        with pytest.raises(ConfigurationError, match="checkpoint"):
            open_system(
                SystemConfig(num_clients=2, checkpoint=True), backend=backend
            )


def test_checkpoint_rejected_on_ustor_sharded_cluster():
    with pytest.raises(ConfigurationError, match="checkpoint"):
        open_system(
            SystemConfig(
                num_clients=2, shards=2, shard_protocol="ustor",
                checkpoint=True,
            ),
            backend="cluster",
        )


def test_checkpoint_rejected_on_tcp_transport():
    with pytest.raises(ConfigurationError):
        SystemConfig(
            num_clients=2,
            transport="tcp",
            endpoints=("127.0.0.1:9999",),
            checkpoint=True,
        )


def test_checkpoint_knob_coercion():
    assert SystemConfig(num_clients=2).checkpoint is None
    assert isinstance(
        SystemConfig(num_clients=2, checkpoint=True).checkpoint,
        CheckpointPolicy,
    )
    assert SystemConfig(num_clients=2, checkpoint=False).checkpoint is None
    custom = CheckpointPolicy(interval=5, keep_tail=1, prune_history=False)
    assert SystemConfig(num_clients=2, checkpoint=custom).checkpoint is custom
    with pytest.raises(ConfigurationError):
        SystemConfig(num_clients=2, checkpoint="soon")
