"""The discrete-event scheduler: ordering, determinism, bounded runs."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.sim.scheduler import Scheduler


class TestOrdering:
    def test_time_order(self):
        sched = Scheduler()
        fired = []
        sched.schedule(2.0, fired.append, "late")
        sched.schedule(1.0, fired.append, "early")
        sched.run()
        assert fired == ["early", "late"]

    def test_fifo_tie_break(self):
        sched = Scheduler()
        fired = []
        for tag in range(5):
            sched.schedule(1.0, fired.append, tag)
        sched.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        sched = Scheduler()
        seen = []
        sched.schedule(3.5, lambda: seen.append(sched.now))
        sched.run()
        assert seen == [3.5]
        assert sched.now == 3.5

    def test_nested_scheduling(self):
        sched = Scheduler()
        fired = []

        def outer():
            fired.append("outer")
            sched.schedule(1.0, fired.append, "inner")

        sched.schedule(1.0, outer)
        sched.run()
        assert fired == ["outer", "inner"]
        assert sched.now == 2.0

    def test_zero_delay_runs_at_current_time(self):
        sched = Scheduler()
        times = []
        sched.schedule(5.0, lambda: sched.schedule(0.0, lambda: times.append(sched.now)))
        sched.run()
        assert times == [5.0]


class TestBounds:
    def test_run_until_time_bound_inclusive(self):
        sched = Scheduler()
        fired = []
        sched.schedule(1.0, fired.append, 1)
        sched.schedule(2.0, fired.append, 2)
        sched.schedule(3.0, fired.append, 3)
        sched.run(until=2.0)
        assert fired == [1, 2]
        assert sched.now == 2.0
        sched.run()
        assert fired == [1, 2, 3]

    def test_run_until_advances_clock_to_bound(self):
        sched = Scheduler()
        sched.schedule(10.0, lambda: None)
        sched.run(until=4.0)
        assert sched.now == 4.0

    def test_max_events(self):
        sched = Scheduler()
        fired = []
        for i in range(10):
            sched.schedule(float(i), fired.append, i)
        assert sched.run(max_events=3) == 3
        assert fired == [0, 1, 2]

    def test_run_until_predicate(self):
        sched = Scheduler()
        fired = []
        for i in range(10):
            sched.schedule(float(i + 1), fired.append, i)
        assert sched.run_until(lambda: len(fired) >= 4)
        assert len(fired) == 4

    def test_run_until_predicate_timeout(self):
        sched = Scheduler()
        sched.schedule(100.0, lambda: None)
        assert not sched.run_until(lambda: False, timeout=5.0)
        assert sched.now == 5.0

    def test_run_until_true_immediately(self):
        sched = Scheduler()
        assert sched.run_until(lambda: True)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sched = Scheduler()
        fired = []
        handle = sched.schedule(1.0, fired.append, "x")
        handle.cancel()
        sched.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sched = Scheduler()
        handle = sched.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_pending_excludes_cancelled(self):
        sched = Scheduler()
        keep = sched.schedule(1.0, lambda: None)
        drop = sched.schedule(2.0, lambda: None)
        drop.cancel()
        assert sched.pending == 1
        assert not keep.cancelled


class TestErrors:
    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Scheduler().schedule(-1.0, lambda: None)

    def test_scheduling_into_past_rejected(self):
        sched = Scheduler()
        sched.schedule(5.0, lambda: None)
        sched.run()
        with pytest.raises(SimulationError):
            sched.schedule_at(1.0, lambda: None)


class TestDeterminism:
    def test_rng_is_seeded(self):
        a = Scheduler(seed=42).rng.random()
        b = Scheduler(seed=42).rng.random()
        assert a == b

    def test_different_seeds_differ(self):
        assert Scheduler(seed=1).rng.random() != Scheduler(seed=2).rng.random()

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=30))
    def test_any_delay_set_fires_in_order(self, delays):
        sched = Scheduler()
        fired = []
        for delay in delays:
            sched.schedule(delay, lambda d=delay: fired.append(d))
        sched.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    def test_events_processed_counter(self):
        sched = Scheduler()
        for i in range(7):
            sched.schedule(float(i), lambda: None)
        sched.run()
        assert sched.events_processed == 7
