"""Identifiers, BOTTOM, and name rendering."""

from __future__ import annotations

import pickle

from repro.common.types import (
    BOTTOM,
    Bottom,
    OpKind,
    client_name,
    parse_client_name,
    register_name,
)


class TestBottom:
    def test_singleton(self):
        assert Bottom() is BOTTOM

    def test_repr(self):
        assert repr(BOTTOM) == "BOTTOM"

    def test_pickle_preserves_identity(self):
        assert pickle.loads(pickle.dumps(BOTTOM)) is BOTTOM

    def test_not_equal_to_bytes(self):
        assert BOTTOM != b""
        assert BOTTOM != b"BOTTOM"

    def test_outside_value_domain(self):
        assert not isinstance(BOTTOM, bytes)


class TestNames:
    def test_client_name_is_one_based(self):
        assert client_name(0) == "C1"
        assert client_name(9) == "C10"

    def test_register_name_is_one_based(self):
        assert register_name(0) == "X1"

    def test_parse_roundtrip(self):
        for i in (0, 1, 7, 42):
            assert parse_client_name(client_name(i)) == i

    def test_parse_rejects_server(self):
        assert parse_client_name("S") is None

    def test_parse_rejects_garbage(self):
        assert parse_client_name("C") is None
        assert parse_client_name("Cx") is None
        assert parse_client_name("C0") is None  # 1-based names start at C1
        assert parse_client_name("") is None


class TestOpKind:
    def test_two_kinds(self):
        assert {OpKind.READ, OpKind.WRITE} == set(OpKind)

    def test_str(self):
        assert str(OpKind.READ) == "READ"
