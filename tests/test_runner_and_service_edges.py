"""System-runner and blocking-session edge cases (via the api facade)."""

from __future__ import annotations

import pytest

from repro.api import Session
from repro.common.errors import ConfigurationError, SimulationError
from repro.ustor.byzantine import UnresponsiveServer
from repro.workloads.runner import StorageSystem, SystemBuilder


class TestSystemBuilder:
    def test_rejects_zero_clients(self):
        with pytest.raises(ConfigurationError):
            SystemBuilder(num_clients=0)

    def test_client_lookup(self):
        system = SystemBuilder(num_clients=2, seed=1).build()
        assert system.client(1) is system.clients[1]
        assert system.client(1).name == "C2"

    def test_now_tracks_scheduler(self):
        system = SystemBuilder(num_clients=1, seed=1).build()
        system.run(until=42.0)
        assert system.now == 42.0

    def test_ed25519_deployment_works(self):
        system = SystemBuilder(num_clients=2, seed=1, scheme="ed25519").build()
        box = []
        system.clients[0].write(b"real-crypto", box.append)
        assert system.run_until(lambda: bool(box), timeout=50)

    def test_run_until_quiescent(self):
        system = SystemBuilder(num_clients=2, seed=2).build()
        system.clients[0].write(b"x", lambda o: None)
        system.clients[1].read(0, lambda o: None)
        system.run_until_quiescent(timeout=100)
        assert not any(c.busy for c in system.clients)

    def test_run_until_quiescent_honors_check_every(self):
        # The poll cadence throttles the O(clients) idle scan: with a
        # coarse cadence the system may overrun the quiescent instant by
        # up to check_every, never by more.
        system = SystemBuilder(num_clients=2, seed=2).build()
        system.clients[0].write(b"x", lambda o: None)
        system.run_until_quiescent(check_every=7.0, timeout=100)
        assert not any(c.busy for c in system.clients)
        assert system.now <= 2.0 + 7.0  # one op RTT + at most one cadence

    def test_run_until_quiescent_rejects_bad_cadence(self):
        system = SystemBuilder(num_clients=1, seed=2).build()
        with pytest.raises(ConfigurationError):
            system.run_until_quiescent(check_every=0)

    def test_run_until_quiescent_skips_crashed(self):
        system = SystemBuilder(num_clients=2, seed=3).build()
        system.clients[0].write(b"x", lambda o: None)
        system.clients[0].crash()  # pending op will never finish
        system.run_until_quiescent(timeout=20)
        # Returns (crashed clients are exempt) rather than spinning.
        assert system.now <= 25

    def test_crash_note_recorded(self):
        system = SystemBuilder(num_clients=2, seed=4).build()
        system.crash_client_at(0, time=5.0)
        system.run(until=10.0)
        assert system.trace.first_note("crash", source="C1") is not None


class TestSessionTimeouts:
    def test_withheld_reply_times_out(self):
        system = SystemBuilder(
            num_clients=2,
            seed=5,
            server_factory=lambda n, name: UnresponsiveServer(n, victims={0}, name=name),
        ).build_faust(enable_dummy_reads=False, enable_probes=False)
        session = Session(system, 0, timeout=30.0)
        with pytest.raises(SimulationError, match="withholding"):
            session.write_sync(b"never-acked")

    def test_other_clients_unaffected_by_timeout(self):
        system = SystemBuilder(
            num_clients=2,
            seed=6,
            server_factory=lambda n, name: UnresponsiveServer(n, victims={0}, name=name),
        ).build_faust(enable_dummy_reads=False, enable_probes=False)
        victim = Session(system, 0, timeout=20.0)
        healthy = Session(system, 1)
        with pytest.raises(SimulationError):
            victim.write_sync(b"blocked")
        t = healthy.write_sync(b"fine")
        assert t >= 1

    def test_wait_for_stability_times_out_cleanly(self):
        system = SystemBuilder(num_clients=2, seed=7).build_faust(
            enable_dummy_reads=False, enable_probes=False
        )
        session = Session(system, 0)
        t = session.write_sync(b"x")
        # With no propagation machinery at all, stability w.r.t. the other
        # client cannot be reached; the call must return False, not hang.
        assert session.wait_for_stability(t, timeout=50.0) is False
