"""Unit tests for the bounded-state extension's moving parts.

Covers the checkpoint co-signing protocol (:mod:`repro.faust.checkpoint`)
in isolation — proposals, countersignatures, installs, the hash chain,
and every forged/conflicting-share failure path — plus the server's
defensive ``apply_checkpoint`` truncation, the WAL ``K`` record round
trip, history-recorder compaction, and the checkpoint-base plumbing
through the offline and incremental checkers.  The end-to-end properties
(checkpointing on vs off over whole runs) live in
``test_checkpoint_equivalence.py``.
"""

from __future__ import annotations

import pytest

from repro.common.errors import (
    CheckerError,
    ConfigurationError,
    HistoryError,
    ProtocolError,
)
from repro.common.types import BOTTOM, OpKind
from repro.consistency.incremental import (
    IncrementalCausalChecker,
    IncrementalLinearizabilityChecker,
)
from repro.consistency.linearizability import (
    check_linearizability,
    check_linearizability_exhaustive,
)
from repro.crypto.keystore import KeyStore
from repro.faust.checkpoint import (
    Checkpoint,
    CheckpointManager,
    CheckpointPolicy,
    chain_digest,
)
from repro.faust.messages import CheckpointShareMessage
from repro.history.recorder import HistoryRecorder
from repro.store.codec import decode_server_state, encode_server_state
from repro.store.engine import LogStructuredEngine
from repro.ustor.messages import InvocationTuple, SubmitMessage
from repro.ustor.server import apply_checkpoint, apply_commit, apply_submit
from repro.ustor.version import Version

from histbuild import h, r, w

# --------------------------------------------------------------------- #
# Policy and chain basics
# --------------------------------------------------------------------- #


def test_policy_validation():
    with pytest.raises(ConfigurationError):
        CheckpointPolicy(interval=0)
    with pytest.raises(ConfigurationError):
        CheckpointPolicy(keep_tail=0)
    assert CheckpointPolicy().interval == 32


def test_genesis_and_chain_digest():
    genesis = Checkpoint.genesis(3)
    assert genesis.seq == 0
    assert genesis.cut == (0, 0, 0)
    assert genesis.digest == chain_digest(0, (0, 0, 0), b"")
    # The digest binds sequence, cut and ancestry.
    child = chain_digest(1, (2, 1, 1), genesis.digest)
    assert child != chain_digest(2, (2, 1, 1), genesis.digest)
    assert child != chain_digest(1, (2, 1, 2), genesis.digest)
    assert child != chain_digest(1, (2, 1, 1), b"other")


# --------------------------------------------------------------------- #
# The co-signing protocol, wired directly (no simulator)
# --------------------------------------------------------------------- #


class _Net:
    """N managers with instantaneous share broadcast."""

    def __init__(self, n: int = 3, interval: int = 4):
        self.keystore = KeyStore(n)
        self.installed: dict[int, list[Checkpoint]] = {i: [] for i in range(n)}
        self.failures: dict[int, str] = {}
        self.server_messages: list = []
        self.partitioned: set[int] = set()
        self.managers: list[CheckpointManager] = []
        self.time = 0.0
        policy = CheckpointPolicy(interval=interval)
        for i in range(n):
            self.managers.append(
                CheckpointManager(
                    client_id=i,
                    num_clients=n,
                    signer=self.keystore.signer(i),
                    policy=policy,
                    send_share=self._broadcast(i),
                    send_server=self.server_messages.append,
                    on_install=self.installed[i].append,
                    on_fail=lambda reason, i=i: self.failures.__setitem__(
                        i, reason
                    ),
                    clock=lambda: self.time,
                )
            )

    def _broadcast(self, sender: int):
        def send(share: CheckpointShareMessage) -> None:
            for j, manager in enumerate(self.managers):
                if j != sender and j not in self.partitioned:
                    manager.on_share(share)

        return send

    def stabilize(self, vector: tuple[int, ...]) -> None:
        for i, manager in enumerate(self.managers):
            if i not in self.partitioned:
                manager.on_stability(vector)


def test_propose_countersign_install_round():
    net = _Net(n=3, interval=4)
    net.stabilize((2, 2, 1))  # sum 5 >= 4: proposer of seq 1 is client 0
    for i, manager in enumerate(net.managers):
        assert manager.installed.seq == 1, f"client {i}"
        assert manager.installed.cut == (2, 2, 1)
    assert all(len(installs) == 1 for installs in net.installed.values())
    # Exactly one certificate reached the server, carrying n signatures.
    assert len(net.server_messages) == 1
    certificate = net.server_messages[0]
    assert certificate.seq == 1 and certificate.cut == (2, 2, 1)
    assert len(certificate.signatures) == 3
    # The chain extends genesis.
    expected = chain_digest(1, (2, 2, 1), Checkpoint.genesis(3).digest)
    assert net.managers[0].installed.digest == expected
    assert not net.failures


def test_round_robin_proposers_advance_the_chain():
    net = _Net(n=3, interval=4)
    net.stabilize((2, 2, 1))
    net.stabilize((4, 3, 3))  # sum 10, delta 5 >= 4: client 1 proposes seq 2
    assert [m.installed.seq for m in net.managers] == [2, 2, 2]
    assert net.server_messages[1].seq == 2
    parent = net.managers[0].installed.parent_digest
    assert parent == chain_digest(1, (2, 2, 1), Checkpoint.genesis(3).digest)
    assert not net.failures


def test_laggard_withholds_countersignature_until_covered():
    net = _Net(n=3, interval=4)
    # Only the proposer has seen this much stability; peers are behind.
    net.managers[0].on_stability((2, 2, 2))
    assert net.managers[0].installed.seq == 0  # proposal out, no quorum
    net.managers[1].on_stability((2, 2, 2))
    assert net.managers[1].installed.seq == 0  # still one short
    net.managers[2].on_stability((1, 1, 1))  # does NOT cover the cut
    assert net.managers[2].installed.seq == 0
    net.managers[2].on_stability((2, 2, 2))  # now it does
    assert [m.installed.seq for m in net.managers] == [1, 1, 1]
    assert not net.failures


def test_non_equivocation_single_signature_per_seq():
    net = _Net(n=3, interval=4)
    net.partitioned = {1, 2}  # proposer alone: share goes nowhere
    net.managers[0].on_stability((2, 2, 2))
    assert net.managers[0].shares_sent == 1
    # More stability must not re-sign seq 1 with a bigger cut.
    net.managers[0].on_stability((5, 5, 5))
    assert net.managers[0].shares_sent == 1
    signed_cut = net.managers[0]._signed[1][0]
    assert signed_cut == (2, 2, 2)


def test_conflicting_shares_are_forking_evidence():
    net = _Net(n=3, interval=4)
    net.partitioned = {1, 2}
    net.managers[0].on_stability((2, 2, 2))  # client 0 signed (2,2,2)
    net.partitioned = set()
    # A (validly signed) share for the same seq with a different cut.
    evil_cut = (3, 2, 2)
    forged = CheckpointShareMessage(
        sender=1,
        seq=1,
        cut=evil_cut,
        parent_digest=Checkpoint.genesis(3).digest,
        signature=net.keystore.signer(1).sign(
            "CHECKPOINT", 1, evil_cut, Checkpoint.genesis(3).digest
        ),
    )
    net.managers[0].on_share(forged)
    assert 0 in net.failures
    assert "conflicting" in net.failures[0]
    # A failed manager is inert: no new proposals, no installs.
    net.managers[0].on_stability((9, 9, 9))
    assert net.managers[0].installed.seq == 0


def test_invalid_signature_is_rejected_loudly():
    net = _Net(n=3, interval=4)
    bogus = CheckpointShareMessage(
        sender=1,
        seq=1,
        cut=(2, 2, 2),
        parent_digest=Checkpoint.genesis(3).digest,
        signature=b"not-a-signature",
    )
    net.managers[0].on_share(bogus)
    assert "invalid" in net.failures[0]


def test_share_diverging_from_installed_checkpoint_fails():
    net = _Net(n=3, interval=4)
    net.stabilize((2, 2, 2))
    assert net.managers[0].installed.seq == 1
    # A late share for the already-installed seq with a different cut:
    # someone was shown a different history.
    divergent = CheckpointShareMessage(
        sender=2,
        seq=1,
        cut=(3, 3, 3),
        parent_digest=Checkpoint.genesis(3).digest,
        signature=net.keystore.signer(2).sign(
            "CHECKPOINT", 1, (3, 3, 3), Checkpoint.genesis(3).digest
        ),
    )
    net.managers[0].on_share(divergent)
    assert "diverges" in net.failures[0]


def test_matching_late_duplicate_and_stale_shares_are_ignored():
    net = _Net(n=3, interval=4)
    net.stabilize((2, 2, 2))
    duplicate = CheckpointShareMessage(
        sender=2,
        seq=1,
        cut=(2, 2, 2),
        parent_digest=Checkpoint.genesis(3).digest,
        signature=net.keystore.signer(2).sign(
            "CHECKPOINT", 1, (2, 2, 2), Checkpoint.genesis(3).digest
        ),
    )
    net.managers[0].on_share(duplicate)
    net.stabilize((4, 4, 4))  # chain moves on; seq 1 shares are now stale
    net.managers[0].on_share(duplicate)
    assert not net.failures
    assert net.managers[0].installed.seq == 2


def test_proposal_on_forked_parent_chain_fails():
    net = _Net(n=3, interval=4)
    fake_parent = chain_digest(1, (1, 1, 1), b"somewhere-else")
    forked = CheckpointShareMessage(
        sender=0,
        seq=1,
        cut=(2, 2, 2),
        parent_digest=fake_parent,
        signature=net.keystore.signer(0).sign(
            "CHECKPOINT", 1, (2, 2, 2), fake_parent
        ),
    )
    net.managers[1].on_stability((2, 2, 2))
    net.managers[1].on_share(forked)
    assert "parent" in net.failures[1]


# --------------------------------------------------------------------- #
# Proposer loss mid-sequence, the stall clock, and share catch-up
# --------------------------------------------------------------------- #


def test_proposer_dark_mid_sequence_stalls_then_resumes_on_heal():
    net = _Net(n=3, interval=4)
    net.stabilize((2, 2, 1))  # seq 1 installed; seq 2's proposer is client 1
    assert [m.installed.seq for m in net.managers] == [1, 1, 1]
    net.partitioned = {1}  # the proposer goes dark before proposing
    net.time = 10.0
    net.stabilize((4, 4, 4))
    # Nobody else may take the rotation's turn: the chain stalls...
    assert [m.installed.seq for m in net.managers] == [1, 1, 1]
    assert net.managers[0].shares_sent == 1  # no competing proposal
    # ...and the survivors' stall clocks have been running since the
    # interval was crossed, with nobody to blame yet (no proposal means
    # an empty bucket — the membership layer's counterfactual check, not
    # this one, names a missing proposer).
    assert net.managers[0].stall_seconds(now=25.0) == 15.0
    assert net.managers[0].blocking_clients() == ()
    assert net.managers[0].shares_for(2) == {}
    # The proposer comes back and catches up on stability: one proposal,
    # quorum, install — and the stall clock rearms to zero.
    net.partitioned = set()
    net.managers[1].on_stability((4, 4, 4))
    assert [m.installed.seq for m in net.managers] == [2, 2, 2]
    assert all(m.stall_seconds(now=99.0) == 0.0 for m in net.managers)
    # The rotation was not perturbed: seq 3 belongs to client 2.
    net.stabilize((6, 6, 6))
    assert net.server_messages[-1].seq == 3
    assert net.managers[0].proposer(3) == 2
    assert not net.failures


def test_proposer_crash_after_proposal_does_not_block_the_quorum():
    net = _Net(n=3, interval=4)
    # Client 0 proposes seq 1 (its share reaches everyone), then crashes.
    net.managers[0].on_stability((2, 2, 1))
    net.partitioned = {0}
    net.stabilize((2, 2, 1))
    # Its share is already in the bucket, so the survivors complete the
    # quorum without it; only the crashed proposer itself is behind.
    assert [m.installed.seq for m in net.managers] == [0, 1, 1]
    assert not net.failures


def test_blocking_clients_names_the_member_withholding_its_share():
    net = _Net(n=3, interval=4)
    net.partitioned = {2}
    net.time = 5.0
    net.stabilize((2, 2, 2))  # 0 proposes, 1 countersigns, 2 is dark
    assert [m.installed.seq for m in net.managers] == [0, 0, 0]
    assert net.managers[0].blocking_clients() == (2,)
    assert net.managers[1].blocking_clients() == (2,)
    assert set(net.managers[0].shares_for(1)) == {0, 1}
    assert net.managers[0].stall_seconds(now=9.0) == 4.0
    # The bucket is a retransmission source: replaying it to the healed
    # member (whose copies were lost) completes the quorum.
    net.partitioned = set()
    net.managers[2].on_stability((2, 2, 2))
    for share in list(net.managers[0].shares_for(1).values()):
        net.managers[2].on_share(share)
    assert [m.installed.seq for m in net.managers] == [1, 1, 1]
    assert all(m.blocking_clients() == () for m in net.managers)
    assert not net.failures


def test_buffered_future_share_installs_once_the_gap_fills():
    net = _Net(n=3, interval=4)
    manager = net.managers[2]
    genesis = Checkpoint.genesis(3).digest
    seq1_digest = chain_digest(1, (2, 2, 2), genesis)

    def share(sender: int, seq: int, cut, parent: bytes):
        return CheckpointShareMessage(
            sender=sender,
            seq=seq,
            cut=cut,
            parent_digest=parent,
            signature=net.keystore.signer(sender).sign(
                "CHECKPOINT", seq, cut, parent
            ),
        )

    # The seq-2 proposal arrives before the seq-1 round this client
    # missed: not actionable (its parent is unknown here), so it buffers
    # — no install, no countersignature, and crucially no failure.
    manager.on_share(share(1, 2, (4, 4, 4), seq1_digest))
    manager.on_stability((4, 4, 4))
    assert manager.installed.seq == 0
    assert set(manager.shares_for(2)) == {1}
    assert manager.shares_sent == 0
    # Retransmitted seq-1 shares (a live deployment replays them from
    # held mail or re-seeds via an epoch announce) fill the gap...
    manager.on_share(share(0, 1, (2, 2, 2), genesis))
    manager.on_share(share(1, 1, (2, 2, 2), genesis))
    # ...and _advance walks the buffered seq-2 bucket in the same
    # breath: install 1, countersign 2 (my stability already covers it).
    assert manager.installed.seq == 1
    assert manager.installed.digest == seq1_digest
    assert 2 in manager.shares_for(2)  # my countersignature joined in
    manager.on_share(share(0, 2, (4, 4, 4), seq1_digest))
    assert manager.installed.seq == 2
    assert manager.installs == 2
    assert not net.failures


# --------------------------------------------------------------------- #
# Server-side defensive truncation
# --------------------------------------------------------------------- #


def _submit_message(client: int, timestamp: int, value: bytes) -> SubmitMessage:
    return SubmitMessage(
        timestamp=timestamp,
        invocation=InvocationTuple(
            client=client,
            opcode=OpKind.WRITE,
            register=client,
            submit_sig=b"sig",
        ),
        value=value,
        data_sig=b"sig",
    )


def _pending_state():
    """A server state with pending entries [(c0,t1), (c1,t1), (c1,t2)]."""
    from repro.store.engine import MemoryEngine

    state = MemoryEngine(2).recover()
    apply_submit(state, _submit_message(0, 1, b"a"))
    apply_submit(state, _submit_message(1, 1, b"b"))
    apply_submit(state, _submit_message(1, 2, b"c"))
    return state


def _commit(state, client: int, vector: tuple[int, ...]) -> None:
    from repro.ustor.messages import CommitMessage

    apply_commit(
        state,
        client,
        CommitMessage(
            version=Version(vector=vector, digests=(b"d",) * len(vector)),
            commit_sig=b"sig",
            proof_sig=b"sig",
        ),
    )


def test_apply_checkpoint_truncates_covered_prefix():
    state = _pending_state()
    # Client 0 commits a version covering (c0,t1) and (c1,t1); apply_commit
    # itself prunes up to client 0's own last entry (index 0).
    _commit(state, 0, (1, 1))
    assert len(state.pending) == 2  # (c1,t1), (c1,t2) remain
    assert apply_checkpoint(state, (1, 0)) == 0  # cut excludes client 1
    assert apply_checkpoint(state, (1, 1)) == 1  # covers (c1,t1) only
    assert [ts for ts in state.pending_ts] == [2]


def test_apply_checkpoint_capped_by_committed_version():
    state = _pending_state()
    _commit(state, 0, (1, 1))
    # A forged, absurdly large cut must not outrun the committed version:
    # (c1,t2) is not committed anywhere, so it survives.
    assert apply_checkpoint(state, (99, 99)) == 1
    assert [ts for ts in state.pending_ts] == [2]
    assert state.pending[0].client == 1


def test_apply_checkpoint_rejects_wrong_cut_width():
    state = _pending_state()
    with pytest.raises(ProtocolError):
        apply_checkpoint(state, (1, 1, 1))


def test_checkpoint_survives_codec_roundtrip():
    state = _pending_state()
    _commit(state, 0, (1, 1))
    apply_checkpoint(state, (1, 1))
    decoded = decode_server_state(encode_server_state(state))
    assert encode_server_state(decoded) == encode_server_state(state)
    assert list(decoded.pending_ts) == [2]


def test_wal_checkpoint_record_replays_on_recovery():
    engine = LogStructuredEngine(2, snapshot_interval=1000)
    state = engine.recover()
    messages = [
        _submit_message(0, 1, b"a"),
        _submit_message(1, 1, b"b"),
        _submit_message(1, 2, b"c"),
    ]
    for message in messages:
        apply_submit(state, message)
        engine.log_submit(message)
    from repro.ustor.messages import CommitMessage

    commit = CommitMessage(
        version=Version(vector=(1, 1), digests=(b"d", b"d")),
        commit_sig=b"sig",
        proof_sig=b"sig",
    )
    apply_commit(state, 0, commit)
    engine.log_commit(0, commit)
    truncated = apply_checkpoint(state, (1, 1))
    engine.log_checkpoint((1, 1))
    assert truncated == 1
    # A fresh engine over the same medium replays S/C/K records back to
    # the exact same state — the checkpoint is as durable as the data.
    recovered = LogStructuredEngine(2, medium=engine.medium).recover()
    assert encode_server_state(recovered) == encode_server_state(state)
    assert list(recovered.pending_ts) == [2]


# --------------------------------------------------------------------- #
# History compaction and checkpoint-base checking
# --------------------------------------------------------------------- #


def _recorded(recorder: HistoryRecorder, op) -> None:
    op_id = recorder.begin(
        client=op.client,
        kind=op.kind,
        register=op.register,
        invoked_at=op.invoked_at,
        value=op.value if op.kind is OpKind.WRITE else None,
        timestamp=op.timestamp,
    )
    recorder.end(
        op_id,
        responded_at=op.responded_at,
        value=op.value,
        timestamp=op.timestamp,
    )


def test_recorder_compact_prunes_stable_writes_and_their_reads():
    recorder = HistoryRecorder()
    ops = [
        w(0, b"w1", 0, 1, timestamp=1),
        r(1, 0, b"w1", 1.5, 2.5, timestamp=1),
        w(0, b"w2", 3, 4, timestamp=2),
        w(0, b"w3", 5, 6, timestamp=3),
        r(1, 0, b"w3", 6.5, 7.5, timestamp=2),
    ]
    for op in ops:
        _recorded(recorder, op)
    pruned = recorder.compact((2, 2), keep_tail=1)
    # w1 (stable, not the tail) and its read go; w2 is the kept tail.
    assert pruned == 2
    assert recorder.compacted_ops == 2
    history = recorder.history()
    assert len(history) == 3
    assert history.base_of(0) == (1, 1.0)  # one write pruned, responded at 1
    assert history.base_of(1) == (0, float("-inf"))
    # The compacted history still checks clean, carrying the base.
    assert check_linearizability(history.complete()).ok


def test_recorder_compact_validates_keep_tail():
    with pytest.raises(HistoryError):
        HistoryRecorder().compact((0,), keep_tail=0)


def test_base_aware_offline_checker_accepts_post_checkpoint_history():
    # Write index 3 onward: two pruned writes before the base.
    history = h(
        w(0, b"w3", 10, 11, timestamp=3),
        r(1, 0, b"w3", 11.5, 12.5, timestamp=1),
        base={0: (2, 9.0)},
    )
    assert check_linearizability(history).ok


def test_base_rule_flags_bottom_read_after_checkpointed_writes():
    # Register 0 had writes folded into a checkpoint (base count 2, last
    # response at t=9); a read invoked after that returning BOTTOM is a
    # rollback across the checkpoint.
    history = h(
        r(1, 0, BOTTOM, 11.5, 12.5, timestamp=0),
        base={0: (2, 9.0)},
    )
    verdict = check_linearizability(history)
    assert not verdict.ok
    assert "checkpoint" in (verdict.violation or "")
    # ...but a read that was already in flight before the fold is fine.
    concurrent = h(
        r(1, 0, BOTTOM, 8.0, 12.5, timestamp=0),
        base={0: (2, 9.0)},
    )
    assert check_linearizability(concurrent).ok


def test_exhaustive_checker_refuses_compacted_histories():
    history = h(w(0, b"x", 0, 1, timestamp=3), base={0: (2, -1.0)})
    with pytest.raises(CheckerError):
        check_linearizability_exhaustive(history)


def test_incremental_checkers_track_compaction_live():
    recorder = HistoryRecorder()
    lin = IncrementalLinearizabilityChecker()
    causal = IncrementalCausalChecker()
    recorder.add_listener(lin)
    recorder.add_listener(causal)
    ops = [
        w(0, b"w1", 0, 1, timestamp=1),
        r(1, 0, b"w1", 1.5, 2.5, timestamp=1),
        w(0, b"w2", 3, 4, timestamp=2),
        w(0, b"w3", 5, 6, timestamp=3),
    ]
    for op in ops:
        _recorded(recorder, op)
    assert lin.result().ok and causal.result().ok
    recorder.compact((2, 2), keep_tail=1)
    # The streaming checkers shed the pruned prefix (w1 goes; w2 is the
    # kept tail, w3 is not yet covered by the cut)...
    assert len(lin._registers[0].writes) == 2
    assert lin._registers[0].base == 1
    # ...and keep absolute indexing for everything after it.
    _recorded(recorder, r(1, 0, b"w3", 7, 8, timestamp=3))
    _recorded(recorder, w(0, b"w4", 9, 10, timestamp=4))
    assert lin.result().ok and causal.result().ok


def test_incremental_seed_base_matches_offline_verdict():
    lin = IncrementalLinearizabilityChecker()
    lin.seed_base({0: (2, 9.0)})
    history = h(
        r(1, 0, BOTTOM, 11.5, 12.5, timestamp=0),
        base={0: (2, 9.0)},
    )
    for op in history:
        lin.on_invoke(op)
        lin.on_response(op)
    assert lin.result().ok is False
    assert check_linearizability(history).ok is False
