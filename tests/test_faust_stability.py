"""FAUST stability: the tracker unit and the protocol-level cuts."""

from __future__ import annotations

import random

import pytest

from repro.faust.stability import StabilityTracker
from repro.ustor.digests import extend_digest
from repro.ustor.version import Version
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts
from repro.workloads.runner import SystemBuilder
from repro.workloads.scenarios import figure2_scenario


def chained_versions(schedule, num_clients):
    """Honest versions committed along one schedule (prefix per step)."""
    out = []
    vector = [0] * num_clients
    digests = [None] * num_clients
    digest = None
    for client in schedule:
        vector[client] += 1
        digest = extend_digest(digest, client)
        digests[client] = digest
        out.append(Version(tuple(vector), tuple(digests)))
    return out


class TestTracker:
    def test_initial_state(self):
        tracker = StabilityTracker(0, 3)
        assert tracker.stability_cut() == (0, 0, 0)
        assert tracker.max_version.is_zero
        assert tracker.stable_timestamp_for_all() == 0

    def test_own_version_advances_own_entry(self):
        tracker = StabilityTracker(0, 2)
        versions = chained_versions([0, 0], 2)
        outcome = tracker.absorb(0, versions[-1], now=1.0)
        assert outcome.updated and outcome.stability_advanced
        assert tracker.stability_cut() == (2, 0)

    def test_peer_version_advances_peer_entry(self):
        tracker = StabilityTracker(0, 2)
        versions = chained_versions([0, 1], 2)
        tracker.absorb(0, versions[0], now=1.0)
        outcome = tracker.absorb(1, versions[1], now=2.0)
        assert outcome.updated
        # VER[1] covers my op with timestamp 1: stable w.r.t. C2 up to 1.
        assert tracker.stability_cut() == (1, 1)
        assert tracker.stable_timestamp_for_all() == 1

    def test_stale_version_does_not_refresh_clock(self):
        # Receiving an old (or unchanged) version is NOT an update: the
        # staleness clock must keep running so the client keeps probing —
        # this is what makes fork detection complete (a forking server can
        # forever serve stale-but-valid versions of the other branch).
        tracker = StabilityTracker(0, 2)
        versions = chained_versions([0, 0], 2)
        tracker.absorb(1, versions[1], now=1.0)
        outcome = tracker.absorb(1, versions[0], now=5.0)
        assert not outcome.updated and not outcome.incomparable
        assert tracker.last_heard[1] == 1.0

    def test_incomparable_version_flagged(self):
        tracker = StabilityTracker(0, 2)
        fork_a = chained_versions([0, 0], 2)[-1]
        fork_b = chained_versions([1, 1], 2)[-1]
        tracker.absorb(0, fork_a, now=1.0)
        outcome = tracker.absorb(1, fork_b, now=2.0)
        assert outcome.incomparable
        # The poisoned version must NOT be stored.
        assert tracker.versions[1].is_zero

    def test_max_index_follows_largest(self):
        tracker = StabilityTracker(0, 2)
        versions = chained_versions([0, 1, 1], 2)
        tracker.absorb(0, versions[0], now=1.0)
        tracker.absorb(1, versions[2], now=2.0)
        assert tracker.max_index == 1
        assert tracker.max_version == versions[2]

    def test_stale_peers(self):
        tracker = StabilityTracker(0, 3)
        tracker.absorb(1, chained_versions([1], 3)[0], now=10.0)
        assert tracker.stale_peers(now=11.0, delta=5.0) == [2]
        assert set(tracker.stale_peers(now=50.0, delta=5.0)) == {1, 2}

    def test_version_from_third_party_counts(self):
        # The paper: a VERSION message from C_j need not be committed by
        # C_j.  Stability w.r.t. C_j uses whatever C_j *knows*.
        tracker = StabilityTracker(0, 3)
        versions = chained_versions([0, 1], 3)
        outcome = tracker.absorb(2, versions[-1], now=1.0)  # C3 knows C2's version
        assert outcome.updated
        # The version covers my op with timestamp 1 -> stable w.r.t. C3.
        assert tracker.stability_cut() == (0, 0, 1)


class TestStabilityEndToEnd:
    def test_all_operations_eventually_stable(self):
        system = SystemBuilder(num_clients=3, seed=5).build_faust(
            dummy_read_period=3.0, probe_check_period=5.0, delta=15.0
        )
        scripts = generate_scripts(
            3, WorkloadConfig(ops_per_client=6, read_fraction=0.5), random.Random(5)
        )
        driver = Driver(system)
        driver.attach_all(scripts)
        assert driver.run_to_completion()
        # Detection completeness (Definition 5, condition 7): every
        # timestamp returned *so far* eventually becomes stable w.r.t.
        # every client.  (Freeze the targets first — dummy reads keep
        # advancing each client's own timestamp forever, so "my latest op
        # is stable" is a moving target by design.)
        targets = {
            client.client_id: client.version.vector[client.client_id]
            for client in system.clients
        }

        def all_stable():
            return all(
                client.tracker.stable_timestamp_for_all() >= targets[client.client_id]
                for client in system.clients
            )

        assert system.run_until(all_stable, timeout=3_000)
        assert not any(c.faust_failed for c in system.clients)

    def test_stability_without_user_operations(self):
        # Dummy reads alone keep versions flowing.
        system = SystemBuilder(num_clients=2, seed=6).build_faust(dummy_read_period=2.0)
        box = []
        system.clients[0].write(b"only-op", box.append)
        assert system.run_until(lambda: bool(box), timeout=100)
        t = box[0].timestamp
        assert system.run_until(
            lambda: system.clients[0].tracker.stable_timestamp_for_all() >= t,
            timeout=1_000,
        )

    def test_stability_via_offline_when_server_crashes(self):
        # The mechanism the paper motivates: after the server crashes,
        # PROBE/VERSION exchange still drives stability for completed ops.
        from repro.ustor.byzantine import CrashingServer

        system = SystemBuilder(
            num_clients=2,
            seed=7,
            server_factory=lambda n, name: CrashingServer(n, 4, name=name),
        ).build_faust(
            dummy_read_period=1_000.0,  # no dummy reads: isolate offline path
            probe_check_period=3.0,
            delta=10.0,
        )
        outcomes = []
        system.clients[0].write(b"a", outcomes.append)
        assert system.run_until(lambda: len(outcomes) == 1, timeout=50)
        box = []
        system.clients[1].read(0, box.append)
        assert system.run_until(lambda: bool(box), timeout=50)
        assert box[0].value == b"a"
        # Server is near its crash budget; let it die and rely on probes.
        system.run(until=system.now + 200)
        t = outcomes[0].timestamp
        cut_ok = system.run_until(
            lambda: system.clients[0].tracker.stable_timestamp_for(1) >= t,
            timeout=2_000,
        )
        assert cut_ok, "offline VERSION exchange must drive stability"
        assert not any(c.faust_failed for c in system.clients)

    def test_w_vector_entries_monotonic(self):
        system = SystemBuilder(num_clients=3, seed=8).build_faust(dummy_read_period=2.0)
        scripts = generate_scripts(
            3, WorkloadConfig(ops_per_client=5), random.Random(8)
        )
        driver = Driver(system)
        driver.attach_all(scripts)
        driver.run_to_completion()
        system.run(until=system.now + 100)
        for client in system.clients:
            cuts = [cut for _, cut in client.stable_notifications]
            for earlier, later in zip(cuts, cuts[1:]):
                assert all(a <= b for a, b in zip(earlier, later))

    def test_timestamps_monotonic_per_client(self):
        system = SystemBuilder(num_clients=2, seed=9).build_faust()
        outcomes = []
        for value in (b"a", b"b", b"c"):
            box = []
            system.clients[0].write(value, box.append)
            assert system.run_until(lambda: bool(box), timeout=200)
            outcomes.append(box[0])
        stamps = [o.timestamp for o in outcomes]
        assert stamps == sorted(stamps) and len(set(stamps)) == 3


class TestFigure2:
    def test_exact_stability_cut(self):
        result = figure2_scenario(include_carlos_return=False)
        assert result.reproduced
        assert (10, 8, 3) in result.alice_cuts

    def test_cut_semantics_match_figure(self):
        # At the (10, 8, 3) moment: Alice consistent with herself up to 10,
        # with Bob up to 8, with Carlos up to 3.
        result = figure2_scenario(include_carlos_return=False)
        index = result.alice_cuts.index((10, 8, 3))
        # Entries never decrease before that point.
        for earlier, later in zip(result.alice_cuts[: index + 1], result.alice_cuts[1 : index + 1]):
            assert all(a <= b for a, b in zip(earlier, later))

    def test_carlos_return_brings_full_stability(self):
        result = figure2_scenario(include_carlos_return=True)
        system = result.system
        alice = system.clients[0]
        # After Carlos returns, Alice's ops become stable w.r.t. everyone.
        assert system.run_until(
            lambda: alice.tracker.stable_timestamp_for_all() >= 10, timeout=3_000
        )
        assert not any(c.faust_failed for c in system.clients)
