"""Hashing, the three signature schemes, and the keystore trust boundary."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import UnknownSignerError
from repro.common.types import BOTTOM
from repro.crypto.hashing import (
    HASH_BYTES,
    hash_bytes,
    hash_register_value,
    hash_values,
)
from repro.crypto.keystore import KeyStore
from repro.crypto.signatures import (
    SIGNATURE_BYTES,
    Ed25519Scheme,
    HmacScheme,
    InsecureScheme,
    make_scheme,
)


class TestHashing:
    def test_hash_size(self):
        assert len(hash_bytes(b"x")) == HASH_BYTES

    def test_deterministic(self):
        assert hash_values("a", 1) == hash_values("a", 1)

    def test_structured_inputs_distinct(self):
        assert hash_values("ab", "c") != hash_values("a", "bc")

    def test_bottom_value_hash_is_stable(self):
        assert hash_register_value(BOTTOM) == hash_register_value(BOTTOM)

    def test_bottom_differs_from_empty_bytes(self):
        assert hash_register_value(BOTTOM) != hash_register_value(b"")

    def test_value_hash_injective_on_samples(self):
        values = [b"", b"a", b"b", b"ab", b"\x00", b"\x00\x00"]
        hashes = {hash_register_value(v) for v in values}
        assert len(hashes) == len(values)


@pytest.fixture(params=["hmac", "insecure", "ed25519"])
def scheme(request):
    return make_scheme(request.param, 3)


class TestSchemes:
    def test_sign_verify_roundtrip(self, scheme):
        payload = b"payload"
        sig = scheme.sign(1, payload)
        assert scheme.verify(1, sig, payload)

    def test_wrong_signer_rejected(self, scheme):
        sig = scheme.sign(1, b"payload")
        assert not scheme.verify(2, sig, b"payload")

    def test_wrong_payload_rejected(self, scheme):
        sig = scheme.sign(1, b"payload")
        assert not scheme.verify(1, sig, b"payload2")

    def test_tampered_signature_rejected(self, scheme):
        sig = bytearray(scheme.sign(0, b"m"))
        sig[0] ^= 0xFF
        assert not scheme.verify(0, bytes(sig), b"m")

    def test_garbage_signature_rejected(self, scheme):
        assert not scheme.verify(0, b"\x00" * 10, b"m")

    def test_non_bytes_signature_rejected(self, scheme):
        assert not scheme.verify(0, None, b"m")  # type: ignore[arg-type]

    def test_unknown_signer_sign_raises(self, scheme):
        with pytest.raises(UnknownSignerError):
            scheme.sign(7, b"m")

    def test_unknown_signer_verify_false(self, scheme):
        assert not scheme.verify(7, b"x" * SIGNATURE_BYTES, b"m")

    def test_signature_length(self, scheme):
        assert len(scheme.sign(0, b"m")) == SIGNATURE_BYTES

    def test_deterministic_keygen(self, scheme):
        fresh = make_scheme(
            {"HmacScheme": "hmac", "InsecureScheme": "insecure", "Ed25519Scheme": "ed25519"}[
                type(scheme).__name__
            ],
            3,
        )
        sig = scheme.sign(2, b"m")
        assert fresh.verify(2, sig, b"m")


class TestSchemeSpecifics:
    def test_insecure_scheme_is_forgeable(self):
        # The point of InsecureScheme: anyone can forge, which adversarial
        # tests exploit to model a broken signature scheme.
        scheme = InsecureScheme(2)
        forged = InsecureScheme.forge(0, b"m")
        assert scheme.verify(0, forged, b"m")

    def test_hmac_keys_differ_per_client(self):
        scheme = HmacScheme(2)
        assert scheme.sign(0, b"m") != scheme.sign(1, b"m")

    def test_different_seeds_are_independent(self):
        a = HmacScheme(2, seed=b"a")
        b = HmacScheme(2, seed=b"b")
        assert not b.verify(0, a.sign(0, b"m"), b"m")

    def test_ed25519_is_real(self):
        scheme = Ed25519Scheme(1)
        sig = scheme.sign(0, b"m")
        assert len(sig) == 64
        assert scheme.verify(0, sig, b"m")

    def test_make_scheme_rejects_unknown(self):
        with pytest.raises(UnknownSignerError):
            make_scheme("rsa", 2)

    def test_population_must_be_positive(self):
        with pytest.raises(ValueError):
            HmacScheme(0)


class TestKeyStore:
    def test_signer_bound_to_client(self):
        store = KeyStore(3)
        signer = store.signer(1)
        assert signer.client == 1
        sig = signer.sign("COMMIT", (1, 2, 3))
        assert signer.verify(1, sig, "COMMIT", (1, 2, 3))

    def test_verifier_cannot_sign(self):
        store = KeyStore(3)
        verifier = store.verifier()
        assert not hasattr(verifier, "sign")

    def test_server_verifier_has_no_verdict_cache(self):
        """The shared verification cache is a verdict-injection capability
        and must never cross the trust boundary to servers."""
        store = KeyStore(3)
        assert store.verifier()._cache is None
        # Client capabilities do share the keystore's cache.
        signer = store.signer(0)
        assert signer.verifier._cache is store._cache

    def test_verification_cache_dedups_across_clients(self):
        store = KeyStore(3)
        sig = store.signer(0).sign("PROOF", b"digest")
        for observer in range(3):
            assert store.signer(observer).verify(0, sig, "PROOF", b"digest")
        stats = store.verification_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 2

    def test_cross_client_verification(self):
        store = KeyStore(3)
        sig = store.signer(0).sign("PROOF", b"digest")
        assert store.signer(2).verify(0, sig, "PROOF", b"digest")

    def test_structured_payloads(self):
        store = KeyStore(2)
        signer = store.signer(0)
        sig = signer.sign("DATA", 5, None)
        assert signer.verify(0, sig, "DATA", 5, None)
        assert not signer.verify(0, sig, "DATA", 5, b"")

    def test_scheme_population_mismatch_rejected(self):
        with pytest.raises(ValueError):
            KeyStore(3, scheme=HmacScheme(2))


class TestSignatureProperties:
    @settings(max_examples=50)
    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_hmac_distinct_payloads_distinct_sigs(self, a, b):
        scheme = HmacScheme(1)
        if a != b:
            assert scheme.sign(0, a) != scheme.sign(0, b)

    @settings(max_examples=50)
    @given(st.binary(max_size=64))
    def test_hmac_never_cross_verifies(self, payload):
        scheme = HmacScheme(2)
        assert not scheme.verify(1, scheme.sign(0, payload), payload)
