"""USTOR under a correct server: safety, liveness, message complexity."""

from __future__ import annotations

import random

import pytest

from repro.common.errors import ProtocolError
from repro.common.types import BOTTOM, OpKind
from repro.consistency.causal import check_causal_consistency
from repro.consistency.linearizability import check_linearizability
from repro.consistency.weak_fork import validate_weak_fork_linearizability
from repro.sim.network import ExponentialLatency, FixedLatency
from repro.ustor.viewhistory import build_client_views
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts
from repro.workloads.runner import SystemBuilder


def run_ops(system, ops):
    """ops: list of (client_index, 'read'/'write', argument); returns outcomes."""
    outcomes = []
    for client_index, op, arg in ops:
        box = []
        getattr(system.clients[client_index], op)(arg, box.append)
        assert system.run_until(lambda: bool(box), timeout=1_000)
        system.run(until=system.now + 0.05)
        outcomes.append(box[0])
    return outcomes


class TestSingleClient:
    def test_write_then_read_own_register(self):
        system = SystemBuilder(num_clients=1, seed=1).build()
        write, read = run_ops(system, [(0, "write", b"v"), (0, "read", 0)])
        assert write.timestamp == 1
        assert read.value == b"v" and read.timestamp == 2

    def test_read_before_any_write_returns_bottom(self):
        system = SystemBuilder(num_clients=2, seed=1).build()
        (read,) = run_ops(system, [(0, "read", 1)])
        assert read.value is BOTTOM

    def test_overwrites_visible_in_order(self):
        system = SystemBuilder(num_clients=1, seed=1).build()
        outcomes = run_ops(
            system,
            [(0, "write", b"v1"), (0, "write", b"v2"), (0, "read", 0)],
        )
        assert outcomes[-1].value == b"v2"

    def test_timestamps_strictly_increase(self):
        system = SystemBuilder(num_clients=1, seed=1).build()
        outcomes = run_ops(system, [(0, "write", b"a"), (0, "read", 0), (0, "write", b"b")])
        stamps = [o.timestamp for o in outcomes]
        assert stamps == sorted(stamps) and len(set(stamps)) == 3

    def test_versions_grow_monotonically(self):
        system = SystemBuilder(num_clients=1, seed=1).build()
        outcomes = run_ops(system, [(0, "write", b"a"), (0, "read", 0)])
        assert outcomes[0].version.lt(outcomes[1].version)


class TestTwoClients:
    def test_reader_sees_committed_write(self):
        system = SystemBuilder(num_clients=2, seed=2).build()
        outcomes = run_ops(system, [(0, "write", b"shared"), (1, "read", 0)])
        assert outcomes[1].value == b"shared"

    def test_read_returns_writer_version(self):
        system = SystemBuilder(num_clients=2, seed=2).build()
        outcomes = run_ops(system, [(0, "write", b"x"), (1, "read", 0)])
        reader_version = outcomes[1].reader_version
        assert reader_version is not None
        assert reader_version.vector[0] == 1

    def test_cross_client_versions_are_chained(self):
        system = SystemBuilder(num_clients=2, seed=2).build()
        outcomes = run_ops(
            system,
            [(0, "write", b"x"), (1, "read", 0), (0, "write", b"y"), (1, "read", 0)],
        )
        versions = [o.version for o in outcomes]
        # Every consecutive pair along the schedule is ordered (the view
        # histories are prefixes of one another).
        for earlier, later in zip(versions, versions[1:]):
            assert earlier.le(later)

    def test_no_concurrent_op_with_self(self):
        system = SystemBuilder(num_clients=2, seed=2).build()
        client = system.clients[0]
        client.write(b"a", lambda o: None)
        with pytest.raises(ProtocolError):
            client.write(b"b", lambda o: None)


class TestConcurrency:
    def test_concurrent_write_and_read_both_complete(self):
        system = SystemBuilder(num_clients=2, seed=3, latency=FixedLatency(2.0)).build()
        boxes = [[], []]
        system.clients[0].write(b"w", boxes[0].append)
        system.clients[1].read(0, boxes[1].append)
        assert system.run_until(lambda: all(boxes), timeout=100)
        # The read, racing the write, may return BOTTOM or the new value.
        assert boxes[1][0].value in (BOTTOM, b"w")

    def test_wait_freedom_with_slow_commits(self):
        # Delay all COMMIT deliveries: reads by others must still complete
        # in one round (this is exactly what fork-linearizable protocols
        # cannot do).
        system = SystemBuilder(num_clients=3, seed=4).build()
        system.network.add_delay("C1", "S", 0.0)  # ensure link exists
        outcomes = []
        system.clients[0].write(b"w", outcomes.append)
        assert system.run_until(lambda: len(outcomes) == 1, timeout=100)
        # Now slow C1's channel so its next COMMIT crawls.
        system.network.add_delay("C1", "S", 500.0)
        system.clients[0].write(b"w2", outcomes.append)
        # C1's own op waits for its REPLY (which needs the slow SUBMIT),
        # but C2 and C3 proceed freely meanwhile.
        fast = []
        system.clients[1].read(0, fast.append)
        system.clients[2].read(0, fast.append)
        assert system.run_until(lambda: len(fast) == 2, timeout=100)
        assert all(not c.failed for c in system.clients)

    def test_client_crash_does_not_block_others(self):
        system = SystemBuilder(num_clients=3, seed=5, latency=FixedLatency(1.0)).build()
        victim = system.clients[0]
        victim.write(b"doomed", lambda o: None)
        # Crash after the SUBMIT is sent but before the REPLY arrives.
        system.scheduler.schedule(0.5, victim.crash)
        results = []
        system.scheduler.schedule(3.0, system.clients[1].write, b"alive", results.append)
        system.scheduler.schedule(6.0, system.clients[2].read, 1, results.append)
        assert system.run_until(lambda: len(results) == 2, timeout=200)
        assert results[1].value == b"alive"
        assert not any(c.failed for c in system.clients[1:])


class TestPiggybackMode:
    def test_results_identical_to_eager_mode(self):
        def run(piggyback):
            system = SystemBuilder(
                num_clients=2, seed=6, commit_piggyback=piggyback
            ).build()
            outcomes = run_ops(
                system,
                [(0, "write", b"a"), (1, "read", 0), (0, "write", b"b"), (1, "read", 0)],
            )
            return [(o.kind, o.value, o.timestamp) for o in outcomes]

        assert run(False) == run(True)

    def test_piggyback_halves_client_messages(self):
        def messages(piggyback):
            system = SystemBuilder(
                num_clients=2, seed=6, commit_piggyback=piggyback
            ).build()
            run_ops(system, [(0, "write", b"a"), (0, "write", b"b"), (0, "write", b"c")])
            return system.trace.message_count("COMMIT")

        assert messages(False) == 3
        assert messages(True) == 0  # commits ride inside SUBMITs

    def test_piggyback_leaves_pending_entries(self):
        system = SystemBuilder(num_clients=2, seed=6, commit_piggyback=True).build()
        run_ops(system, [(0, "write", b"a")])
        system.run(until=system.now + 10)
        # The final COMMIT never went out: the server's L keeps the entry.
        assert len(system.server.state.pending) == 1


class TestMessageComplexity:
    def test_one_reply_per_operation(self):
        system = SystemBuilder(num_clients=3, seed=7).build()
        run_ops(system, [(0, "write", b"a"), (1, "read", 0), (2, "read", 0)])
        assert system.trace.message_count("REPLY") == 3
        assert system.trace.message_count("SUBMIT") == 3

    def test_reply_size_linear_in_clients(self):
        sizes = {}
        for n in (2, 8, 32):
            system = SystemBuilder(num_clients=n, seed=8).build()
            run_ops(system, [(0, "write", b"x"), (1, "read", 0)])
            sizes[n] = system.trace.total_bytes("REPLY") / system.trace.message_count("REPLY")
        # Linear growth: scaling n by 4 must scale size by < 6 but clearly
        # more than a constant.
        assert sizes[8] < 6 * sizes[2]
        assert sizes[32] < 6 * sizes[8]
        assert sizes[32] > 2 * sizes[8] * 0.5


class TestRandomizedRuns:
    @pytest.mark.parametrize("seed", range(8))
    def test_linearizable_causal_and_wait_free(self, seed):
        system = SystemBuilder(
            num_clients=4,
            seed=seed,
            latency=ExponentialLatency(1.0, cap=8.0),
        ).build()
        scripts = generate_scripts(
            4, WorkloadConfig(ops_per_client=20, read_fraction=0.6), random.Random(seed)
        )
        driver = Driver(system)
        driver.attach_all(scripts)
        assert driver.run_to_completion(), "wait-freedom: every operation completes"
        history = system.history()
        assert check_linearizability(history)
        assert check_causal_consistency(history)
        views = build_client_views(history, system.recorder, system.clients)
        assert validate_weak_fork_linearizability(history, views)
        assert not any(c.failed for c in system.clients)

    def test_deterministic_replay(self):
        def run():
            system = SystemBuilder(num_clients=3, seed=123).build()
            scripts = generate_scripts(
                3, WorkloadConfig(ops_per_client=10), random.Random(123)
            )
            driver = Driver(system)
            driver.attach_all(scripts)
            driver.run_to_completion()
            return [
                (op.client, op.kind, op.invoked_at, op.responded_at)
                for op in system.history()
            ]

        assert run() == run()
