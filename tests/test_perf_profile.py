"""Tests of the repro.perf profiling harness."""

from __future__ import annotations

import json

from repro.api import SystemConfig, open_system
from repro.perf import (
    Profiler,
    hot_path_cache_stats,
    reset_hot_path_caches,
    system_profile,
)
from repro.workloads.runner import SystemBuilder


class TestProfiler:
    def test_timers_accumulate(self):
        profiler = Profiler()
        for _ in range(3):
            with profiler.timer("phase"):
                pass
        snap = profiler.snapshot()
        assert snap["timers"]["phase"]["calls"] == 3
        assert snap["timers"]["phase"]["total_seconds"] >= 0.0
        assert (
            snap["timers"]["phase"]["max_seconds"]
            <= snap["timers"]["phase"]["total_seconds"]
        )

    def test_counters(self):
        profiler = Profiler()
        profiler.count("replies")
        profiler.count("replies", 4)
        assert profiler.snapshot()["counters"] == {"replies": 5}

    def test_allocation_tracking(self):
        profiler = Profiler()
        with profiler.track_allocations("alloc"):
            _ = [bytes(128) for _ in range(100)]
        stat = profiler.snapshot()["allocations"]["alloc"]
        assert stat["calls"] == 1
        assert stat["allocated_bytes"] >= 0
        assert stat["peak_bytes"] >= stat["allocated_bytes"]

    def test_timer_records_on_exception(self):
        profiler = Profiler()
        try:
            with profiler.timer("failing"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert profiler.snapshot()["timers"]["failing"]["calls"] == 1

    def test_snapshot_is_json_serialisable(self):
        profiler = Profiler()
        with profiler.timer("t"):
            profiler.count("c")
        json.dumps(profiler.snapshot())


class TestNestedAllocationTracking:
    """tracemalloc has one process-wide peak; nested sections must not
    clobber each other's measurements through the shared reset."""

    def test_inner_section_excludes_prior_outer_allocations(self):
        profiler = Profiler()
        with profiler.track_allocations("outer"):
            keep_outer = [bytes(4096) for _ in range(50)]
            with profiler.track_allocations("inner"):
                keep_inner = [bytes(64)]
        allocations = profiler.snapshot()["allocations"]
        # The inner section starts *after* the outer's 200 KiB and must
        # not inherit it.
        assert allocations["inner"]["allocated_bytes"] < 10_000
        assert allocations["inner"]["peak_bytes"] < 10_000
        assert allocations["outer"]["allocated_bytes"] > 150_000
        del keep_outer, keep_inner

    def test_outer_peak_survives_the_inner_reset(self):
        profiler = Profiler()
        with profiler.track_allocations("outer"):
            # Peak happens *before* the inner section opens...
            spike = [bytes(4096) for _ in range(100)]
            del spike
            # ... which resets tracemalloc's high-water mark; the outer
            # section's folded peak must still reflect the spike.
            with profiler.track_allocations("inner"):
                pass
        outer = profiler.snapshot()["allocations"]["outer"]
        assert outer["peak_bytes"] > 300_000

    def test_tracing_stops_when_the_last_section_exits(self):
        import tracemalloc

        assert not tracemalloc.is_tracing()
        profiler = Profiler()
        with profiler.track_allocations("outer"):
            with profiler.track_allocations("inner"):
                assert tracemalloc.is_tracing()
            assert tracemalloc.is_tracing()
        assert not tracemalloc.is_tracing()

    def test_out_of_order_exit_is_tolerated(self):
        import tracemalloc

        profiler = Profiler()
        outer = profiler.track_allocations("outer")
        inner = profiler.track_allocations("inner")
        outer.__enter__()
        inner.__enter__()
        # Close the *outer* handle first — e.g. generators finalized in
        # an unlucky order.  Both sections still record, and tracing
        # still stops once the stack empties.
        outer.__exit__(None, None, None)
        assert tracemalloc.is_tracing()
        inner.__exit__(None, None, None)
        assert not tracemalloc.is_tracing()
        allocations = profiler.snapshot()["allocations"]
        assert allocations["outer"]["calls"] == 1
        assert allocations["inner"]["calls"] == 1

    def test_ambient_tracing_is_left_running(self):
        import tracemalloc

        tracemalloc.start()
        try:
            profiler = Profiler()
            with profiler.track_allocations("section"):
                pass
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()


class TestProfilerObsMirror:
    def test_counters_and_timers_mirror_when_enabled(self):
        from repro.obs.registry import Registry, use_registry

        with use_registry(Registry()) as registry:
            profiler = Profiler()
            profiler.count("replies", 5)
            with profiler.timer("phase"):
                pass
            assert registry.get("perf.counter.replies").value == 5
            assert registry.get("perf.timer.phase").count == 1
        # The local snapshot surface is unchanged either way.
        assert profiler.snapshot()["counters"] == {"replies": 5}

    def test_disabled_registry_records_nothing(self):
        from repro.obs.registry import get_registry

        profiler = Profiler()
        profiler.count("replies", 5)
        assert profiler.snapshot()["counters"] == {"replies": 5}
        assert get_registry().snapshot() == {}

    def test_system_profile_includes_obs_section_when_enabled(self):
        from repro.obs.registry import Registry, use_registry

        with use_registry(Registry()) as registry:
            system = SystemBuilder(num_clients=2, seed=5).build()
            registry.counter("probe").inc()
            profile = system.profile()
            assert profile["obs"]["probe"] == 1
        assert "obs" not in SystemBuilder(num_clients=2, seed=5).build().profile()


class TestSystemProfile:
    def test_raw_storage_system(self):
        system = SystemBuilder(num_clients=2, seed=5).build()
        system.clients[0].write(b"v")
        system.run_until_quiescent()
        profile = system.profile()
        assert profile["kind"] == "single"
        assert profile["scheduler"]["events_processed"] > 0
        assert profile["clients"]["completed_operations"] >= 1
        assert profile["server"]["submits_handled"] >= 1
        assert "verification_cache" in profile
        assert "hot_path_caches" in profile
        json.dumps(profile)

    def test_api_system_carries_backend(self):
        system = open_system(SystemConfig(num_clients=2, seed=3), backend="faust")
        session = system.session(0)
        session.write_sync(b"x")
        profile = system.profile()
        assert profile["backend"] == "faust"
        assert profile["kind"] == "single"

    def test_cluster_profile_aggregates_shards(self):
        cluster = open_system(
            SystemConfig(num_clients=4, seed=9, shards=2), backend="cluster"
        )
        session = cluster.session(0)
        session.write_sync(b"y")
        session.barrier()
        profile = cluster.profile()
        assert profile["kind"] == "cluster"
        assert profile["num_shards"] == 2
        assert len(profile["shards"]) == 2
        assert profile["server"]["submits_handled"] >= 1
        assert profile["clients"]["completed_operations"] >= 1
        json.dumps(profile)


class TestHotPathCacheStats:
    def test_stats_shape_and_reset(self):
        from repro.common.encoding import encode
        from repro.ustor.digests import extend_digest

        reset_hot_path_caches()
        encode("PROBE", 17)
        extend_digest(None, 1)
        extend_digest(None, 1)  # second call is a memo hit
        stats = hot_path_cache_stats()
        assert stats["encoding"]["misses"] >= 1
        assert stats["digest_chain"] == {"hits": 1, "misses": 1}
        reset_hot_path_caches()
        cleared = hot_path_cache_stats()
        assert cleared["digest_chain"] == {"hits": 0, "misses": 0}
        assert cleared["encoding"]["misses"] == 0

    def test_system_profile_accepts_raw_and_wrapped(self):
        system = SystemBuilder(num_clients=2, seed=1).build()
        assert system_profile(system)["kind"] == "single"
