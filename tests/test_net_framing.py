"""Framing and wire codecs of the real transport (:mod:`repro.net`).

These are the layers that face untrusted bytes: the length-prefixed
frame decoder and the message<->payload codecs.  Everything here is
pure/in-memory — the socket paths live in ``test_net_loopback.py``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.common.errors import (
    DecodeError,
    EncodingError,
    OversizedFrameError,
    TruncatedFrameError,
)
from repro.crypto.keystore import KeyStore
from repro.net.framing import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    encode_frame,
    read_frame,
)
from repro.net.transport import Transport
from repro.net.wire import (
    decode_payload,
    hello_payload,
    message_to_payload,
    payload_to_message,
    welcome_payload,
)
from repro.sim.network import Network
from repro.sim.scheduler import Scheduler
from repro.ustor.client import UstorClient
from repro.ustor.messages import CommitMessage, ReplyMessage, SubmitMessage


class TestEncodeFrame:
    def test_roundtrip_through_decoder(self):
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(b"abc") + encode_frame(b"")) == [
            b"abc",
            b"",
        ]

    def test_oversized_payload_rejected_at_send(self):
        with pytest.raises(OversizedFrameError):
            encode_frame(b"x" * 11, max_bytes=10)

    def test_limit_is_inclusive(self):
        assert encode_frame(b"x" * 10, max_bytes=10)


class TestFrameDecoder:
    def test_byte_at_a_time_fragmentation(self):
        frame = encode_frame(b"payload-bytes")
        decoder = FrameDecoder()
        out: list[bytes] = []
        for i in range(len(frame)):
            out.extend(decoder.feed(frame[i : i + 1]))
        assert out == [b"payload-bytes"]
        assert decoder.pending_bytes == 0

    def test_many_frames_in_one_chunk(self):
        payloads = [bytes([i]) * i for i in range(5)]
        chunk = b"".join(encode_frame(p) for p in payloads)
        assert FrameDecoder().feed(chunk) == payloads

    def test_declared_oversize_raises_before_buffering(self):
        decoder = FrameDecoder(max_bytes=64)
        header = (65).to_bytes(4, "big")
        with pytest.raises(OversizedFrameError):
            decoder.feed(header)

    def test_pending_bytes_counts_partial_frame(self):
        frame = encode_frame(b"abcdef")
        decoder = FrameDecoder()
        decoder.feed(frame[:7])
        assert decoder.pending_bytes == 7


class TestReadFrame:
    def _reader(self, data: bytes) -> asyncio.StreamReader:
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return reader

    def _run(self, coro):
        loop = asyncio.new_event_loop()
        try:
            return loop.run_until_complete(coro)
        finally:
            loop.close()

    def test_reads_back_to_back_frames_then_none_at_eof(self):
        async def scenario():
            reader = self._reader(encode_frame(b"one") + encode_frame(b"two"))
            return [
                await read_frame(reader),
                await read_frame(reader),
                await read_frame(reader),
            ]

        assert self._run(scenario()) == [b"one", b"two", None]

    def test_eof_mid_frame_is_truncation(self):
        async def scenario():
            reader = self._reader(encode_frame(b"payload")[:-2])
            await read_frame(reader)

        with pytest.raises(TruncatedFrameError):
            self._run(scenario())

    def test_eof_mid_header_is_truncation(self):
        async def scenario():
            reader = self._reader(b"\x00\x00")
            await read_frame(reader)

        with pytest.raises(TruncatedFrameError):
            self._run(scenario())

    def test_oversized_declared_length_rejected(self):
        async def scenario():
            header = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
            reader = self._reader(header + b"x")
            await read_frame(reader)

        with pytest.raises(OversizedFrameError):
            self._run(scenario())


def _protocol_messages() -> list:
    """One of each protocol message, produced by a real client run."""
    scheduler = Scheduler(seed=0)
    network = Network(scheduler)
    keystore = KeyStore(2, scheme="hmac")
    from repro.ustor.server import UstorServer

    server = UstorServer(2, name="S")
    network.register(server)
    clients = []
    for i in range(2):
        client = UstorClient(
            client_id=i, num_clients=2, signer=keystore.signer(i)
        )
        network.register(client)
        clients.append(client)
    captured: list = []
    original = network.send

    def capturing(src, dst, message):
        captured.append(message)
        original(src, dst, message)

    network.send = capturing
    clients[0].write(b"v1")
    clients[1].read(0)
    scheduler.run()
    return captured


class TestWireCodecs:
    def test_every_protocol_message_roundtrips(self):
        messages = _protocol_messages()
        kinds = {type(m) for m in messages}
        assert kinds == {SubmitMessage, ReplyMessage, CommitMessage}
        for message in messages:
            recovered = payload_to_message(message_to_payload(message))
            assert type(recovered) is type(message)
            assert message_to_payload(recovered) == message_to_payload(message)

    def test_handshake_payloads_decode(self):
        assert decode_payload(hello_payload(2, 3)) == ("HELLO", 2, 3)
        assert decode_payload(welcome_payload("S", 3)) == ("WELCOME", "S", 3)

    def test_unknown_kind_rejected(self):
        from repro.common.encoding import encode

        with pytest.raises((DecodeError, EncodingError)):
            payload_to_message(encode(("GOSSIP", ())))

    def test_non_tuple_record_rejected(self):
        from repro.common.encoding import encode

        with pytest.raises((DecodeError, EncodingError)):
            decode_payload(encode(b"not-a-tuple"))

    def test_garbage_bytes_rejected(self):
        with pytest.raises((DecodeError, EncodingError)):
            payload_to_message(b"\xff\xfe\xfd")


class TestTransportSeam:
    def test_sim_network_satisfies_transport_protocol(self):
        # The seam is structural: the simulator's Network implements
        # Transport without importing it.
        network = Network(Scheduler(seed=0))
        assert isinstance(network, Transport)
