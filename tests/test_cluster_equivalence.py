"""Property-based cross-backend equivalence under one adversary seed.

Random operation programs — executed strictly sequentially, with the
FAUST background machinery quiet — must be *observationally identical*
across protocol stacks: the same register values come back, the same
operations fail, and the same clients end up detecting, because the
guarantees differ only in what the protocols can *detect*, never in what
an honest run returns.

Three layers of the property:

* **honest equivalence** — faust / ustor / lockstep / cluster (several
  shard counts and both shard maps) all return identical value
  sequences with zero failures;
* **adversarial equivalence** — the randomized-deviation adversary from
  :mod:`repro.ustor.fuzz`, seeded identically, produces identical per-op
  outcomes *and* identical per-client verdicts on the backends that
  speak the USTOR wire protocol (faust, ustor, and their 1-shard
  cluster embeddings — the cluster layer must be a zero-cost wrapper);
* **accuracy everywhere** — across all seeds and backends, a client
  verdict of "failed" only ever appears in runs where the adversary
  actually injected a deviation.
"""

from __future__ import annotations

import random

import pytest

from repro.api import (
    FaustParams,
    OperationFailed,
    OperationTimeout,
    SystemConfig,
    open_system,
)
from repro.common.errors import ProtocolError
from repro.common.types import BOTTOM, OpKind
from repro.ustor.fuzz import RandomDeviationServer
from repro.workloads.generator import unique_value

NUM_CLIENTS = 3
OPS_PER_PROGRAM = 14


def generate_program(seed: int) -> list[tuple[int, OpKind, int, bytes | None]]:
    """A random, sequentially executed op sequence over all clients."""
    rng = random.Random(seed)
    program = []
    writes = 0
    for _ in range(OPS_PER_PROGRAM):
        client = rng.randrange(NUM_CLIENTS)
        if rng.random() < 0.5:
            program.append((client, OpKind.READ, rng.randrange(NUM_CLIENTS), None))
        else:
            writes += 1
            program.append(
                (client, OpKind.WRITE, client, unique_value(client, writes, 16))
            )
    return program


def quiet_config(seed: int, **overrides) -> SystemConfig:
    overrides.setdefault(
        "faust", FaustParams(enable_dummy_reads=False, enable_probes=False)
    )
    return SystemConfig(num_clients=NUM_CLIENTS, seed=seed, **overrides)


def execute(backend: str, config: SystemConfig, program) -> tuple[tuple, tuple]:
    """Run a program; return (per-op outcomes, per-client verdicts).

    Outcomes normalise to comparable tokens: ``("ok", value-ish)`` for a
    completed op, ``"fail"`` for one rejected by the protocol, ``"halted"``
    for ops submitted to an already-halted client.
    """
    system = open_system(config, backend=backend)
    outcomes = []
    for client, kind, register, value in program:
        session = system.session(client)
        try:
            if kind is OpKind.WRITE:
                session.write_sync(value, timeout=2_000.0)
                outcomes.append(("ok", "w"))
            else:
                read_value, _ = session.read_sync(register, timeout=2_000.0)
                token = "BOTTOM" if read_value is BOTTOM else bytes(read_value)
                outcomes.append(("ok", token))
        except (OperationFailed, OperationTimeout):
            outcomes.append(("fail",))
        except ProtocolError:
            outcomes.append(("halted",))
        # A settle gap keeps consecutive ops strictly ordered in real time
        # (identical schedules across protocol stacks).
        system.run(until=system.now + 0.1)
    verdicts = tuple(
        bool(system.session(c).failed) for c in range(NUM_CLIENTS)
    )
    return tuple(outcomes), verdicts


# --------------------------------------------------------------------- #
# Honest equivalence: every backend observes the same values
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", range(8))
def test_honest_backends_observe_identical_values(seed):
    program = generate_program(seed)
    reference, reference_verdicts = execute("faust", quiet_config(seed), program)
    assert reference_verdicts == (False,) * NUM_CLIENTS
    assert all(outcome[0] == "ok" for outcome in reference)

    variants = [
        ("ustor", quiet_config(seed)),
        ("lockstep", quiet_config(seed)),
        ("cluster", quiet_config(seed, shards=1)),
        ("cluster", quiet_config(seed, shards=2)),
        ("cluster", quiet_config(seed, shards=3)),
        ("cluster", quiet_config(seed, shards=2, shard_map="hash")),
        ("cluster", quiet_config(seed, shards=2, shard_protocol="ustor")),
    ]
    for backend, config in variants:
        outcomes, verdicts = execute(backend, config, program)
        label = f"{backend}/{getattr(config, 'shards', 1)}-{config.shard_map}"
        assert outcomes == reference, f"{label} diverged from faust"
        assert verdicts == reference_verdicts, f"{label} raised a false alarm"


# --------------------------------------------------------------------- #
# Adversarial equivalence: same adversary seed, same verdicts
# --------------------------------------------------------------------- #


def deviation_factory(adversary_seed: int, probability: float = 0.2):
    def factory(n, name):
        return RandomDeviationServer(
            n, deviation_probability=probability, seed=adversary_seed, name=name
        )

    return factory


@pytest.mark.fuzz
@pytest.mark.parametrize("seed", range(12))
def test_cluster_embedding_preserves_adversarial_verdicts(seed):
    """The 1-shard cluster must be byte-for-byte the wrapped protocol:
    identical outcomes and identical detection verdicts under the same
    randomized adversary."""
    program = generate_program(100 + seed)
    factory = deviation_factory(adversary_seed=seed)
    for protocol in ("ustor", "faust"):
        single = execute(
            protocol, quiet_config(seed, server_factory=factory), program
        )
        clustered = execute(
            "cluster",
            quiet_config(
                seed,
                shards=1,
                shard_protocol=protocol,
                shard_server_factories={0: factory},
            ),
            program,
        )
        assert clustered == single, f"cluster({protocol}) != {protocol}"


@pytest.mark.fuzz
@pytest.mark.parametrize("seed", range(12))
def test_faust_and_ustor_agree_on_first_detection(seed):
    """Up to the first detection the two checked stacks are the same
    algorithm, so their outcome prefixes and the fact of detection must
    agree (after it, FAUST additionally spreads alerts — a superset)."""
    program = generate_program(200 + seed)
    factory = deviation_factory(adversary_seed=seed)
    ustor_outcomes, ustor_verdicts = execute(
        "ustor", quiet_config(seed, server_factory=factory), program
    )
    faust_outcomes, faust_verdicts = execute(
        "faust", quiet_config(seed, server_factory=factory), program
    )
    first_fail = next(
        (i for i, o in enumerate(ustor_outcomes) if o[0] != "ok"),
        len(ustor_outcomes),
    )
    assert faust_outcomes[: first_fail + 1] == ustor_outcomes[: first_fail + 1]
    assert any(ustor_verdicts) == any(faust_verdicts)
    # FAUST's alert propagation can only widen the detecting set.
    assert all(u <= f for u, f in zip(ustor_verdicts, faust_verdicts))


@pytest.mark.fuzz
@pytest.mark.parametrize("seed", range(10))
def test_detection_accuracy_on_multi_shard_clusters(seed):
    """Accuracy on the shard axis: a multi-shard cluster under per-shard
    randomized adversaries raises a verdict only if some shard's server
    actually injected a deviation, and deviation-free runs (probability
    0) are verdict-free."""
    program = generate_program(300 + seed)
    config = quiet_config(
        seed,
        shards=2,
        shard_server_factories={
            0: deviation_factory(seed, probability=0.25),
            1: deviation_factory(seed + 1, probability=0.25),
        },
    )
    system = open_system(config, backend="cluster")
    any_failed = False
    for client, kind, register, value in program:
        session = system.session(client)
        try:
            if kind is OpKind.WRITE:
                session.write_sync(value, timeout=2_000.0)
            else:
                session.read_sync(register, timeout=2_000.0)
        except (OperationFailed, OperationTimeout, ProtocolError):
            any_failed = True
        system.run(until=system.now + 0.1)
    injected = {
        shard: len(server.injected)
        for shard, server in enumerate(system.servers)
    }
    if any_failed or system.notifications.failure_events():
        assert sum(injected.values()) > 0, "verdict without any deviation"
    for event in system.notifications.failure_events():
        assert injected[event.shard] > 0, (
            f"shard {event.shard} was blamed but injected nothing"
        )

    # The probability-0 control: same programs, never a verdict.
    control_config = quiet_config(
        seed,
        shards=2,
        shard_server_factories={
            0: deviation_factory(seed, probability=0.0),
            1: deviation_factory(seed + 1, probability=0.0),
        },
    )
    control_outcomes, control_verdicts = execute(
        "cluster", control_config, program
    )
    assert control_verdicts == (False,) * NUM_CLIENTS
    assert all(o[0] == "ok" for o in control_outcomes)
