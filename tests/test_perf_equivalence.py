"""Equivalence proofs for the performance fast paths.

Every optimized hot path ships next to its reference implementation (the
executable specification); these property-based tests drive both over
randomized inputs — reusing the suite's hypothesis machinery — and assert
byte-for-byte identical outputs:

* :func:`repro.common.encoding.encode` vs ``encode_reference`` (and the
  round trip through both decoders);
* :func:`repro.common.encoding.decode` vs ``decode_reference``, including
  identical *rejection* of corrupted bytes;
* :func:`repro.ustor.digests.extend_digest` vs ``extend_digest_reference``
  (cold cache and warm cache);
* :func:`repro.crypto.hashing.hash_register_value` vs its definition
  ``hash_values("VALUE", x)``;
* the iterative view-history reconstruction vs the paper's recursive
  definition of ``VH(o)``.
"""

from __future__ import annotations

import enum

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.encoding import (
    decode,
    decode_reference,
    encode,
    encode_reference,
    reset_encoding_caches,
)
from repro.common.errors import EncodingError
from repro.common.types import BOTTOM, OpKind
from repro.crypto.hashing import hash_register_value, hash_values
from repro.ustor.client import ViewHistoryRecord
from repro.ustor.digests import (
    digest_of_sequence,
    extend_digest,
    extend_digest_reference,
    reset_chain_cache,
)
from repro.ustor.viewhistory import reconstruct_view_history


class Colour(enum.Enum):
    RED = 1
    GREEN = 2


# Scalars cover every supported tag, with ints crossing the memo bound
# and strings crossing the cached-length bound.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**30), max_value=10**30),
    st.binary(max_size=80),
    st.text(max_size=70),
    st.sampled_from(list(OpKind) + list(Colour)),
)

#: Arbitrarily nested tuples/lists of scalars (depth <= 3).
values = st.recursive(
    scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=5), st.lists(inner, max_size=5).map(tuple)
    ),
    max_leaves=20,
)


def _normalise(value):
    """What a value looks like after an encode/decode round trip."""
    if isinstance(value, (list, tuple)):
        return tuple(_normalise(item) for item in value)
    if isinstance(value, (bytearray, memoryview)):
        return bytes(value)
    return value


class TestEncodingEquivalence:
    @settings(max_examples=300, deadline=None)
    @given(st.lists(values, max_size=6))
    def test_encode_matches_reference(self, payload):
        assert encode(*payload) == encode_reference(*payload)

    @settings(max_examples=300, deadline=None)
    @given(st.lists(values, max_size=6))
    def test_decoders_agree_and_invert(self, payload):
        blob = encode(*payload)
        fast = decode(blob, enums=(OpKind, Colour))
        reference = decode_reference(blob, enums=(OpKind, Colour))
        assert fast == reference
        assert fast == tuple(_normalise(item) for item in payload)

    @settings(max_examples=200, deadline=None)
    @given(st.lists(values, max_size=4), st.data())
    def test_decoders_reject_identically(self, payload, data):
        """A corrupted byte must be rejected (or accepted) by both paths."""
        blob = bytearray(encode(*payload))
        index = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        new_byte = data.draw(st.integers(min_value=0, max_value=255))
        blob[index] = new_byte
        corrupted = bytes(blob)
        # Corrupting a str/enum payload can also surface as invalid UTF-8;
        # what matters is that both decoders fail (or succeed) identically.
        try:
            fast = decode(corrupted, enums=(OpKind, Colour))
            fast_error = None
        except (EncodingError, UnicodeDecodeError) as exc:
            fast, fast_error = None, type(exc)
        try:
            reference = decode_reference(corrupted, enums=(OpKind, Colour))
            reference_error = None
        except (EncodingError, UnicodeDecodeError) as exc:
            reference, reference_error = None, type(exc)
        assert fast_error == reference_error
        if fast_error is None:
            assert fast == reference

    def test_cold_cache_equivalence(self):
        """Equality holds from a cold cache (first-ever encodings)."""
        reset_encoding_caches()
        payload = ("COMMIT", OpKind.WRITE, 123456, b"\x01" * 32, ("x", -7))
        assert encode(*payload) == encode_reference(*payload)

    def test_memoryview_and_bytearray_inputs(self):
        raw = b"\xde\xad\xbe\xef"
        for view in (bytearray(raw), memoryview(raw)):
            assert encode(view) == encode_reference(view) == encode(raw)

    def test_unsupported_type_rejected_by_both(self):
        with pytest.raises(EncodingError):
            encode(object())
        with pytest.raises(EncodingError):
            encode_reference(object())


class TestDigestEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=63), max_size=40),
        st.integers(min_value=0, max_value=63),
    )
    def test_extend_matches_reference(self, chain, client):
        reset_chain_cache()
        digest = digest_of_sequence(chain)
        cold = extend_digest(digest, client)
        warm = extend_digest(digest, client)  # second call hits the memo
        assert cold == warm == extend_digest_reference(digest, client)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=9), max_size=30))
    def test_sequence_digest_matches_reference_fold(self, chain):
        reference = None
        for client in chain:
            reference = extend_digest_reference(reference, client)
        assert digest_of_sequence(chain) == reference

    def test_non_standard_digest_width(self):
        """The fast path special-cases 32-byte digests; other widths must
        still match the specification."""
        odd = b"\x42" * 7
        assert extend_digest(odd, 3) == extend_digest_reference(odd, 3)


class TestValueHashEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(st.binary(max_size=200))
    def test_bytes_values(self, value):
        assert hash_register_value(value) == hash_values("VALUE", value)

    def test_bottom(self):
        assert hash_register_value(BOTTOM) == hash_values("VALUE", None)


def _recursive_vh(records, op_key):
    """The paper's recursive definition of ``VH(o)`` (the specification)."""
    record = records[op_key]
    prefix = () if record.parent is None else _recursive_vh(records, record.parent)
    return prefix + record.concurrent + (record.own,)


class TestViewHistoryEquivalence:
    @settings(max_examples=100, deadline=None)
    @given(st.data())
    def test_iterative_matches_recursive(self, data):
        """Random parent-linked record sets: iterative == recursive VH."""
        num_ops = data.draw(st.integers(min_value=1, max_value=25))
        records: dict[tuple[int, int], ViewHistoryRecord] = {}
        keys: list[tuple[int, int]] = []
        for index in range(num_ops):
            key = (data.draw(st.integers(min_value=0, max_value=3)), index)
            parent = (
                None
                if not keys
                else data.draw(st.one_of(st.none(), st.sampled_from(keys)))
            )
            concurrent = tuple(
                data.draw(st.sampled_from(keys))
                for _ in range(data.draw(st.integers(min_value=0, max_value=2)))
                if keys
            )
            records[key] = ViewHistoryRecord(
                parent=parent, concurrent=concurrent, own=key
            )
            keys.append(key)
        cache: dict = {}
        for key in keys:
            assert reconstruct_view_history(records, key, cache) == _recursive_vh(
                records, key
            )

    def test_deep_chain_does_not_recurse(self):
        """A chain longer than the recursion limit must reconstruct fine."""
        records = {}
        parent = None
        for index in range(5_000):
            key = (0, index)
            records[key] = ViewHistoryRecord(parent=parent, concurrent=(), own=key)
            parent = key
        history = reconstruct_view_history(records, (0, 4_999))
        assert len(history) == 5_000
        assert history[0] == (0, 0) and history[-1] == (0, 4_999)
