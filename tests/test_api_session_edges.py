"""Edge paths of ``repro.api.session`` / ``handles``: timeouts, naming,
barrier corners.

The happy paths are covered by the facade matrix; these tests pin the
contractual *unhappy* surface: what exactly an ``OperationTimeout`` says
(operation kind, register, client — the only forensics an application
gets when a Byzantine server stonewalls), how ``barrier()`` behaves with
zero in-flight operations, during pipelined submission, and after a
client dies mid-queue.
"""

from __future__ import annotations

import pytest

from repro.api import (
    FaustBackend,
    FaustParams,
    OperationFailed,
    OperationTimeout,
    SystemConfig,
    UstorBackend,
    open_system,
)
from repro.common.errors import ProtocolError
from repro.common.types import BOTTOM
from repro.ustor.byzantine import TamperingServer, UnresponsiveServer


def stonewalled_config(victims, backend_seed=5, **overrides) -> SystemConfig:
    """A deployment whose server silently drops the victims' SUBMITs."""
    overrides.setdefault(
        "faust", FaustParams(enable_dummy_reads=False, enable_probes=False)
    )
    return SystemConfig(
        num_clients=2,
        seed=backend_seed,
        server_factory=lambda n, name: UnresponsiveServer(
            n, victims=set(victims), name=name
        ),
        **overrides,
    )


def quiet_config(**overrides) -> SystemConfig:
    overrides.setdefault(
        "faust", FaustParams(enable_dummy_reads=False, enable_probes=False)
    )
    return SystemConfig(num_clients=2, seed=5, **overrides)


# --------------------------------------------------------------------- #
# OperationTimeout naming
# --------------------------------------------------------------------- #


class TestTimeoutNaming:
    def test_write_timeout_names_kind_register_client(self):
        system = FaustBackend().open_system(stonewalled_config(victims={0}))
        handle = system.session(0).write(b"never-acked")
        with pytest.raises(OperationTimeout) as excinfo:
            handle.result(timeout=30.0)
        message = str(excinfo.value)
        assert "write" in message
        assert "X1" in message  # the client's own register
        assert "C1" in message
        assert "30.0" in message

    def test_read_timeout_names_the_target_register(self):
        system = FaustBackend().open_system(stonewalled_config(victims={1}))
        handle = system.session(1).read(0)
        with pytest.raises(OperationTimeout) as excinfo:
            handle.result(timeout=25.0)
        message = str(excinfo.value)
        assert "read" in message and "X1" in message and "C2" in message

    def test_timeout_uses_session_default_when_unspecified(self):
        system = FaustBackend().open_system(
            stonewalled_config(victims={0}, default_timeout=40.0)
        )
        session = system.session(0)
        assert session.timeout == 40.0
        handle = session.write(b"x")
        with pytest.raises(OperationTimeout, match="40.0"):
            handle.result()

    def test_timed_out_handle_is_not_settled(self):
        system = FaustBackend().open_system(stonewalled_config(victims={0}))
        handle = system.session(0).write(b"x")
        assert not handle.wait(timeout=20.0)
        assert not handle.done()
        with pytest.raises(OperationTimeout):
            handle.exception(timeout=5.0)  # exception() times out too

    def test_sync_forms_propagate_the_timeout(self):
        system = FaustBackend().open_system(stonewalled_config(victims={0}))
        session = system.session(0)
        with pytest.raises(OperationTimeout):
            session.write_sync(b"x", timeout=15.0)
        # The non-victim client is still served (unwritten -> BOTTOM).
        value, _ = system.session(1).read_sync(1, timeout=50.0)
        assert value is BOTTOM


# --------------------------------------------------------------------- #
# Timeout during pipelined submission
# --------------------------------------------------------------------- #


class TestPipelinedTimeouts:
    def test_pipelined_faust_submissions_all_time_out(self):
        system = FaustBackend().open_system(stonewalled_config(victims={0}))
        session = system.session(0)
        handles = [session.write(b"w%d" % i) for i in range(3)]
        assert session.outstanding == 3
        with pytest.raises(OperationTimeout, match=r"3 operation\(s\)"):
            session.barrier(timeout=40.0)
        assert all(not h.done() for h in handles)
        assert session.outstanding == 3  # still pending, honestly reported

    def test_backlogged_ustor_submissions_time_out_without_issuing(self):
        # USTOR clients take one op at a time; ops 2 and 3 never leave the
        # session backlog because op 1 never completes.
        system = UstorBackend().open_system(stonewalled_config(victims={0}))
        session = system.session(0)
        session.write(b"first")
        session.write(b"second")
        session.read(1)
        assert session.outstanding == 3
        assert session.client.completed_operations == 0
        with pytest.raises(OperationTimeout):
            session.barrier(timeout=40.0)
        # Only the in-flight op ever reached the wire.
        assert system.trace.message_count("SUBMIT") == 1

    def test_partial_timeout_after_partial_progress(self):
        # The server answers the first two ops then goes silent: the
        # settled handles return results, the dangling one times out.
        class StonewallAfter(UnresponsiveServer):
            def __init__(self, n, name="S"):
                super().__init__(n, victims=set(), name=name)
                self._answered = 0

            def handle_submit(self, src, message):
                if self._answered >= 2:
                    self.submits_handled += 1
                    return  # drop silently
                self._answered += 1
                super().handle_submit(src, message)

        system = FaustBackend().open_system(
            quiet_config(server_factory=lambda n, name: StonewallAfter(n, name))
        )
        session = system.session(0)
        handles = [session.write(b"w%d" % i) for i in range(3)]
        with pytest.raises(OperationTimeout, match=r"1 operation\(s\)"):
            session.barrier(timeout=60.0)
        assert [h.done() for h in handles] == [True, True, False]
        assert handles[0].result().timestamp == 1
        assert session.outstanding == 1


# --------------------------------------------------------------------- #
# Barrier corners
# --------------------------------------------------------------------- #


class TestBarrierEdges:
    def test_barrier_with_zero_inflight_returns_immediately(self):
        system = FaustBackend().open_system(quiet_config())
        session = system.session(0)
        before = system.now
        session.barrier()  # never issued anything
        assert system.now == before

    def test_barrier_after_everything_settled_is_a_noop(self):
        system = FaustBackend().open_system(quiet_config())
        session = system.session(0)
        session.write_sync(b"x")
        session.barrier()
        session.barrier()  # idempotent
        assert session.outstanding == 0

    def test_barrier_raises_the_first_failure(self):
        system = FaustBackend().open_system(
            quiet_config(
                server_factory=lambda n, name: TamperingServer(n, 0, name=name)
            )
        )
        system.session(0).write_sync(b"genuine")
        victim = system.session(1)
        victim.read(0)  # will be tampered with -> fail_i
        with pytest.raises(OperationFailed):
            victim.barrier(timeout=100.0)
        assert victim.failed
        assert victim.outstanding == 0  # failure settles everything

    def test_barrier_only_waits_for_already_issued_handles(self):
        system = FaustBackend().open_system(quiet_config())
        session = system.session(0)
        session.write(b"w1")
        session.barrier()
        handle = session.write(b"w2")  # issued after the barrier returned
        assert not handle.done()  # nothing has driven the simulation yet
        session.barrier()
        assert handle.done()

    def test_submitting_on_a_failed_session_raises_protocol_error(self):
        system = FaustBackend().open_system(
            quiet_config(
                server_factory=lambda n, name: TamperingServer(n, 0, name=name)
            )
        )
        system.session(0).write_sync(b"genuine")
        victim = system.session(1)
        with pytest.raises(OperationFailed):
            victim.read_sync(0)
        with pytest.raises(ProtocolError, match="failed and halted"):
            victim.read(0)

    def test_crashed_client_rejects_waiters(self):
        system = FaustBackend().open_system(quiet_config())
        session = system.session(0)
        handle = session.write(b"w")
        session.client.crash()
        with pytest.raises(OperationFailed, match="crashed"):
            handle.result(timeout=50.0)


# --------------------------------------------------------------------- #
# The cluster facade honours the same edge contract
# --------------------------------------------------------------------- #


class TestClusterParity:
    def test_cluster_timeout_naming_matches_single_server(self):
        single = FaustBackend().open_system(stonewalled_config(victims={0}))
        clustered = open_system(
            SystemConfig(
                num_clients=2,
                seed=5,
                shards=1,
                shard_server_factories={
                    0: lambda n, name: UnresponsiveServer(
                        n, victims={0}, name=name
                    )
                },
                faust=FaustParams(
                    enable_dummy_reads=False, enable_probes=False
                ),
            ),
            backend="cluster",
        )
        messages = []
        for system in (single, clustered):
            with pytest.raises(OperationTimeout) as excinfo:
                system.session(0).write(b"x").result(timeout=30.0)
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]
