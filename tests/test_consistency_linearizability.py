"""Linearizability checking: hand cases plus brute-force cross-validation."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CheckerError
from repro.common.types import BOTTOM, OpKind
from repro.consistency.linearizability import (
    check_linearizability,
    check_linearizability_exhaustive,
)
from repro.history.events import Operation
from repro.history.history import History
from repro.history.register_spec import is_legal_sequence

from histbuild import h, r, w


class TestLegalHistories:
    def test_empty_history(self):
        assert check_linearizability(h())

    def test_sequential_write_then_read(self):
        assert check_linearizability(h(w(0, b"a", 0, 1), r(1, 0, b"a", 2, 3)))

    def test_read_bottom_before_any_write(self):
        assert check_linearizability(h(r(1, 0, BOTTOM, 0, 1), w(0, b"a", 2, 3)))

    def test_concurrent_read_may_see_old_or_new(self):
        write = w(0, b"a", 0, 10)
        old = h(write, r(1, 0, BOTTOM, 2, 3))
        new = h(write, r(2, 0, b"a", 4, 5))
        assert check_linearizability(old)
        assert check_linearizability(new)

    def test_two_registers_compose(self):
        hist = h(
            w(0, b"a", 0, 1),
            w(1, b"b", 0, 1),
            r(2, 0, b"a", 2, 3),
            r(2, 1, b"b", 4, 5),
        )
        assert check_linearizability(hist)

    def test_read_own_write(self):
        hist = h(w(0, b"a", 0, 1), r(0, 0, b"a", 2, 3))
        assert check_linearizability(hist)

    def test_incomplete_write_read_by_other(self):
        # The pending write took effect; the read is legal.
        hist = h(w(0, b"a", 0, None), r(1, 0, b"a", 5, 6))
        assert check_linearizability(hist)

    def test_incomplete_read_ignored(self):
        hist = h(w(0, b"a", 0, 1), r(1, 0, None, 2, None))
        assert check_linearizability(hist)


class TestViolations:
    def test_stale_read(self):
        hist = h(
            w(0, b"a", 0, 1),
            w(0, b"b", 2, 3),
            r(1, 0, b"a", 4, 5),  # b completed before this read began
        )
        result = check_linearizability(hist)
        assert not result
        assert "stale" in result.violation

    def test_bottom_read_after_completed_write(self):
        hist = h(w(0, b"a", 0, 1), r(1, 0, BOTTOM, 2, 3))
        result = check_linearizability(hist)
        assert not result

    def test_value_from_the_future(self):
        hist = h(r(1, 0, b"a", 0, 1), w(0, b"a", 2, 3))
        result = check_linearizability(hist)
        assert not result
        assert "future" in result.violation

    def test_new_old_inversion(self):
        write1 = w(0, b"a", 0, 1)
        write2 = w(0, b"b", 2, 3)
        fresh = r(1, 0, b"b", 4, 5)
        stale = r(2, 0, b"a", 6, 7)
        result = check_linearizability(h(write1, write2, fresh, stale))
        assert not result

    def test_inversion_requires_real_time_order(self):
        # Reads concurrent with the second write (and with each other) may
        # legitimately disagree about whether it already happened.
        write1 = w(0, b"a", 0, 1)
        write2 = w(0, b"b", 2, 20)
        fresh = r(1, 0, b"b", 4, 10)
        stale = r(2, 0, b"a", 4, 10)
        assert check_linearizability(h(write1, write2, fresh, stale))

    def test_fabricated_value(self):
        result = check_linearizability(h(r(1, 0, b"ghost", 0, 1)))
        assert not result
        assert "never written" in result.violation

    def test_figure3_history_not_linearizable(self):
        hist = h(
            w(0, b"u", 0, 1),
            r(1, 0, BOTTOM, 2, 3),
            r(1, 0, b"u", 4, 5),
        )
        assert not check_linearizability(hist)
        assert not check_linearizability_exhaustive(hist)


class TestExhaustiveChecker:
    def test_returns_witness(self):
        hist = h(w(0, b"a", 0, 10), r(1, 0, BOTTOM, 2, 3))
        result = check_linearizability_exhaustive(hist)
        assert result
        witness = result.witness
        assert [op.op_id for op in witness] == [hist[1].op_id, hist[0].op_id]
        assert is_legal_sequence(witness)

    def test_size_cap(self):
        ops = [w(0, bytes([i]), 2 * i, 2 * i + 1) for i in range(20)]
        with pytest.raises(CheckerError):
            check_linearizability_exhaustive(h(*ops), max_ops=10)


def _random_history(rng: random.Random, num_clients: int, max_ops: int) -> History:
    """Random well-formed histories with adversarial read values.

    Read values are chosen among all written values of the register (and
    BOTTOM), irrespective of plausibility — so the sample contains both
    linearizable and non-linearizable histories.
    """
    ops = []
    op_id = 0
    clock = {c: 0.0 for c in range(num_clients)}
    writes: dict[int, list[bytes]] = {c: [] for c in range(num_clients)}
    for _ in range(max_ops):
        client = rng.randrange(num_clients)
        start = clock[client] + rng.random() * 3
        duration = rng.random() * 3
        end = start + duration
        clock[client] = end + 0.01
        if rng.random() < 0.5:
            value = f"v{op_id}".encode()
            writes[client].append(value)
            ops.append(
                Operation(op_id, client, OpKind.WRITE, client, value, start, end)
            )
        else:
            register = rng.randrange(num_clients)
            pool = writes[register]
            value = rng.choice(pool + [BOTTOM]) if pool else BOTTOM
            ops.append(
                Operation(op_id, client, OpKind.READ, register, value, start, end)
            )
        op_id += 1
    return History(ops)


class TestCrossValidation:
    """The fast checker must agree with Wing&Gong on random histories."""

    @settings(max_examples=120, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_fast_equals_exhaustive(self, seed):
        rng = random.Random(seed)
        hist = _random_history(rng, num_clients=3, max_ops=7)
        fast = check_linearizability(hist)
        slow = check_linearizability_exhaustive(hist)
        assert fast.ok == slow.ok, (
            f"disagreement on seed {seed}:\n{hist.describe()}\n"
            f"fast={fast}\nslow={slow}"
        )

    def test_seeded_regression_batch(self):
        # A fixed batch large enough to catch regressions deterministically.
        agree = 0
        for seed in range(300):
            hist = _random_history(random.Random(seed), 2, 6)
            if check_linearizability(hist).ok == check_linearizability_exhaustive(hist).ok:
                agree += 1
        assert agree == 300
