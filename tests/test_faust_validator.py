"""Definition 5 as a regression test: the whole-run validator."""

from __future__ import annotations

import random

import pytest

from repro.faust.validator import validate_fail_aware_run
from repro.ustor.byzantine import SplitBrainServer, TamperingServer
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts
from repro.workloads.runner import SystemBuilder


def run_honest(seed: int, n: int = 3, ops: int = 6, settle: float = 400.0):
    system = SystemBuilder(num_clients=n, seed=seed).build_faust(
        dummy_read_period=3.0, probe_check_period=4.0, delta=15.0
    )
    scripts = generate_scripts(
        n, WorkloadConfig(ops_per_client=ops, mean_think_time=1.0), random.Random(seed)
    )
    driver = Driver(system)
    driver.attach_all(scripts)
    assert driver.run_to_completion(timeout=100_000)
    cutoff = system.now
    system.run(until=system.now + settle)
    return system, cutoff


class TestHonestRuns:
    @pytest.mark.parametrize("seed", range(4))
    def test_all_conditions_hold(self, seed):
        system, cutoff = run_honest(seed)
        report = validate_fail_aware_run(
            system, server_correct=True, completeness_cutoff=cutoff
        )
        assert report.ok, report.render()
        assert len(report.conditions) == 7

    def test_report_renders(self):
        system, cutoff = run_honest(10)
        report = validate_fail_aware_run(
            system, server_correct=True, completeness_cutoff=cutoff
        )
        text = report.render()
        assert text.count("[OK ]") == 7
        assert "detection completeness" in text

    def test_with_a_crashed_client(self):
        system = SystemBuilder(num_clients=3, seed=5).build_faust(
            dummy_read_period=3.0, probe_check_period=4.0, delta=15.0
        )
        scripts = generate_scripts(
            3, WorkloadConfig(ops_per_client=6, mean_think_time=1.0), random.Random(5)
        )
        driver = Driver(system)
        driver.attach_all(scripts)
        system.crash_client_at(2, time=8.0)
        system.run(until=60.0)
        cutoff = system.now
        system.run(until=system.now + 500.0)
        report = validate_fail_aware_run(
            system, server_correct=True, completeness_cutoff=cutoff
        )
        # Crashed clients are exempt from every quantifier over correct
        # clients; all conditions must still hold for the survivors.
        assert report.ok, report.render()


class TestByzantineRuns:
    def test_split_brain_run_satisfies_definition(self):
        groups = [{0, 1}, {2, 3}]
        system = SystemBuilder(
            num_clients=4,
            seed=7,
            server_factory=lambda n, name: SplitBrainServer(
                n, groups=groups, fork_time=10.0, name=name
            ),
        ).build_faust(dummy_read_period=3.0, probe_check_period=4.0, delta=15.0)
        scripts = generate_scripts(
            4, WorkloadConfig(ops_per_client=6, mean_think_time=1.0), random.Random(7)
        )
        driver = Driver(system)
        driver.attach_all(scripts)
        system.run(until=900.0)
        report = validate_fail_aware_run(
            system, server_correct=False, completeness_cutoff=300.0
        )
        # Under the attack: causality + integrity + accuracy + stability
        # accuracy hold, and completeness is discharged by system-wide fail.
        assert report.ok, report.render()
        assert all(c.faust_failed for c in system.clients)

    def test_tampering_run_satisfies_definition(self):
        system = SystemBuilder(
            num_clients=3,
            seed=8,
            server_factory=lambda n, name: TamperingServer(n, 0, name=name),
        ).build_faust(dummy_read_period=3.0, probe_check_period=4.0, delta=15.0)
        done = []
        system.clients[0].write(b"x", done.append)
        system.run_until(lambda: bool(done), timeout=100)
        system.clients[1].read(0, done.append)
        system.run(until=system.now + 400)
        report = validate_fail_aware_run(
            system, server_correct=False, completeness_cutoff=50.0
        )
        assert report.ok, report.render()

    def test_validator_catches_misattributed_correctness(self):
        # Claiming the server was correct when it tampered must FAIL the
        # accuracy condition — the validator is not a rubber stamp.
        system = SystemBuilder(
            num_clients=2,
            seed=9,
            server_factory=lambda n, name: TamperingServer(n, 0, name=name),
        ).build_faust(dummy_read_period=3.0)
        done = []
        system.clients[0].write(b"x", done.append)
        system.run_until(lambda: bool(done), timeout=100)
        system.clients[1].read(0, lambda o: None)
        system.run(until=system.now + 200)
        report = validate_fail_aware_run(system, server_correct=True)
        assert not report.ok
        assert any(
            "accuracy" in result.condition for result in report.failures()
        )
