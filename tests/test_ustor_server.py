"""Algorithm 2 state machine unit tests (apply_submit / apply_commit)."""

from __future__ import annotations

from repro.common.types import BOTTOM, OpKind
from repro.crypto.keystore import KeyStore
from repro.ustor.messages import (
    CommitMessage,
    InvocationTuple,
    SubmitMessage,
)
from repro.ustor.server import ServerState, apply_commit, apply_submit
from repro.ustor.version import Version

STORE = KeyStore(3, scheme="hmac")


def submit(client, kind, register, t, value=None):
    signer = STORE.signer(client)
    return SubmitMessage(
        timestamp=t,
        invocation=InvocationTuple(
            client=client,
            opcode=kind,
            register=register,
            submit_sig=signer.sign("SUBMIT", kind, register, t),
        ),
        value=value,
        data_sig=signer.sign("DATA", t, b"h"),
    )


def commit(client, vector, digests=None):
    signer = STORE.signer(client)
    version = Version(
        tuple(vector),
        tuple(digests) if digests else tuple(b"d%d" % v if v else None for v in vector),
    )
    return CommitMessage(
        version=version,
        commit_sig=signer.sign("COMMIT", version.vector, version.digests),
        proof_sig=signer.sign("PROOF", version.digests[client]),
    )


class TestApplySubmit:
    def test_write_stores_value(self):
        state = ServerState.initial(3)
        apply_submit(state, submit(0, OpKind.WRITE, 0, 1, b"v"))
        assert state.mem[0].value == b"v"
        assert state.mem[0].timestamp == 1

    def test_read_keeps_value_updates_timestamp(self):
        state = ServerState.initial(3)
        apply_submit(state, submit(0, OpKind.WRITE, 0, 1, b"v"))
        apply_submit(state, submit(0, OpKind.READ, 1, 2))
        assert state.mem[0].value == b"v"  # value untouched
        assert state.mem[0].timestamp == 2  # timestamp refreshed

    def test_reply_excludes_own_invocation(self):
        state = ServerState.initial(3)
        reply = apply_submit(state, submit(0, OpKind.WRITE, 0, 1, b"v"))
        assert reply.pending == ()
        assert [t.client for t in state.pending] == [0]

    def test_pending_accumulates_in_schedule_order(self):
        state = ServerState.initial(3)
        apply_submit(state, submit(0, OpKind.WRITE, 0, 1, b"v"))
        reply = apply_submit(state, submit(1, OpKind.READ, 0, 1))
        assert [t.client for t in reply.pending] == [0]
        assert [t.client for t in state.pending] == [0, 1]

    def test_read_reply_carries_register_payload(self):
        state = ServerState.initial(3)
        apply_submit(state, submit(0, OpKind.WRITE, 0, 1, b"v"))
        reply = apply_submit(state, submit(1, OpKind.READ, 0, 1))
        assert reply.mem is not None and reply.mem.value == b"v"
        assert reply.reader_version is not None

    def test_write_reply_has_no_register_payload(self):
        state = ServerState.initial(3)
        reply = apply_submit(state, submit(0, OpKind.WRITE, 0, 1, b"v"))
        assert reply.mem is None and reply.reader_version is None

    def test_read_own_register_sees_refreshed_timestamp(self):
        state = ServerState.initial(2)
        apply_submit(state, submit(0, OpKind.WRITE, 0, 1, b"v"))
        reply = apply_submit(state, submit(0, OpKind.READ, 0, 2))
        # MEM[i] is updated before MEM[j] is read (lines 109-111), and
        # i == j here, so the reply carries the read's own timestamp.
        assert reply.mem is not None and reply.mem.timestamp == 2
        assert reply.mem.value == b"v"

    def test_never_written_register_reads_bottom(self):
        state = ServerState.initial(2)
        reply = apply_submit(state, submit(0, OpKind.READ, 1, 1))
        assert reply.mem is not None
        assert reply.mem.value is BOTTOM and reply.mem.timestamp == 0


class TestApplyCommit:
    def test_commit_updates_sver_and_proofs(self):
        state = ServerState.initial(3)
        apply_submit(state, submit(0, OpKind.WRITE, 0, 1, b"v"))
        message = commit(0, [1, 0, 0])
        apply_commit(state, 0, message)
        assert state.sver[0].version == message.version
        assert state.proofs[0] == message.proof_sig

    def test_dominating_commit_moves_index_and_prunes(self):
        state = ServerState.initial(3)
        apply_submit(state, submit(0, OpKind.WRITE, 0, 1, b"v"))
        apply_submit(state, submit(1, OpKind.READ, 0, 1))
        apply_commit(state, 0, commit(0, [1, 0, 0]))
        assert state.commit_index == 0
        assert [t.client for t in state.pending] == [1]
        apply_commit(state, 1, commit(1, [1, 1, 0]))
        assert state.commit_index == 1
        assert state.pending == []

    def test_stale_commit_does_not_regress_index(self):
        state = ServerState.initial(3)
        apply_submit(state, submit(0, OpKind.WRITE, 0, 1, b"v"))
        apply_submit(state, submit(1, OpKind.READ, 0, 1))
        # The later-scheduled op's commit arrives first.
        apply_commit(state, 1, commit(1, [1, 1, 0]))
        assert state.commit_index == 1
        # Now the earlier op's commit arrives: no domination, index stays.
        apply_commit(state, 0, commit(0, [1, 0, 0]))
        assert state.commit_index == 1
        assert state.sver[0].version.vector == (1, 0, 0)

    def test_prune_removes_all_preceding_tuples(self):
        state = ServerState.initial(3)
        apply_submit(state, submit(0, OpKind.WRITE, 0, 1, b"v"))
        apply_submit(state, submit(1, OpKind.READ, 0, 1))
        apply_submit(state, submit(2, OpKind.READ, 0, 1))
        apply_commit(state, 1, commit(1, [1, 1, 0]))
        # C2's tuple and everything before it (C1's) are gone; C3 remains.
        assert [t.client for t in state.pending] == [2]


class TestClone:
    def test_clone_is_independent(self):
        state = ServerState.initial(2)
        apply_submit(state, submit(0, OpKind.WRITE, 0, 1, b"v"))
        snapshot = state.clone()
        apply_submit(state, submit(1, OpKind.READ, 0, 1))
        apply_commit(state, 0, commit(0, [1, 0]))
        assert snapshot.pending != state.pending
        assert snapshot.sver[0].version.is_zero
        assert snapshot.mem[0].value == b"v"  # shared immutable entry is fine
