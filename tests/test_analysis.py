"""Analysis utilities: regression fits, table rendering, trace reductions."""

from __future__ import annotations

import pytest

from repro.analysis.stats import (
    bytes_per_operation,
    critical_path_rounds,
    linear_fit,
    messages_per_operation,
)
from repro.analysis.tables import format_table
from repro.sim.trace import SimTrace


class TestLinearFit:
    def test_perfect_line(self):
        fit = linear_fit([1, 2, 3, 4], [3, 5, 7, 9])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = linear_fit([0, 1], [0, 10])
        assert fit.predict(2) == pytest.approx(20.0)

    def test_noisy_line_r_squared_below_one(self):
        fit = linear_fit([1, 2, 3, 4], [2.0, 4.1, 5.9, 8.2])
        assert 0.9 < fit.r_squared <= 1.0

    def test_constant_y(self):
        fit = linear_fit([1, 2, 3], [5, 5, 5])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_degenerate_inputs_rejected(self):
        with pytest.raises(ValueError):
            linear_fit([1], [1])
        with pytest.raises(ValueError):
            linear_fit([1, 1], [1, 2])
        with pytest.raises(ValueError):
            linear_fit([1, 2], [1, 2, 3])


class TestTraceReductions:
    def _trace(self):
        trace = SimTrace()
        for _ in range(4):
            trace.record_message(0, 1, "C1", "S", "SUBMIT", 100)
            trace.record_message(1, 2, "S", "C1", "REPLY", 300)
            trace.record_message(2, 3, "C1", "S", "COMMIT", 200)
        return trace

    def test_bytes_per_operation(self):
        trace = self._trace()
        assert bytes_per_operation(trace, 4, ["SUBMIT", "REPLY", "COMMIT"]) == 600

    def test_messages_per_operation(self):
        assert messages_per_operation(self._trace(), 4, ["SUBMIT", "REPLY", "COMMIT"]) == 3

    def test_critical_path_rounds(self):
        assert critical_path_rounds(self._trace(), 4) == 1.0

    def test_zero_operations_rejected(self):
        with pytest.raises(ValueError):
            bytes_per_operation(self._trace(), 0, ["SUBMIT"])


class TestTables:
    def test_alignment_and_title(self):
        text = format_table(
            ["n", "bytes/op"],
            [[2, 100.5], [16, 800.25]],
            title="E4",
        )
        lines = text.splitlines()
        assert lines[0] == "E4"
        assert lines[1].startswith("n")
        assert "100.500" in text and "800.250" in text

    def test_bool_rendering(self):
        text = format_table(["claim", "holds"], [["wait-free", True], ["blocking", False]])
        assert "yes" in text and "no" in text

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text
