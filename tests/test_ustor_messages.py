"""Wire-size model of the protocol messages (the basis of E4)."""

from __future__ import annotations

from repro.common.types import BOTTOM, OpKind
from repro.crypto.hashing import HASH_BYTES
from repro.crypto.signatures import SIGNATURE_BYTES
from repro.ustor.messages import (
    CommitMessage,
    InvocationTuple,
    MemEntry,
    ReplyMessage,
    SignedVersion,
    SubmitMessage,
    version_wire_size,
)
from repro.ustor.version import Version

SIG = b"\x01" * SIGNATURE_BYTES
DIGEST = b"\x02" * HASH_BYTES


def make_version(n: int, filled: int | None = None) -> Version:
    filled = n if filled is None else filled
    return Version(
        tuple(1 if i < filled else 0 for i in range(n)),
        tuple(DIGEST if i < filled else None for i in range(n)),
    )


def invocation() -> InvocationTuple:
    return InvocationTuple(client=0, opcode=OpKind.WRITE, register=0, submit_sig=SIG)


class TestVersionSize:
    def test_linear_in_population(self):
        small = version_wire_size(make_version(4))
        large = version_wire_size(make_version(8))
        assert large == 2 * small

    def test_empty_digests_cost_one_byte(self):
        full = version_wire_size(make_version(4, filled=4))
        empty = version_wire_size(make_version(4, filled=0))
        assert full - empty == 4 * (HASH_BYTES - 1)

    def test_signed_version_adds_signature(self):
        version = make_version(4)
        signed = SignedVersion(version=version, commit_sig=SIG)
        assert signed.wire_size() == version_wire_size(version) + SIGNATURE_BYTES

    def test_zero_signed_version_marker(self):
        signed = SignedVersion.zero(4)
        assert signed.wire_size() == version_wire_size(Version.zero(4)) + 1


class TestSubmitSize:
    def test_write_carries_value(self):
        base = SubmitMessage(
            timestamp=1, invocation=invocation(), value=b"x" * 100, data_sig=SIG
        )
        empty = SubmitMessage(
            timestamp=1, invocation=invocation(), value=None, data_sig=SIG
        )
        assert base.wire_size() - empty.wire_size() == 99  # marker byte vs 100

    def test_piggyback_adds_commit_size(self):
        commit = CommitMessage(version=make_version(4), commit_sig=SIG, proof_sig=SIG)
        plain = SubmitMessage(
            timestamp=1, invocation=invocation(), value=None, data_sig=SIG
        )
        stuffed = SubmitMessage(
            timestamp=1,
            invocation=invocation(),
            value=None,
            data_sig=SIG,
            piggyback=commit,
        )
        assert stuffed.wire_size() == plain.wire_size() + commit.wire_size()

    def test_submit_size_independent_of_population(self):
        # SUBMIT carries no vectors: O(1) in n.
        assert (
            SubmitMessage(1, invocation(), None, SIG).wire_size()
            == SubmitMessage(1, invocation(), None, SIG).wire_size()
        )


class TestReplySize:
    def _reply(self, n: int, pending: int = 0, read: bool = False) -> ReplyMessage:
        return ReplyMessage(
            commit_index=0,
            last_version=SignedVersion(make_version(n), SIG),
            pending=tuple(invocation() for _ in range(pending)),
            proofs=tuple(SIG for _ in range(n)),
            reader_version=SignedVersion(make_version(n), SIG) if read else None,
            mem=MemEntry(1, b"v" * 10, SIG) if read else None,
        )

    def test_linear_in_population(self):
        small = self._reply(4).wire_size()
        large = self._reply(8).wire_size()
        # V (8B/entry) + M (32B/entry) + P (64B/entry).
        assert large - small == 4 * (8 + HASH_BYTES + SIGNATURE_BYTES)

    def test_pending_entries_additive(self):
        base = self._reply(4).wire_size()
        plus2 = self._reply(4, pending=2).wire_size()
        assert plus2 == base + 2 * invocation().wire_size()

    def test_read_reply_larger_than_write_reply(self):
        write_reply = self._reply(4, read=False).wire_size()
        read_reply = self._reply(4, read=True).wire_size()
        assert read_reply > write_reply

    def test_bottom_mem_entry_is_small(self):
        empty = MemEntry.initial()
        assert empty.wire_size() < MemEntry(1, b"v" * 100, SIG).wire_size()


class TestCommitSize:
    def test_commit_is_version_plus_two_signatures(self):
        version = make_version(6)
        commit = CommitMessage(version=version, commit_sig=SIG, proof_sig=SIG)
        assert (
            commit.wire_size()
            == 1 + version_wire_size(version) + 2 * SIGNATURE_BYTES
        )

    def test_kinds(self):
        assert SubmitMessage(1, invocation(), None, SIG).kind == "SUBMIT"
        assert CommitMessage(make_version(2), SIG, SIG).kind == "COMMIT"
        assert (
            ReplyMessage(0, SignedVersion.zero(2), (), (None, None)).kind == "REPLY"
        )
