"""Multi-process deployments: ``repro serve`` children under a supervisor.

These spawn real OS processes (``python -m repro serve``), so they carry
the ``slow`` marker and run in the extended CI job; the single-process
loopback equivalents in ``test_net_loopback.py`` stay in tier-1.

The headline test is the issue's acceptance scenario end-to-end: a full
audited workload against a separately-running server process, recorded
to a wire trace, replayed on the simulator to the identical history and
checker verdicts — driven once through the library and once through the
CLI (``repro run --transport tcp`` / ``repro replay``).
"""

from __future__ import annotations

import os
import random
import signal
import time

import pytest

from repro.api.session import as_session
from repro.cli import main
from repro.common.errors import ConfigurationError
from repro.consistency.causal import check_causal_consistency
from repro.consistency.linearizability import check_linearizability
from repro.consistency.weak_fork import validate_weak_fork_linearizability
from repro.net.client import open_tcp_system
from repro.net.supervisor import ClusterSupervisor, ServerProcess
from repro.net.trace import history_signature, replay_trace
from repro.ustor.viewhistory import build_client_views
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts

pytestmark = [pytest.mark.net, pytest.mark.slow]


class TestServerProcess:
    def test_audited_workload_records_and_replays(self, tmp_path):
        trace_path = tmp_path / "run.jsonl"
        with ServerProcess(3) as proc:
            system = open_tcp_system(
                3, (proc.endpoint,), trace_path=str(trace_path),
                default_timeout=10.0,
            )
            with system:
                scripts = generate_scripts(
                    3,
                    WorkloadConfig(
                        ops_per_client=5,
                        read_fraction=0.5,
                        mean_think_time=0.005,
                    ),
                    random.Random(13),
                )
                driver = Driver(system)
                driver.attach_all(scripts)
                assert driver.run_to_completion(timeout=30.0)
                system.run_until_quiescent(timeout=5.0)
                history = system.history()
                assert len(history) == 15
                assert not any(c.failed for c in system.clients)
                assert check_linearizability(history).ok
                assert check_causal_consistency(history).ok
                views = build_client_views(
                    history, system.recorder, system.clients
                )
                assert validate_weak_fork_linearizability(history, views).ok

        result = replay_trace(str(trace_path))
        assert result.divergences == []
        assert history_signature(result.history) == history_signature(history)
        assert check_linearizability(result.history).ok
        assert not result.fail_reasons()

    def test_sigkill_and_restart_over_durable_storage(self, tmp_path):
        # The hard crash: no atexit, no flush, mid-deployment.  A new
        # process over the same dir: recovers from the WAL and the
        # clients ride it out with reconnect + retransmission.
        storage = f"dir:{tmp_path / 'srv'}"
        proc = ServerProcess(2, storage=storage)
        endpoint = proc.start()
        host, port = endpoint.split(":")
        try:
            system = open_tcp_system(2, (endpoint,), default_timeout=15.0)
            with system:
                session = as_session(system, 0)
                assert session.write_sync(b"survives") == 1
                os.kill(proc.process.pid, signal.SIGKILL)
                proc.process.wait(timeout=10)
                handle = session.write(b"after-kill")

                proc = ServerProcess(
                    2, host=host, port=int(port), storage=storage
                )
                proc.start()
                assert handle.result(15.0).timestamp == 2
                value, _t = session.read_sync(0)
                assert value == b"after-kill"
                assert not system.clients[0].failed
                assert sum(c.reconnects for c in system.connections) >= 1
        finally:
            proc.stop()

    def test_byzantine_child_process(self):
        with ServerProcess(2, server="tampering") as proc:
            system = open_tcp_system(2, (proc.endpoint,), default_timeout=5.0)
            with system:
                as_session(system, 0).write_sync(b"genuine")
                reader = as_session(system, 1, timeout=2.0)
                with pytest.raises(Exception):
                    reader.read_sync(0)
                system.run_until_quiescent(timeout=2.0)
                assert system.clients[1].failed
                assert "line 50" in system.clients[1].fail_reason

    def test_unstartable_child_reports_its_output(self):
        bad = ServerProcess(2, extra_args=("--server", "no-such-behaviour"))
        with pytest.raises(ConfigurationError, match="no-such-behaviour"):
            bad.start(timeout=15)


class TestClusterSupervisor:
    def test_each_shard_is_its_own_process_and_server(self, tmp_path):
        storage = str(tmp_path / "shard-{shard}")
        with ClusterSupervisor(
            2, 2, storage=f"dir:{storage}"
        ) as supervisor:
            assert len(supervisor.endpoints) == 2
            pids = {p.process.pid for p in supervisor.processes}
            assert len(pids) == 2
            for shard, endpoint in enumerate(supervisor.endpoints):
                system = open_tcp_system(
                    2,
                    (endpoint,),
                    server_name=f"S{shard}",
                    default_timeout=10.0,
                )
                with system:
                    session = as_session(system, 0)
                    assert session.write_sync(f"shard-{shard}".encode()) == 1
                assert os.path.isdir(storage.format(shard=shard))


class TestCliOverTcp:
    def test_run_record_check_then_replay(self, tmp_path, capsys):
        trace_path = tmp_path / "cli.jsonl"
        with ServerProcess(2) as proc:
            code = main(
                [
                    "run",
                    "--transport", "tcp",
                    "--endpoints", proc.endpoint,
                    "--clients", "2",
                    "--ops", "4",
                    "--seed", "3",
                    "--check",
                    "--trace-file", str(trace_path),
                ]
            )
        out = capsys.readouterr().out
        assert code == 0
        assert "completed 8/8" in out
        assert "linearizability: OK" in out
        assert "weak-fork-linearizability: OK" in out

        code = main(["replay", "--trace", str(trace_path), "--check"])
        out = capsys.readouterr().out
        assert code == 0
        assert "replay equivalent to recording: yes" in out
        assert "linearizability: OK" in out

    def test_serve_cluster_children_survive_babysitting(self, tmp_path):
        # serve-cluster itself is interactive (runs until SIGINT); here we
        # just exercise its supervisor teardown path: a child that dies is
        # noticed and the command exits non-zero.
        supervisor = ClusterSupervisor(2, 2)
        supervisor.start()
        try:
            assert all(
                p.process.poll() is None for p in supervisor.processes
            )
        finally:
            supervisor.stop()
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if all(p.process.poll() is not None for p in supervisor.processes):
                break
            time.sleep(0.05)
        assert all(p.process.poll() is not None for p in supervisor.processes)
