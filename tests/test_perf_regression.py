"""Tests of the BENCH_*.json benchmark-regression pipeline."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.perf.regression import compare, load_results, main

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "benchmarks" / "results" / "BENCH_baseline.json"


def _payload(hot_paths=None, tests=None, gate=True):
    return {
        "schema": "repro-bench-v1",
        "seed": 1,
        "hot_paths": {
            name: {
                "reference_seconds": speedup,
                "optimized_seconds": 1.0,
                "speedup": speedup,
                "gate": gate,
            }
            for name, speedup in (hot_paths or {}).items()
        },
        "tests": [
            {"id": name, "call_seconds": seconds}
            for name, seconds in (tests or {}).items()
        ],
    }


class TestCompare:
    def test_identical_runs_pass(self):
        payload = _payload(hot_paths={"digest": 3.0}, tests={"t": 1.0})
        report = compare(payload, payload, absolute=True)
        assert report.ok
        assert not report.regressions

    def test_speedup_drop_beyond_threshold_fails(self):
        baseline = _payload(hot_paths={"digest": 3.0})
        current = _payload(hot_paths={"digest": 2.0})  # -33% < -20%
        report = compare(baseline, current, max_regression=0.20)
        assert not report.ok
        assert [d.name for d in report.regressions] == ["digest"]

    def test_speedup_drop_within_threshold_passes(self):
        baseline = _payload(hot_paths={"digest": 3.0})
        current = _payload(hot_paths={"digest": 2.7})  # -10%
        assert compare(baseline, current, max_regression=0.20).ok

    def test_missing_hot_path_fails(self):
        baseline = _payload(hot_paths={"digest": 3.0})
        current = _payload(hot_paths={})
        report = compare(baseline, current)
        assert not report.ok
        assert report.missing_hot_paths == ["digest"]

    def test_new_hot_path_is_a_note_not_a_failure(self):
        baseline = _payload(hot_paths={})
        current = _payload(hot_paths={"shiny": 9.0})
        report = compare(baseline, current)
        assert report.ok
        assert any("shiny" in note for note in report.notes)

    def test_ungated_hot_path_never_fails(self):
        """``gate: false`` ratios (machine properties) are informational:
        reported, but neither a drop nor a disappearance fails the run."""
        baseline = _payload(hot_paths={"machine_ratio": 20.0}, gate=False)
        dropped = compare(baseline, _payload(hot_paths={"machine_ratio": 2.0}, gate=False))
        assert dropped.ok
        assert any(d.kind == "hot_path_info" for d in dropped.deltas)
        assert "informational" in dropped.render()
        missing = compare(baseline, _payload(hot_paths={}))
        assert missing.ok
        assert any("machine_ratio" in note for note in missing.notes)

    def test_gate_defaults_to_true_for_old_baselines(self):
        baseline = _payload(hot_paths={"digest": 3.0})
        for entry in baseline["hot_paths"].values():
            del entry["gate"]
        report = compare(baseline, _payload(hot_paths={"digest": 1.0}))
        assert not report.ok

    def test_absolute_gate_is_opt_in(self):
        baseline = _payload(tests={"slow_test": 1.0})
        current = _payload(tests={"slow_test": 10.0})
        assert compare(baseline, current).ok  # ratios only by default
        report = compare(baseline, current, absolute=True)
        assert not report.ok

    def test_absolute_gate_ignores_noise_floor(self):
        baseline = _payload(tests={"tiny": 0.001})
        current = _payload(tests={"tiny": 0.004})  # 4x but sub-threshold
        assert compare(baseline, current, absolute=True, min_seconds=0.05).ok

    def test_improvements_never_fail(self):
        baseline = _payload(hot_paths={"digest": 2.0}, tests={"t": 2.0})
        current = _payload(hot_paths={"digest": 9.0}, tests={"t": 0.2})
        assert compare(baseline, current, absolute=True).ok

    def test_report_render_and_json(self):
        baseline = _payload(hot_paths={"digest": 3.0})
        current = _payload(hot_paths={"digest": 1.0})
        report = compare(baseline, current)
        text = report.render()
        assert "REGRESSION" in text and "FAIL" in text
        payload = report.to_json()
        assert payload["ok"] is False
        json.dumps(payload)


class TestLoadResults:
    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "not-ours"}))
        with pytest.raises(ValueError):
            load_results(path)

    def test_committed_baseline_is_loadable(self):
        payload = load_results(BASELINE)
        assert payload["hot_paths"], "baseline must carry hot-path ratios"
        for entry in payload["hot_paths"].values():
            if entry.get("gate", True):
                # Gated ratios are genuine speedups; informational ones
                # may legitimately hover at 1.0 (they record where the
                # wall-clock does NOT move, e.g. the unaudited pipeline).
                assert entry["speedup"] > 1.0
            else:
                assert entry["speedup"] > 0.0


class TestCli:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_pass_exit_zero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _payload(hot_paths={"d": 3.0}))
        cur = self._write(tmp_path, "cur.json", _payload(hot_paths={"d": 3.1}))
        assert main([base, cur]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_regression_exit_one(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _payload(hot_paths={"d": 3.0}))
        cur = self._write(tmp_path, "cur.json", _payload(hot_paths={"d": 1.0}))
        assert main([base, cur]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _payload(hot_paths={"d": 2.0}))
        cur = self._write(tmp_path, "cur.json", _payload(hot_paths={"d": 2.0}))
        assert main([base, cur, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["ok"] is True

    def test_unreadable_file_exit_two(self, tmp_path):
        assert main([str(tmp_path / "missing.json"), str(tmp_path / "x.json")]) == 2

    def test_malformed_hot_path_entry_exit_two(self, tmp_path, capsys):
        """A schema-tagged file with a broken hot_paths entry must produce
        the clean error path, not a traceback."""
        broken = _payload(hot_paths={"d": 2.0})
        del broken["hot_paths"]["d"]["speedup"]
        base = self._write(tmp_path, "base.json", broken)
        cur = self._write(tmp_path, "cur.json", _payload(hot_paths={"d": 2.0}))
        assert main([base, cur]) == 2
        assert "error:" in capsys.readouterr().err

    def test_baseline_against_itself(self):
        assert main([str(BASELINE), str(BASELINE)]) == 0


def test_keep_rotates_even_when_comparison_fails(tmp_path, capsys):
    """A broken comparison (exit 2) must still run --keep rotation —
    unbounded result growth is exactly what the flag exists to stop."""
    results = tmp_path / "results"
    results.mkdir()
    for stamp in ("20260101T000001", "20260101T000002", "20260101T000003"):
        (results / f"BENCH_{stamp}.json").write_text("{}")
    bad = tmp_path / "corrupt.json"
    bad.write_text("not json")
    status = main(
        [str(bad), str(bad), "--keep", "1", "--results-dir", str(results)]
    )
    assert status == 2
    kept = sorted(p.name for p in results.glob("BENCH_*.json"))
    assert kept == ["BENCH_20260101T000003.json"]
