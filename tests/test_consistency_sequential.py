"""Sequential consistency and its place in the lattice."""

from __future__ import annotations

import random

import pytest

from repro.common.errors import CheckerError
from repro.common.types import BOTTOM
from repro.consistency.causal import check_causal_consistency
from repro.consistency.linearizability import check_linearizability
from repro.consistency.sequential import check_sequential_consistency_exhaustive

from histbuild import h, r, w
from test_consistency_linearizability import _random_history


class TestSequentialConsistency:
    def test_sequential_history(self):
        assert check_sequential_consistency_exhaustive(
            h(w(0, b"a", 0, 1), r(1, 0, b"a", 2, 3))
        )

    def test_real_time_violation_allowed(self):
        # A read returning a stale value after a newer write completed is
        # NOT linearizable but IS sequentially consistent (the read can be
        # ordered before the write, program order permitting).
        hist = h(
            w(0, b"a", 0, 1),
            w(0, b"b", 2, 3),
            r(1, 0, b"a", 10, 11),
        )
        assert not check_linearizability(hist)
        assert check_sequential_consistency_exhaustive(hist)

    def test_program_order_still_binds(self):
        # The same client reading b then a cannot be serialised.
        hist = h(
            w(0, b"a", 0, 1),
            w(0, b"b", 2, 3),
            r(1, 0, b"b", 4, 5),
            r(1, 0, b"a", 6, 7),
        )
        assert not check_sequential_consistency_exhaustive(hist)

    def test_witness_is_legal_order(self):
        hist = h(w(0, b"a", 0, 1), r(1, 0, BOTTOM, 2, 3))
        result = check_sequential_consistency_exhaustive(hist)
        assert result
        assert [op.op_id for op in result.witness] == [hist[1].op_id, hist[0].op_id]

    def test_figure3_not_sequentially_consistent(self):
        # C2 reads BOTTOM then u: the single total order would need the
        # write between C2's reads — fine! <r_bottom, w, r_u> IS legal and
        # preserves program order, so Figure 3 *is* sequentially
        # consistent (the forking notions diverge from SC elsewhere).
        hist = h(w(0, b"u", 0, 1), r(1, 0, BOTTOM, 2, 3), r(1, 0, b"u", 4, 5))
        assert check_sequential_consistency_exhaustive(hist)

    def test_cap(self):
        ops = [w(0, bytes([i]), 2 * i, 2 * i + 1) for i in range(15)]
        with pytest.raises(CheckerError):
            check_sequential_consistency_exhaustive(h(*ops), max_ops=10)


class TestLatticePosition:
    def test_linearizable_implies_sequential(self):
        for seed in range(60):
            hist = _random_history(random.Random(seed), 2, 6)
            if check_linearizability(hist).ok:
                assert check_sequential_consistency_exhaustive(hist).ok, f"seed {seed}"

    def test_sequential_implies_causal(self):
        for seed in range(60):
            hist = _random_history(random.Random(seed), 2, 6)
            if check_sequential_consistency_exhaustive(hist).ok:
                assert check_causal_consistency(hist).ok, f"seed {seed}"

    def test_causal_does_not_imply_sequential(self):
        # The classic: two clients disagree about the order of two
        # concurrent writes — causal, not sequentially consistent.
        hist = h(
            w(0, b"a", 0, 1),
            w(1, b"b", 0, 1),
            r(2, 0, b"a", 2, 3),
            r(2, 1, BOTTOM, 4, 5),
            r(3, 1, b"b", 2, 3),
            r(3, 0, BOTTOM, 4, 5),
        )
        assert check_causal_consistency(hist)
        assert not check_sequential_consistency_exhaustive(hist)
