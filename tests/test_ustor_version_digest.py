"""Versions (Definition 7) and the digest chain."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ProtocolError
from repro.ustor.digests import EMPTY_DIGEST, digest_of_sequence, extend_digest
from repro.ustor.version import Version, max_version


def v(vector, digests=None):
    if digests is None:
        digests = tuple(
            digest_of_sequence(range(t)) if t else None for t in vector
        )
    return Version(tuple(vector), tuple(digests))


class TestVersionBasics:
    def test_zero(self):
        z = Version.zero(3)
        assert z.is_zero and z.vector == (0, 0, 0) and z.digests == (None,) * 3

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ProtocolError):
            Version((0, 0), (None,))

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ProtocolError):
            Version((-1,), (None,))

    def test_total_operations(self):
        assert v([2, 3]).total_operations() == 5

    def test_timestamp_of(self):
        assert v([2, 3]).timestamp_of(1) == 3


class TestDefinition7Order:
    def test_zero_below_everything_honest(self):
        z = Version.zero(2)
        other = v([1, 2])
        assert z.le(other)
        assert not other.le(z)

    def test_vector_dominance_required(self):
        assert not v([2, 0]).le(v([1, 5]))

    def test_equal_entries_need_equal_digests(self):
        d1 = extend_digest(None, 0)
        d2 = extend_digest(extend_digest(None, 1), 0)
        a = Version((1, 0), (d1, None))
        b = Version((1, 1), (d2, extend_digest(None, 1)))
        # a.vector <= b.vector but digests differ at the equal entry 0.
        assert not a.le(b)

    def test_le_with_digest_agreement(self):
        d1 = extend_digest(None, 0)
        a = Version((1, 0), (d1, None))
        b = Version((1, 1), (d1, extend_digest(d1, 1)))
        assert a.le(b)
        assert a.lt(b)
        assert a.comparable(b)

    def test_incomparable_divergent_versions(self):
        a = v([2, 0])
        b = v([0, 2])
        assert not a.comparable(b)

    def test_le_is_reflexive(self):
        a = v([1, 2])
        assert a.le(a) and not a.lt(a)

    def test_population_mismatch_rejected(self):
        with pytest.raises(ProtocolError):
            v([1]).le(v([1, 2]))

    def test_dominates_vector(self):
        assert v([1, 1]).dominates_vector(v([1, 0]))
        assert not v([1, 0]).dominates_vector(v([1, 0]))
        assert not v([1, 0]).dominates_vector(v([0, 1]))


class TestMaxVersion:
    def test_max_of_chain(self):
        d1 = extend_digest(None, 0)
        a = Version((1, 0), (d1, None))
        b = Version((1, 1), (d1, extend_digest(d1, 1)))
        assert max_version(a, b) is b
        assert max_version(b, a) is b

    def test_incomparable_raises(self):
        with pytest.raises(ProtocolError):
            max_version(v([2, 0]), v([0, 2]))

    def test_empty_raises(self):
        with pytest.raises(ProtocolError):
            max_version()


# Versions built as honest prefixes of one long schedule: the digests are
# the protocol's actual representation, so prefix-versions must be chained.
def _prefix_version(schedule, length, num_clients):
    vector = [0] * num_clients
    digests = [None] * num_clients
    digest = None
    for client in schedule[:length]:
        vector[client] += 1
        digest = extend_digest(digest, client)
        digests[client] = digest
    return Version(tuple(vector), tuple(digests))


class TestPrefixCorrespondence:
    """Definition 7's order mirrors the prefix relation on view histories."""

    @settings(max_examples=60)
    @given(
        st.lists(st.integers(min_value=0, max_value=2), min_size=0, max_size=10),
        st.integers(min_value=0, max_value=10),
        st.integers(min_value=0, max_value=10),
    )
    def test_prefixes_are_ordered(self, schedule, i, j):
        i, j = min(i, len(schedule)), min(j, len(schedule))
        a = _prefix_version(schedule, i, 3)
        b = _prefix_version(schedule, j, 3)
        if i <= j:
            assert a.le(b)
        else:
            assert b.le(a)

    @settings(max_examples=60)
    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=8),
        st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=8),
    )
    def test_prefix_schedules_always_comparable(self, left, right):
        full_left = _prefix_version(left, len(left), 2)
        full_right = _prefix_version(right, len(right), 2)
        if left == right[: len(left)]:
            assert full_left.le(full_right)
        elif right == left[: len(right)]:
            assert full_right.le(full_left)

    def test_forked_schedules_incomparable(self):
        # The canonical fork: the server shows C1's op first to one branch
        # and C2's op first to the other.  Same operation *counts*, but the
        # digests disagree at equal vector entries — incomparable, which is
        # exactly the evidence FAUST relies on.
        branch_a = _prefix_version([0, 1], 2, 2)
        branch_b = _prefix_version([1, 0], 2, 2)
        assert branch_a.vector == branch_b.vector
        assert not branch_a.comparable(branch_b)

    def test_diverging_suffixes_incomparable(self):
        common = [0, 1]
        branch_a = _prefix_version(common + [0, 0], 4, 2)  # C1 keeps going
        branch_b = _prefix_version(common + [1, 1], 4, 2)  # C2 keeps going
        assert not branch_a.comparable(branch_b)
        # Both still extend the common prefix.
        base = _prefix_version(common, 2, 2)
        assert base.le(branch_a) and base.le(branch_b)

    @settings(max_examples=40)
    @given(
        st.lists(st.integers(min_value=0, max_value=2), min_size=0, max_size=9),
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=0, max_value=9),
    )
    def test_transitivity_on_protocol_versions(self, schedule, i, j, k):
        lengths = sorted(min(x, len(schedule)) for x in (i, j, k))
        a = _prefix_version(schedule, lengths[0], 3)
        b = _prefix_version(schedule, lengths[1], 3)
        c = _prefix_version(schedule, lengths[2], 3)
        assert a.le(b) and b.le(c)
        assert a.le(c)


class TestDigestChain:
    def test_empty_digest(self):
        assert digest_of_sequence([]) is EMPTY_DIGEST is None

    def test_extension_matches_sequence(self):
        d = digest_of_sequence([0, 1, 2])
        assert d == extend_digest(extend_digest(extend_digest(None, 0), 1), 2)

    def test_order_sensitivity(self):
        assert digest_of_sequence([0, 1]) != digest_of_sequence([1, 0])

    def test_length_sensitivity(self):
        assert digest_of_sequence([0]) != digest_of_sequence([0, 0])

    @settings(max_examples=80)
    @given(
        st.lists(st.integers(min_value=0, max_value=5), max_size=12),
        st.lists(st.integers(min_value=0, max_value=5), max_size=12),
    )
    def test_injective_on_samples(self, a, b):
        if a != b:
            assert digest_of_sequence(a) != digest_of_sequence(b)
