"""Baselines: the blocking lock-step protocol and the unchecked store."""

from __future__ import annotations

import random

import pytest

from repro.baselines.lockstep import (
    TamperingLockStepServer,
    build_lockstep_system,
)
from repro.baselines.unchecked import (
    LyingUncheckedServer,
    build_unchecked_system,
)
from repro.common.types import BOTTOM
from repro.consistency.causal import check_causal_consistency
from repro.consistency.fork import check_fork_linearizability_exhaustive
from repro.consistency.linearizability import check_linearizability
from repro.sim.network import FixedLatency
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts


def sync_op(system, client, op, arg, timeout=1_000.0):
    box = []
    getattr(client, op)(arg, box.append)
    assert system.run_until(lambda: bool(box), timeout=timeout)
    system.run(until=system.now + 0.05)
    return box[0]


class TestLockStepHappyPath:
    def test_write_read(self):
        system = build_lockstep_system(2, seed=1)
        sync_op(system, system.clients[0], "write", b"v")
        outcome = sync_op(system, system.clients[1], "read", 0)
        assert outcome.value == b"v"

    def test_read_before_write_is_bottom(self):
        system = build_lockstep_system(2, seed=1)
        outcome = sync_op(system, system.clients[1], "read", 0)
        assert outcome.value is BOTTOM

    @pytest.mark.parametrize("seed", range(4))
    def test_linearizable_on_random_runs(self, seed):
        system = build_lockstep_system(3, seed=seed)
        scripts = generate_scripts(
            3, WorkloadConfig(ops_per_client=12), random.Random(seed)
        )
        driver = Driver(system)
        driver.attach_all(scripts)
        assert driver.run_to_completion()
        history = system.history()
        assert check_linearizability(history)
        assert check_causal_consistency(history)
        assert not any(c.failed for c in system.clients)

    def test_small_run_fork_linearizable(self):
        system = build_lockstep_system(2, seed=3)
        sync_op(system, system.clients[0], "write", b"a")
        sync_op(system, system.clients[1], "read", 0)
        sync_op(system, system.clients[0], "write", b"b")
        assert check_fork_linearizability_exhaustive(system.history())

    def test_timestamps_increase(self):
        system = build_lockstep_system(1, seed=1)
        first = sync_op(system, system.clients[0], "write", b"a")
        second = sync_op(system, system.clients[0], "read", 0)
        assert first.timestamp < second.timestamp


class TestLockStepBlocking:
    """The paper's impossibility made concrete."""

    def test_crash_between_reply_and_commit_blocks_everyone(self):
        system = build_lockstep_system(3, seed=2, latency=FixedLatency(1.0))
        victim = system.clients[0]
        victim.write(b"doomed", lambda o: None)
        system.scheduler.schedule(1.5, victim.crash)  # REPLY lands at 2.0
        results = []
        system.scheduler.schedule(3.0, system.clients[1].write, b"y", results.append)
        system.scheduler.schedule(3.0, system.clients[2].read, 1, results.append)
        system.run(until=1_000)
        assert results == []
        assert system.server.blocked
        assert system.server.queue_length == 2

    def test_contention_serialises_operations(self):
        # All clients submit at once; completions are strictly sequential,
        # so the k-th completion happens ~k round-trips in.
        system = build_lockstep_system(4, seed=3, latency=FixedLatency(1.0))
        done = []
        for client in system.clients:
            client.write(b"w-%d" % client.client_id, lambda o: done.append(system.now))
        system.run_until(lambda: len(done) == 4, timeout=200)
        assert len(done) == 4
        gaps = [b - a for a, b in zip(done, done[1:])]
        assert all(gap >= 1.9 for gap in gaps), f"gaps: {gaps}"

    def test_ustor_same_scenario_does_not_serialise(self):
        from repro.workloads.runner import SystemBuilder

        system = SystemBuilder(num_clients=4, seed=3, latency=FixedLatency(1.0)).build()
        done = []
        for client in system.clients:
            client.write(b"w-%d" % client.client_id, lambda o: done.append(system.now))
        system.run_until(lambda: len(done) == 4, timeout=200)
        # Every operation completes in one round-trip, all at the same time.
        assert len(done) == 4
        assert max(done) - min(done) < 0.1


class TestLockStepIntegrity:
    def test_tampered_value_detected(self):
        system = build_lockstep_system(
            2,
            seed=4,
            server_factory=lambda n, name: TamperingLockStepServer(n, 0, name=name),
        )
        sync_op(system, system.clients[0], "write", b"genuine")
        box = []
        system.clients[1].read(0, box.append)
        system.run(until=100)
        assert not box
        assert system.clients[1].failed
        assert "does not match" in system.clients[1].fail_reason


class TestUnchecked:
    def test_happy_path(self):
        system = build_unchecked_system(2, seed=1)
        sync_op(system, system.clients[0], "write", b"v")
        outcome = sync_op(system, system.clients[1], "read", 0)
        assert outcome.value == b"v"

    def test_lies_are_believed(self):
        # The motivating gap: the same attack USTOR catches at line 50 is
        # silently accepted by the unchecked client.
        system = build_unchecked_system(
            2,
            seed=2,
            server_factory=lambda n, name: LyingUncheckedServer(n, 0, name=name),
        )
        sync_op(system, system.clients[0], "write", b"genuine")
        outcome = sync_op(system, system.clients[1], "read", 0)
        assert outcome.value != b"genuine"
        assert outcome.value.startswith(b"FABRICATED")
        assert not system.clients[1].failed  # no detection, ever

    def test_fabrication_visible_to_offline_checker(self):
        # The recorded history *is* checkable after the fact — the value
        # was never written, so the linearizability checker rejects it.
        system = build_unchecked_system(
            2,
            seed=3,
            server_factory=lambda n, name: LyingUncheckedServer(n, 0, name=name),
        )
        sync_op(system, system.clients[0], "write", b"genuine")
        sync_op(system, system.clients[1], "read", 0)
        assert not check_linearizability(system.history())

    @pytest.mark.parametrize("seed", range(3))
    def test_honest_unchecked_is_linearizable(self, seed):
        system = build_unchecked_system(3, seed=seed)
        scripts = generate_scripts(
            3, WorkloadConfig(ops_per_client=10), random.Random(seed)
        )
        driver = Driver(system)
        driver.attach_all(scripts)
        assert driver.run_to_completion()
        assert check_linearizability(system.history())
