"""Loopback integration tests for the real TCP transport.

One process, one event loop: the :class:`~repro.net.server.NetServerHost`
and the client runtime share the loop, so these run in tier-1 (the
multi-process variants live in ``test_net_process.py`` behind the
``slow`` marker).  What is being established:

* the unchanged protocol objects and Session facade complete a full
  workload over real sockets with the usual checker verdicts;
* the paper's timed model maps onto wall-clock deadlines — a withheld
  REPLY surfaces as :class:`~repro.api.errors.OperationTimeout`;
* a server crash/restart over durable ``dir:`` storage is survived by
  reconnect + retransmission, exactly once.
"""

from __future__ import annotations

import random

import pytest

from repro.api import SystemConfig, open_system
from repro.api.errors import OperationTimeout
from repro.api.session import as_session
from repro.common.errors import ConfigurationError
from repro.consistency.causal import check_causal_consistency
from repro.consistency.linearizability import check_linearizability
from repro.consistency.weak_fork import validate_weak_fork_linearizability
from repro.net.client import NetRuntime, open_tcp_system, parse_endpoint
from repro.net.server import NetServerHost
from repro.ustor.byzantine import UnresponsiveServer
from repro.ustor.server import UstorServer
from repro.ustor.viewhistory import build_client_views
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts

pytestmark = pytest.mark.net


def open_loopback(
    num_clients: int,
    *,
    server_factory=None,
    storage: str = "memory",
    trace_path=None,
    default_timeout: float = 10.0,
):
    """A host and its clients sharing one pumped event loop."""
    runtime = NetRuntime()
    host = NetServerHost(
        num_clients, storage=storage, server_factory=server_factory
    )
    runtime.run_coroutine(host.start())
    system = open_tcp_system(
        num_clients,
        (host.endpoint,),
        runtime=runtime,
        trace_path=str(trace_path) if trace_path else None,
        default_timeout=default_timeout,
    )
    system.hosts.append(host)  # torn down by system.close()
    system.owns_runtime = True  # created here solely for this system
    return system, host


class TestLoopbackWorkload:
    def test_full_workload_with_checker_verdicts(self):
        system, _host = open_loopback(3)
        with system:
            scripts = generate_scripts(
                3,
                WorkloadConfig(
                    ops_per_client=6, read_fraction=0.5, mean_think_time=0.005
                ),
                random.Random(7),
            )
            driver = Driver(system)
            driver.attach_all(scripts)
            assert driver.run_to_completion(timeout=20.0)
            system.run_until_quiescent(timeout=5.0)

            history = system.history()
            assert len(history) == 18
            assert check_linearizability(history).ok
            assert check_causal_consistency(history).ok
            views = build_client_views(history, system.recorder, system.clients)
            assert validate_weak_fork_linearizability(history, views).ok
            assert not any(c.failed for c in system.clients)

    def test_session_facade_write_read(self):
        system, _host = open_loopback(2)
        with system:
            alice, bob = as_session(system, 0), as_session(system, 1)
            t1 = alice.write_sync(b"net-hello")
            assert t1 == 1
            value, t2 = bob.read_sync(0)
            assert value == b"net-hello"
            assert t2 == 1  # timestamps are per-client counters

    def test_timestamps_are_per_client_counters(self):
        system, _host = open_loopback(2)
        with system:
            session = as_session(system, 0)
            timestamps = [session.write_sync(bytes([i])) for i in range(3)]
            assert timestamps == [1, 2, 3]


class TestTimedModel:
    def test_withheld_reply_times_out_as_operation_timeout(self):
        # The unresponsive behaviour ignores client 0's SUBMITs: the
        # paper's timed model says the operation must *time out* rather
        # than hang, and the facade maps that to OperationTimeout.
        system, _host = open_loopback(
            2, server_factory=lambda n, name: UnresponsiveServer(
                n, victims={0}, name=name
            )
        )
        with system:
            victim = as_session(system, 0, timeout=0.4)
            handle = victim.write(b"never-answered")
            with pytest.raises(OperationTimeout):
                handle.result(0.4)
            # The untargeted client is still served (wait-freedom).
            assert as_session(system, 1).write_sync(b"fine") == 1

    def test_connect_failure_is_loud(self):
        with pytest.raises(ConfigurationError, match="could not connect"):
            open_tcp_system(1, ("127.0.0.1:1",), connect_timeout=0.3)

    def test_wrong_server_name_fails_handshake(self):
        runtime = NetRuntime()
        host = NetServerHost(1, server_name="S")
        runtime.run_coroutine(host.start())
        try:
            with pytest.raises(ConfigurationError, match="answered as"):
                open_tcp_system(
                    1,
                    (host.endpoint,),
                    runtime=runtime,
                    server_name="T",
                    connect_timeout=2.0,
                )
        finally:
            runtime.run_coroutine(host.stop())
            runtime.close()


class TestCrashRecovery:
    def test_server_restart_over_durable_dir_storage(self, tmp_path):
        storage = f"dir:{tmp_path / 'srv'}"
        runtime = NetRuntime()
        host = NetServerHost(2, storage=storage)
        runtime.run_coroutine(host.start())
        port = host.port
        system = open_tcp_system(
            2, (host.endpoint,), runtime=runtime, default_timeout=10.0
        )
        with system:
            session = as_session(system, 0)
            assert session.write_sync(b"before-crash") == 1

            runtime.run_coroutine(host.stop())
            # Issued while the server is down: queued as unacked, carried
            # by the retransmission when the connection comes back.
            handle = session.write(b"after-restart")

            restarted = NetServerHost(2, port=port, storage=storage)
            runtime.run_coroutine(restarted.start())
            system.hosts.append(restarted)

            assert handle.result(10.0).timestamp == 2
            # The restarted process recovered the pre-crash state from
            # disk (the dedup floor included), it did not start fresh.
            assert restarted.node.state.mem[0].timestamp == 2
            value, _t = session.read_sync(0)
            assert value == b"after-restart"
            assert not system.clients[0].failed
            assert sum(c.reconnects for c in system.connections) >= 1

    def test_recovered_floor_drops_stale_retransmission(self, tmp_path):
        # A SUBMIT applied+logged whose REPLY died with the process must
        # NOT be re-applied on retransmit (duplicate pending entries are
        # protocol-fatal); with the journal gone it is dropped and the
        # client's deadline fires — the fail-aware outcome.
        storage = f"dir:{tmp_path / 'srv'}"
        runtime = NetRuntime()
        host = NetServerHost(1, storage=storage)
        runtime.run_coroutine(host.start())
        system = open_tcp_system(
            1, (host.endpoint,), runtime=runtime, default_timeout=5.0
        )
        with system:
            # Capture the SUBMIT as sent, then complete the write.
            connection = system.connections[0]
            sent = []
            original = connection.send_message
            connection.send_message = lambda m: (sent.append(m), original(m))
            session = as_session(system, 0)
            assert session.write_sync(b"first") == 1
            system.run_until_quiescent(timeout=2.0)
            submit = next(m for m in sent if m.kind == "SUBMIT")
            runtime.run_coroutine(host.stop())

            restarted = NetServerHost(1, port=host.port, storage=storage)
            runtime.run_coroutine(restarted.start())
            system.hosts.append(restarted)
            # The journal died with the old process but the floor was
            # recovered from disk: the stale SUBMIT is dropped, not
            # re-applied (no duplicate pending entry), and not answered.
            from repro.net.wire import message_to_payload

            pending_before = len(restarted.node.state.pending)
            restarted._handle_client_payload(0, message_to_payload(submit))
            assert restarted.submits_dropped_stale == 1
            assert len(restarted.node.state.pending) == pending_before
            assert restarted.node.state.mem[0].timestamp == 1


class TestHostConfig:
    def test_group_commit_server_rejected(self):
        runtime = NetRuntime()
        host = NetServerHost(
            2,
            server_factory=lambda n, name: UstorServer(
                n, name=name, group_commit=True
            ),
        )
        try:
            with pytest.raises(ConfigurationError, match="group_commit"):
                runtime.run_coroutine(host.start())
        finally:
            runtime.close()

    def test_parse_endpoint(self):
        assert parse_endpoint("10.0.0.1:4800") == ("10.0.0.1", 4800)
        for bad in ("nohost", ":1", "h:", "h:port"):
            with pytest.raises(ConfigurationError):
                parse_endpoint(bad)


class TestConfigAndBackends:
    def test_transport_must_be_sim_or_tcp(self):
        with pytest.raises(ConfigurationError, match="transport"):
            SystemConfig(num_clients=1, transport="carrier-pigeon")

    def test_endpoints_require_tcp(self):
        with pytest.raises(ConfigurationError, match="transport='tcp'"):
            SystemConfig(num_clients=1, endpoints=("h:1",))

    def test_trace_path_requires_tcp(self):
        with pytest.raises(ConfigurationError, match="transport='tcp'"):
            SystemConfig(num_clients=1, trace_path="x.jsonl")

    def test_tcp_requires_endpoints(self):
        with pytest.raises(ConfigurationError, match="endpoints"):
            SystemConfig(num_clients=1, transport="tcp")

    def test_endpoints_string_is_split(self):
        config = SystemConfig(
            num_clients=1, transport="tcp", endpoints="h:1, h:2", replicas=2
        )
        assert config.endpoints == ("h:1", "h:2")

    def test_tcp_needs_one_endpoint_per_replica(self):
        with pytest.raises(ConfigurationError, match="one endpoint per replica"):
            SystemConfig(
                num_clients=1, transport="tcp", endpoints="h:1,h:2"
            )
        with pytest.raises(ConfigurationError, match="one endpoint per replica"):
            SystemConfig(
                num_clients=1, transport="tcp", endpoints="h:1", replicas=3
            )

    def test_server_name_is_tcp_only(self):
        with pytest.raises(ConfigurationError, match="transport='tcp'"):
            SystemConfig(num_clients=1, server_name="S0")

    @pytest.mark.parametrize(
        "knob",
        [
            {"storage": "log"},
            {"server_outages": ((1.0, 2.0),)},
            {"batching": True},
            {"server_factory": lambda n, name: None},
            {"shards": 2},
        ],
    )
    def test_server_side_knobs_rejected_over_tcp(self, knob):
        with pytest.raises(ConfigurationError, match="own process"):
            SystemConfig(
                num_clients=2, transport="tcp", endpoints=("h:1",), **knob
            )

    @pytest.mark.parametrize("backend", ["faust", "lockstep", "unchecked", "cluster"])
    def test_only_ustor_backend_speaks_tcp(self, backend):
        config = SystemConfig(
            num_clients=2, transport="tcp", endpoints=("h:1",)
        )
        with pytest.raises(ConfigurationError, match="simulator-only"):
            open_system(config, backend=backend)

    def test_open_system_tcp_end_to_end(self):
        # The full facade path: SystemConfig -> UstorBackend -> NetSystem,
        # against a real `repro serve` OS process (the backend owns its
        # runtime, so the server cannot share the client loop).
        from repro.net.supervisor import ServerProcess

        with ServerProcess(2) as proc:
            system = open_system(
                SystemConfig(
                    num_clients=2,
                    transport="tcp",
                    endpoints=(proc.endpoint,),
                    default_timeout=10.0,
                ),
                backend="ustor",
            )
            try:
                assert system.backend_name == "ustor"
                assert system.session(0).write_sync(b"via-config") == 1
                value, _t = system.session(1).read_sync(0)
                assert value == b"via-config"
            finally:
                system.close()
