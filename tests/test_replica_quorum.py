"""Tests for the replica layer: quorum resolution end to end.

Three levels of ambition:

* **coordinator units** — the :class:`QuorumCoordinator` state machine
  in isolation, driven with hand-built replies (masking, read repair,
  conviction, the failure strings clients raise as ``fail_i``);
* **equivalence** — an all-honest replica group is *invisible*: the
  committed history is identical to the single-server run, replicas and
  counters included (the facade promise the tentpole makes);
* **scenarios** — the rollback attack against each trust configuration
  in the simulator, and the conviction reproduced over real TCP
  sockets with the loopback harness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from types import SimpleNamespace

import pytest

from repro.common.errors import ConfigurationError
from repro.replica.coordinator import QuorumCoordinator, default_quorum
from repro.replica.counter import CounterVerifier, MonotonicCounter
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts
from repro.workloads.runner import SystemBuilder
from repro.workloads.scenarios import replica_rollback_scenario


def _version(total: int):
    return SimpleNamespace(version=SimpleNamespace(vector=(total,)))


@dataclass(frozen=True)
class FakeReply:
    """Just enough of a REPLY for the coordinator: comparable content,
    a strippable ``attestation``, and the read-repair ordering key."""

    tag: str
    attestation: object | None = None
    mem: object | None = None
    last_version: object = field(default_factory=lambda: _version(0))
    pending: tuple = ()


def make_group(n=3, quorum=None, **kwargs):
    names = tuple(f"S/r{k}" for k in range(n))
    return QuorumCoordinator(names, quorum=quorum, **kwargs)


class TestConfig:
    def test_default_quorum_is_majority(self):
        assert [default_quorum(n) for n in (2, 3, 4, 5)] == [2, 2, 3, 3]

    def test_group_needs_two_replicas(self):
        with pytest.raises(ConfigurationError, match="at least 2"):
            QuorumCoordinator(("S",))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            QuorumCoordinator(("S/r0", "S/r0"))

    @pytest.mark.parametrize("quorum", [0, 4])
    def test_quorum_bounds(self, quorum):
        with pytest.raises(ConfigurationError, match="quorum must be"):
            make_group(3, quorum=quorum)

    def test_one_operation_at_a_time(self):
        group = make_group()
        group.begin_round(False, b"a")
        with pytest.raises(ConfigurationError, match="still open"):
            group.begin_round(False, b"b")


class TestResolution:
    def test_quorum_of_identical_replies_elects_winner(self):
        group = make_group()
        group.begin_round(False, b"op")
        assert group.absorb("S/r0", FakeReply("v")) is None
        winner = group.absorb("S/r1", FakeReply("v"))
        assert winner == FakeReply("v")
        assert group.stats()["rounds_resolved"] == 1

    def test_attestations_are_stripped_before_voting(self):
        # Counter attestations legitimately differ per replica; they must
        # neither block agreement nor leak into the winning REPLY.
        group = make_group()
        group.begin_round(False, b"op")
        group.absorb("S/r0", FakeReply("v", attestation="from-r0"))
        winner = group.absorb("S/r1", FakeReply("v", attestation="from-r1"))
        assert winner is not None and winner.attestation is None

    def test_minority_deviation_is_masked(self):
        group = make_group()
        group.begin_round(False, b"op")
        assert group.absorb("S/r0", FakeReply("rolled-back")) is None
        assert group.absorb("S/r1", FakeReply("v")) is None
        winner = group.absorb("S/r2", FakeReply("v"))
        assert winner == FakeReply("v")
        assert group.masked_deviations == 1
        assert not group.convicted

    def test_late_deviant_straggler_is_counted(self):
        group = make_group()
        group.begin_round(False, b"op")
        group.absorb("S/r0", FakeReply("v"))
        assert group.absorb("S/r1", FakeReply("v")) is not None
        assert group.absorb("S/r2", FakeReply("stale")) is None
        assert group.late_replies == 1
        assert group.masked_deviations == 1

    def test_read_repair_elects_highest_timestamp(self):
        # All live replicas answered a *read* without agreement: the
        # highest register timestamp wins (the client's COMMIT broadcast
        # is the write-back that re-converges the group).
        group = make_group()
        group.begin_round(True, b"op")
        group.absorb("S/r0", FakeReply("old", mem=SimpleNamespace(timestamp=1)))
        group.absorb("S/r1", FakeReply("older", mem=SimpleNamespace(timestamp=0)))
        winner = group.absorb(
            "S/r2", FakeReply("new", mem=SimpleNamespace(timestamp=2))
        )
        assert winner is not None and winner.tag == "new"
        assert group.read_repairs == 1

    def test_write_without_quorum_fails(self):
        group = make_group()
        group.begin_round(False, b"op")
        group.absorb("S/r0", FakeReply("a"))
        group.absorb("S/r1", FakeReply("b"))
        outcome = group.absorb("S/r2", FakeReply("c"))
        assert isinstance(outcome, str)
        assert "write quorum unattainable" in outcome

    def test_replies_from_strangers_are_ignored(self):
        group = make_group()
        group.begin_round(False, b"op")
        assert group.absorb("mallory", FakeReply("v")) is None
        assert not group.convicted


class TestConviction:
    def test_unsolicited_reply_convicts(self):
        convictions = []
        group = make_group(on_convict=lambda r, v: convictions.append((r, v)))
        assert group.absorb("S/r0", FakeReply("v")) is None
        assert "unsolicited" in group.convicted["S/r0"]
        assert convictions == [("S/r0", group.convicted["S/r0"])]
        assert group.targets() == ("S/r1", "S/r2")

    def test_convicted_replica_is_excluded_but_group_serves_on(self):
        group = make_group()
        group.absorb("S/r2", FakeReply("forged"))  # unsolicited: convicted
        group.begin_round(False, b"op")
        group.absorb("S/r0", FakeReply("v"))
        assert group.absorb("S/r1", FakeReply("v")) == FakeReply("v")
        # Further REPLYs from the convict are dead letters.
        assert group.absorb("S/r2", FakeReply("v")) is None
        assert list(group.convicted) == ["S/r2"]

    def test_conviction_below_quorum_margin_fails_loudly(self):
        group = make_group(2)  # n=2, q=2: no masking margin at all
        group.begin_round(False, b"op")
        group.absorb("S/r0", FakeReply("v"))
        assert group.absorb("S/r1", FakeReply("v")) == FakeReply("v")
        # r1 fabricates a second REPLY before any second SUBMIT exists:
        # convicting it leaves 1 live replica < quorum 2 — unserviceable.
        failure = group.absorb("S/r1", FakeReply("zzz"))
        assert isinstance(failure, str)
        assert "cannot reach quorum" in failure

    def test_counter_violation_convicts_while_honest_majority_resolves(self):
        counters = {name: MonotonicCounter(name) for name in
                    ("S/r0", "S/r1", "S/r2")}
        group = make_group(verifier=CounterVerifier())
        group.begin_round(False, b"op")
        for name in ("S/r0", "S/r1"):
            attestation = counters[name].attest(b"op", 1)
            outcome = group.absorb(name, FakeReply("v", attestation=attestation))
        assert outcome == FakeReply("v")
        # r2's state vouches for 0 SUBMITs while its counter says 1: the
        # straggler is convicted even though its round already resolved.
        rolled = counters["S/r2"].attest(b"op", 0)
        assert group.absorb("S/r2", FakeReply("v", attestation=rolled)) is None
        assert "rolled back" in group.convicted["S/r2"]
        assert group.targets() == ("S/r0", "S/r1")


class TestAllHonestEquivalence:
    def run_history(self, **builder_kwargs):
        system = SystemBuilder(num_clients=3, seed=7, **builder_kwargs).build()
        scripts = generate_scripts(
            3,
            WorkloadConfig(ops_per_client=6, read_fraction=0.5),
            random.Random(7),
        )
        driver = Driver(system)
        driver.attach_all(scripts)
        system.run(until=2_000.0)
        assert driver.stats.all_done()
        assert not any(c.failed for c in system.clients)
        return [
            (op.client, op.kind, op.register, op.value, op.timestamp)
            for op in system.history()
        ]

    def test_replica_group_is_invisible_to_the_history(self):
        single = self.run_history()
        replicated = self.run_history(replicas=3)
        attested = self.run_history(replicas=3, counter="durable")
        assert single == replicated == attested


class TestRollbackScenarios:
    def test_honest_majority_masks_the_rollback(self):
        result = replica_rollback_scenario(ops_per_client=6, replicas=3)
        assert result.all_completed
        assert result.masked_deviations > 0
        assert not result.convicted and not result.fail_times

    def test_unanimity_quorum_turns_masking_into_detection(self):
        result = replica_rollback_scenario(
            ops_per_client=6, replicas=3, quorum=3
        )
        assert result.detected
        assert result.fail_times  # no margin: the deviation is fatal

    def test_durable_counter_convicts_in_constant_operations(self):
        result = replica_rollback_scenario(
            ops_per_client=6, replicas=3, counter="durable"
        )
        assert result.all_completed  # the majority keeps serving
        assert list(result.convicted) == ["S0/r1"]
        assert "rolled back" in result.convicted["S0/r1"]
        # O(1): caught within one in-flight operation per client of the
        # restart, independent of the workload length.
        assert result.detected
        assert result.ops_until_detection <= 2 * 4

    def test_volatile_counter_falsely_accuses_honest_recovery(self):
        result = replica_rollback_scenario(
            ops_per_client=6,
            replicas=3,
            counter="volatile",
            rollback_replica=None,
            honest_outage=(1, 30.0, 5.0),
        )
        assert result.all_completed
        assert len(result.convicted) == 1  # an *honest* replica convicted
        assert not result.masked_deviations


@pytest.mark.net
class TestTcpReplicaGroup:
    def test_counter_convicts_rollback_over_real_sockets(self):
        from repro.net.client import NetRuntime, open_tcp_system
        from repro.net.server import NetServerHost

        runtime = NetRuntime()
        hosts = []
        for k in range(3):
            host = NetServerHost(
                2, server_name=f"S/r{k}", counter="volatile"
            )
            runtime.run_coroutine(host.start())
            hosts.append(host)
        system = open_tcp_system(
            2,
            tuple(h.endpoint for h in hosts),
            runtime=runtime,
            replicas=3,
            counter=True,
            default_timeout=10.0,
        )
        system.hosts.extend(hosts)
        system.owns_runtime = True
        with system:
            from repro.api.session import as_session

            alice, bob = as_session(system, 0), as_session(system, 1)
            assert alice.write_sync(b"pre-attack") == 1
            # Roll replica r1 back in place: its durable state reverts to
            # the pre-write snapshot while the attached counter — by
            # design — cannot follow.
            pristine = hosts[1].node.state.clone()
            assert bob.write_sync(b"will-be-forgotten") == 1
            hosts[1].node.state = pristine

            # The group keeps serving and the rolled replica is convicted
            # on its first post-rollback REPLY.
            assert alice.write_sync(b"post-attack") == 2
            value, _t = bob.read_sync(0)
            assert value == b"post-attack"
            convicted = {
                name: violation
                for client in system.clients
                for name, violation in client.quorum_coordinator.convicted.items()
            }
            assert list(convicted) == ["S/r1"]
            assert "rolled back" in convicted["S/r1"]
            assert not any(c.failed for c in system.clients)
