"""Unit tests for the trusted monotonic counter (repro.replica.counter).

The counter's contract is the Memoir-style state-continuity check: it
attests its own value *and* the stream position the server's durable
state reported, MAC'd together under a key the server never holds, and
the client-side verifier accepts only attestations where the two agree.
A rollback rewinds the state's position but never the counter, so the
pair diverges permanently — which is what every test here pins from both
sides (honest lockstep accepted, every tampering axis rejected).
"""

from __future__ import annotations

from dataclasses import replace
from types import SimpleNamespace

import pytest

from repro.common.errors import ConfigurationError, StorageError
from repro.replica.counter import (
    COUNTER_MAC_BYTES,
    CounterAttestation,
    CounterVerifier,
    MonotonicCounter,
    derive_counter_key,
    ops_accounted,
)


def reply_with(attestation):
    """The verifier only dereferences ``reply.attestation``."""
    return SimpleNamespace(attestation=attestation)


class TestMonotonicCounter:
    def test_attest_increments_and_binds_both_values(self):
        counter = MonotonicCounter("S/r0")
        first = counter.attest(b"sig-1", 1)
        second = counter.attest(b"sig-2", 2)
        assert (first.value, second.value) == (1, 2)
        assert (first.state_value, second.state_value) == (1, 2)
        assert first.binding == b"sig-1"
        assert len(first.mac) == COUNTER_MAC_BYTES
        assert counter.value == 2
        assert counter.attestations == 2

    def test_durable_counter_survives_crash_volatile_does_not(self):
        durable = MonotonicCounter("S/r0", durable=True)
        volatile = MonotonicCounter("S/r1", durable=False)
        durable.attest(b"s", 1)
        volatile.attest(b"s", 1)
        durable.on_crash()
        volatile.on_crash()
        assert durable.value == 1
        assert volatile.value == 0
        assert volatile.resets == 1

    def test_state_path_persists_across_instances(self, tmp_path):
        path = str(tmp_path / "counter.state")
        counter = MonotonicCounter("S/r0", state_path=path)
        counter.attest(b"a", 1)
        counter.attest(b"b", 2)
        reborn = MonotonicCounter("S/r0", state_path=path)
        assert reborn.value == 2
        assert reborn.attest(b"c", 3).value == 3

    def test_state_file_belonging_to_another_counter_is_rejected(self, tmp_path):
        path = str(tmp_path / "counter.state")
        MonotonicCounter("S/r0", state_path=path).attest(b"a", 1)
        with pytest.raises(StorageError, match="does not belong"):
            MonotonicCounter("S/r1", state_path=path)

    def test_corrupt_state_file_is_rejected(self, tmp_path):
        path = tmp_path / "counter.state"
        path.write_text("S/r0 -3\n")
        with pytest.raises(StorageError, match="holds -3"):
            MonotonicCounter("S/r0", state_path=str(path))

    def test_configuration_errors(self, tmp_path):
        with pytest.raises(ConfigurationError, match="non-empty id"):
            MonotonicCounter("")
        with pytest.raises(ConfigurationError, match="volatile counter"):
            MonotonicCounter(
                "S", durable=False, state_path=str(tmp_path / "c.state")
            )

    def test_key_derivation_is_per_counter(self):
        assert derive_counter_key("S/r0") != derive_counter_key("S/r1")

    def test_wire_size_counts_both_integers(self):
        attestation = MonotonicCounter("S/r0").attest(b"x" * 64, 1)
        assert attestation.wire_size() == len("S/r0") + 16 + 64 + 32


class TestCounterVerifier:
    def make(self, counter_id="S/r0"):
        return MonotonicCounter(counter_id), CounterVerifier()

    def test_honest_lockstep_is_accepted(self):
        counter, verifier = self.make()
        for position in range(1, 5):
            binding = f"sig-{position}".encode()
            reply = reply_with(counter.attest(binding, position))
            assert verifier.check("S/r0", reply, binding) is None

    def test_rollback_diverges_counter_ahead_of_state(self):
        counter, verifier = self.make()
        assert verifier.check("S/r0", reply_with(counter.attest(b"a", 1)), b"a") is None
        # The state rolled back: it re-reports position 1 for the next
        # SUBMIT while the counter (correctly) keeps climbing.
        violation = verifier.check(
            "S/r0", reply_with(counter.attest(b"b", 1)), b"b"
        )
        assert violation is not None and "rolled back" in violation

    def test_volatile_reset_diverges_state_ahead_of_counter(self):
        counter, verifier = self.make()
        counter.durable = False
        for position in range(1, 4):
            binding = f"s{position}".encode()
            assert (
                verifier.check(
                    "S/r0", reply_with(counter.attest(binding, position)), binding
                )
                is None
            )
        counter.on_crash()  # honest server: state keeps its position
        fresh = CounterVerifier()  # a client with no monotonicity memory
        violation = fresh.check(
            "S/r0", reply_with(counter.attest(b"s4", 4)), b"s4"
        )
        assert violation is not None and "ran ahead" in violation

    def test_missing_attestation(self):
        _, verifier = self.make()
        violation = verifier.check("S/r0", reply_with(None), b"x")
        assert "no counter attestation" in violation

    def test_wrong_counter_id(self):
        counter, verifier = self.make()
        reply = reply_with(counter.attest(b"x", 1))
        violation = verifier.check("S/r1", reply, b"x")
        assert "names counter" in violation

    def test_mac_tamper_is_rejected(self):
        counter, verifier = self.make()
        attestation = counter.attest(b"x", 1)
        forged = replace(
            attestation,
            mac=bytes([attestation.mac[0] ^ 1]) + attestation.mac[1:],
        )
        assert "not authentic" in verifier.check("S/r0", reply_with(forged), b"x")

    def test_server_cannot_adjust_state_value_after_minting(self):
        # The whole point of MAC'ing the pair: a rolled-back server that
        # edits state_value to match the counter breaks the MAC instead.
        counter, verifier = self.make()
        attestation = counter.attest(b"x", 1)
        doctored = replace(attestation, state_value=attestation.value + 5)
        assert "not authentic" in verifier.check(
            "S/r0", reply_with(doctored), b"x"
        )

    def test_replayed_attestation_fails_the_binding_check(self):
        counter, verifier = self.make()
        old = counter.attest(b"operation-1", 1)
        assert "replayed" in verifier.check("S/r0", reply_with(old), b"operation-2")

    def test_repeated_value_fails_monotonicity(self):
        counter, verifier = self.make()
        attestation = counter.attest(b"x", 1)
        assert verifier.check("S/r0", reply_with(attestation), b"x") is None
        assert "backwards" in verifier.check("S/r0", reply_with(attestation), b"x")

    def test_counters_are_judged_independently(self):
        verifier = CounterVerifier()
        a, b = MonotonicCounter("S/r0"), MonotonicCounter("S/r1")
        for position in (1, 2):
            binding = f"s{position}".encode()
            assert (
                verifier.check(
                    "S/r0", reply_with(a.attest(binding, position)), binding
                )
                is None
            )
        # r1 starting from 1 is fine: monotonicity is per counter id.
        assert verifier.check("S/r1", reply_with(b.attest(b"t", 1)), b"t") is None


class TestOpsAccounted:
    def test_counts_committed_vector_plus_pending(self):
        reply = SimpleNamespace(
            last_version=SimpleNamespace(
                version=SimpleNamespace(vector=(2, 1, 0))
            ),
            pending=("inv-a", "inv-b"),
        )
        assert ops_accounted(reply) == 5
