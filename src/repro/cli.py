"""Command-line exploration tool.

Run randomized workloads against a chosen server behaviour and print the
recorded history, the consistency-checker verdicts, detection outcomes and
message statistics::

    python -m repro run --clients 3 --ops 6 --server correct --check
    python -m repro run --server split-brain --backend faust --until 600
    python -m repro run --batch 8 --audit-every 50 --check  # throughput pipeline
    python -m repro run --backend lockstep --ops 4   # baseline protocols
    python -m repro run --storage log --outage 25 20 --backend faust
    python -m repro run --server rollback --backend faust  # stale-snapshot attack
    python -m repro run --backend cluster --clients 6 --shards 3  # sharded
    python -m repro run --backend cluster --clients 6 --shards 4 \
        --server split-brain --server-shard 1      # fork one shard only
    python -m repro run --backend cluster --clients 6 --shards 2 \
        --storage log --shard-outage 1 25 20       # one shard's outage
    python -m repro attacks                       # list server behaviours
    python -m repro experiments --quick           # run the E* harness

Observability (``repro.obs``) — metrics, health gauges, causal spans::

    python -m repro run --server rollback --backend faust --metrics
    python -m repro run --ops 20 --batch 4 --span-log spans.jsonl \
        --chrome-trace trace.json --metrics-snapshot metrics.jsonl
    python -m repro serve --metrics-port 0        # announces METRICS host port
    python -m repro stats --endpoint 127.0.0.1:PORT   # scrape /metrics

Real deployments (``repro.net``) — servers as OS processes, clients over
real TCP, every run recorded and replayable::

    python -m repro serve --clients 3 --port 4800 --storage dir:/tmp/srv
    python -m repro run --clients 3 --transport tcp \
        --endpoints 127.0.0.1:4800 --trace-file run.jsonl --check
    python -m repro replay --trace run.jsonl --check   # re-derive verdicts
    python -m repro serve-cluster --clients 6 --shards 3  # one proc/shard

The CLI is a thin veneer over the library; everything it does is one or
two calls into :mod:`repro.api`, :mod:`repro.workloads` and
:mod:`repro.consistency`.  ``--backend`` selects the protocol stack the
same workload runs on (``faust`` / ``ustor`` / ``lockstep`` /
``unchecked``); ``--faust`` remains as an alias for ``--backend faust``.
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.api import (
    BACKENDS,
    BatchingPolicy,
    FailureNotification,
    SystemConfig,
    open_system,
)
from repro.cluster.shardmap import SHARD_MAP_STRATEGIES
from repro.baselines.lockstep import LockStepServer, TamperingLockStepServer
from repro.baselines.unchecked import LyingUncheckedServer, UncheckedServer
from repro.consistency.causal import check_causal_consistency
from repro.consistency.linearizability import check_linearizability
from repro.consistency.weak_fork import validate_weak_fork_linearizability
from repro.ustor.byzantine import (
    CrashingServer,
    Fig3Server,
    ForgingServer,
    ReplayServer,
    RollbackServer,
    SplitBrainServer,
    TamperingServer,
    UnresponsiveServer,
)
from repro.ustor.server import UstorServer
from repro.ustor.viewhistory import build_client_views
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts

SERVERS = {
    "correct": lambda n, name: UstorServer(n, name=name),
    "tampering": lambda n, name: TamperingServer(n, target_register=0, name=name),
    "forging": lambda n, name: ForgingServer(n, name=name),
    "replay": lambda n, name: ReplayServer(n, freeze_after_submits=4, name=name),
    "crash": lambda n, name: CrashingServer(n, crash_after_submits=6, name=name),
    "unresponsive": lambda n, name: UnresponsiveServer(n, victims={0}, name=name),
    "split-brain": lambda n, name: SplitBrainServer(
        n,
        groups=[{c for c in range(n) if c % 2 == 0}, {c for c in range(n) if c % 2}],
        fork_time=10.0,
        name=name,
    ),
    "figure3": lambda n, name: Fig3Server(n, writer=0, victim=1, name=name),
    "rollback": lambda n, name: RollbackServer(
        n, snapshot_after_submits=2, rollback_after_submits=6, outage=5.0, name=name
    ),
}

#: The baseline protocols speak their own wire formats, so Byzantine
#: behaviours need protocol-specific implementations; only these exist.
BASELINE_SERVERS = {
    "lockstep": {
        "correct": lambda n, name: LockStepServer(n, name=name),
        "tampering": lambda n, name: TamperingLockStepServer(n, 0, name=name),
    },
    "unchecked": {
        "correct": lambda n, name: UncheckedServer(n, name=name),
        "tampering": lambda n, name: LyingUncheckedServer(n, 0, name=name),
    },
}

#: Behaviours that also run behind ``repro serve`` (real TCP).  The rest
#: are simulator-only: they script crash-recovery or fork points against
#: virtual time, which a real process models by actually crashing (kill
#: the ``serve`` process) rather than by a scheduled pretence.
TCP_SERVERS = ("correct", "tampering", "forging", "replay", "unresponsive")

ATTACK_NOTES = {
    "correct": "the honest server of Algorithm 2",
    "tampering": "corrupts read values — caught at line 50",
    "forging": "advertises an unsigned version — caught at line 35",
    "replay": "freezes and replays state — caught at lines 36/43",
    "crash": "stops responding — not detectable, operations hang",
    "unresponsive": "ignores C1 only",
    "split-brain": "forks even/odd clients at t=10 — FAUST-detectable",
    "figure3": "the paper's hiding attack (invisible to USTOR under the "
    "exact Figure 3 schedule; see examples/forking_attack.py)",
    "rollback": "crashes, then recovers from a stale snapshot — caught at "
    "lines 36/43/51 or by FAUST version comparison",
}


def _cmd_attacks(_args) -> int:
    width = max(len(name) for name in SERVERS)
    for name in SERVERS:
        tcp = " [tcp]" if name in TCP_SERVERS else ""
        print(f"  {name.ljust(width)}  {ATTACK_NOTES[name]}{tcp}")
    print()
    print("[tcp] behaviours also run as real processes: "
          "python -m repro serve --server NAME")
    return 0


def _obs_prepare(args):
    """Honour the run's observability flags; returns the SpanLog (or None).

    ``enable_metrics`` must run *before* the deployment is built:
    instrumented objects capture their registry handles at construction,
    so a registry swapped in afterwards would never see their events.
    """
    if args.metrics or args.metrics_snapshot or args.metrics_port is not None:
        from repro.obs.registry import enable_metrics

        enable_metrics()
    if args.span_log or args.chrome_trace:
        from repro.obs.tracing import SpanLog

        return SpanLog()
    return None


def _obs_health(system, servers=(), auditor=None):
    """A HealthMonitor over the deployment, when metrics are enabled."""
    from repro.obs.registry import get_registry

    if not get_registry().enabled:
        return None
    from repro.obs.health import HealthMonitor

    monitor = HealthMonitor(system.clients, lambda: system.now, servers=servers)
    if auditor is not None:
        monitor.watch_auditor(auditor)
    return monitor


def _obs_snapshot_writer(args, health=None):
    """The JSONL snapshot writer for ``--metrics-snapshot`` (or None)."""
    if not args.metrics_snapshot:
        return None
    from repro.obs.exposition import JsonlSnapshotWriter
    from repro.obs.registry import get_registry

    return JsonlSnapshotWriter(
        get_registry(),
        args.metrics_snapshot,
        on_snapshot=health.refresh if health is not None else None,
    )


def _obs_finish(args, span_log, now, health=None, writer=None) -> None:
    """Write the obs artifacts and print the fail-aware summary lines."""
    from repro.obs.registry import get_registry

    registry = get_registry()
    if health is not None:
        stats = health.refresh()
        detection = stats.get("health.time_to_detection")
        if detection is not None:
            print(f"# detection: first fail_i {detection:.3f} time unit(s) "
                  f"after the first known deviation")
        print(f"# stability: max per-client lag "
              f"{stats['health.max_stability_lag']} op(s)")
    if writer is not None:
        writer.write(now)
        print(f"# metrics snapshot: {writer.path} "
              f"({writer.snapshots_written} snapshot(s))")
    if span_log is not None and args.span_log:
        span_log.write_jsonl(args.span_log)
        print(f"# span log: {args.span_log} "
              f"({len(span_log.records)} span record(s))")
    if span_log is not None and args.chrome_trace:
        span_log.write_chrome(args.chrome_trace)
        print(f"# chrome trace: {args.chrome_trace} "
              f"(open in chrome://tracing or Perfetto)")
    if args.metrics and registry.enabled:
        from repro.obs.exposition import render_prometheus

        print()
        print("# metrics (repro.obs)")
        print(render_prometheus(registry), end="")


def _cmd_stats(args) -> int:
    """Scrape a live ``/metrics`` endpoint (``repro stats``)."""
    import urllib.error
    import urllib.request

    host, _, port = args.endpoint.rpartition(":")
    if not host or not port.isdigit():
        print("--endpoint takes HOST:PORT — the METRICS line printed by "
              "'repro serve --metrics-port' or 'repro run --metrics-port'")
        return 2
    path = "/metrics.json" if args.json else "/metrics"
    url = f"http://{host}:{port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=args.timeout) as response:
            body = response.read().decode("utf-8")
    except (urllib.error.URLError, OSError) as exc:
        print(f"cannot scrape {url}: {exc}")
        return 1
    print(body, end="" if body.endswith("\n") else "\n")
    return 0


def _print_quorum_stats(protocol_clients) -> None:
    """Aggregate and print replica-group stats over the protocol clients."""
    coordinators = [
        c.quorum_coordinator
        for c in protocol_clients
        if getattr(c, "quorum_coordinator", None) is not None
    ]
    if not coordinators:
        return
    totals = {"rounds_resolved": 0, "masked_deviations": 0,
              "read_repairs": 0, "late_replies": 0}
    convicted: dict[str, str] = {}
    for coordinator in coordinators:
        stats = coordinator.stats()
        for key in totals:
            totals[key] += stats[key]
        convicted.update(stats["convicted"])
    print(f"# replicas: {len(coordinators[0].replicas)} per group, quorum "
          f"{coordinators[0].quorum}: {totals['rounds_resolved']} round(s) "
          f"resolved, {totals['masked_deviations']} deviant reply(ies) "
          f"masked, {totals['read_repairs']} read repair(s)")
    for replica, violation in sorted(convicted.items()):
        print(f"#   convicted {replica}: {violation}")


def _cmd_run_tcp(args) -> int:
    """The ``run --transport tcp`` path: the client half of a real
    deployment, against ``repro serve`` processes already listening.

    Deliberately narrower than the simulated path: everything
    server-side (behaviour, storage, outages, batching, shards) belongs
    to the ``serve`` command line, and the flags that configure it here
    are rejected with a pointer rather than silently ignored.
    """
    from repro.common.errors import ConfigurationError

    backend = args.backend or ("faust" if args.faust else "ustor")
    if backend != "ustor":
        print(f"--transport tcp runs on the ustor backend; the {backend!r} "
              f"stack has no wire codecs (drop --backend/--faust)")
        return 2
    if not args.endpoints:
        print("--transport tcp needs --endpoints HOST:PORT "
              "(start one with 'python -m repro serve')")
        return 2
    server_side = []
    if args.server != "correct":
        server_side.append("--server (pick it on the 'repro serve' side)")
    if args.storage != "memory":
        server_side.append("--storage")
    if args.outage:
        server_side.append("--outage")
    if args.batch is not None:
        server_side.append("--batch")
    if args.server_replica is not None:
        server_side.append("--server-replica (pick the behaviour per "
                           "'repro serve' process)")
    if server_side:
        print(f"over tcp the server is its own process; move "
              f"{', '.join(server_side)} to its command line")
        return 2
    if args.audit_every is not None and args.audit_every <= 0:
        print("--audit-every takes a positive wall-clock cadence")
        return 2

    span_log = _obs_prepare(args)
    try:
        system = open_system(
            SystemConfig(
                num_clients=args.clients,
                seed=args.seed,
                transport="tcp",
                endpoints=args.endpoints,
                server_name=args.server_name,
                trace_path=args.trace_file,
                default_timeout=args.timeout,
                trace_ids=args.trace_ids,
                span_log=span_log,
                replicas=args.replicas,
                quorum=args.quorum,
                counter=args.counter,
            ),
            backend="ustor",
        )
    except ConfigurationError as exc:
        print(f"cannot open tcp deployment: {exc}")
        return 1
    try:
        # The server is a remote process, so deviation times cannot be
        # probed; the monitor's start is the conservative baseline.
        health = _obs_health(system)
        writer = _obs_snapshot_writer(args, health)
        if writer is not None:
            writer.write(system.now)  # the t=0 baseline line
        if args.metrics_port is not None:
            metrics_server = system.start_metrics(
                port=args.metrics_port,
                on_scrape=health.refresh if health is not None else None,
            )
            print(f"METRICS {metrics_server.host} {metrics_server.port}",
                  flush=True)
        auditor = (
            system.attach_audit(every=args.audit_every)
            if args.audit_every is not None
            else None
        )
        if health is not None and auditor is not None:
            health.watch_auditor(auditor)
        scripts = generate_scripts(
            args.clients,
            WorkloadConfig(
                ops_per_client=args.ops,
                read_fraction=args.read_fraction,
                mean_think_time=0.01,
            ),
            random.Random(args.seed),
        )
        driver = Driver(system, via_sessions=False)
        driver.attach_all(scripts)

        def settled() -> bool:
            # Done, or every client is done / failed / crashed — a failed
            # client (Byzantine server caught) never finishes its script.
            stats = driver.stats
            return all(
                stats.completed.get(c.client_id, 0)
                >= stats.planned.get(c.client_id, 0)
                or getattr(c, "failed", False)
                or c.crashed
                for c in system.clients
            )

        system.run_until(settled, timeout=args.until)
        # Give trailing COMMITs a moment to land before tearing down.
        system.run_until_quiescent(timeout=2.0)

        print(f"# run: {args.clients} clients x {args.ops} ops, "
              f"server=remote, backend=ustor/tcp, seed={args.seed}")
        print(f"# endpoints: {args.endpoints}")
        print(f"# completed {driver.stats.total_completed()}"
              f"/{driver.stats.total_planned()} operations "
              f"in {system.now:.2f}s wall clock")
        reconnects = sum(c.reconnects for c in system.connections)
        frames_out = sum(c.frames_sent for c in system.connections)
        frames_in = sum(c.frames_received for c in system.connections)
        print(f"# transport: {frames_out} frame(s) sent, {frames_in} "
              f"received, {reconnects} reconnect(s) with retransmission")
        _print_quorum_stats(system.clients)
        if auditor is not None:
            final = auditor.final()
            verdicts = " ".join(
                f"{name}={'OK' if result.ok else 'VIOLATED'}"
                for name, result in sorted(final.verdicts.items())
            )
            print(f"# audits: {len(auditor.audits)} incremental audit(s) "
                  f"every {args.audit_every:g}s wall clock")
            print(f"# audit verdicts: {verdicts}")

        history = system.history()
        if args.history:
            print()
            print(history.describe())
        if args.timeline:
            from repro.analysis.timeline import render_timeline

            print()
            print(render_timeline(history, width=96))
        if args.check:
            print()
            print(f"linearizability:            {check_linearizability(history)}")
            print(f"causal consistency:         "
                  f"{check_causal_consistency(history)}")
            views = build_client_views(history, system.recorder, system.clients)
            print(f"weak fork-linearizability:  "
                  f"{validate_weak_fork_linearizability(history, views)}")

        print()
        for client in system.clients:
            flags = []
            if client.crashed:
                flags.append("crashed")
            if getattr(client, "fail_reason", None):
                flags.append(f"USTOR fail: {client.fail_reason}")
            print(f"{client.name}: {'; '.join(flags) if flags else 'ok'}")

        print()
        print(f"messages: {system.trace.message_count()} "
              f"({system.trace.total_bytes()} bytes on the wire)")
        for kind in ("SUBMIT", "REPLY", "COMMIT"):
            count = system.trace.message_count(kind)
            if count:
                print(f"  {kind:7s} x{count:5d}  "
                      f"avg {system.trace.total_bytes(kind) / count:7.1f} B")
        if args.trace_file:
            print()
            print(f"# wire trace: {args.trace_file} "
                  f"(python -m repro replay --trace {args.trace_file} --check)")
        _obs_finish(args, span_log, system.now, health, writer)
    finally:
        system.close()
    return 0


def _cmd_run(args) -> int:
    if args.transport == "tcp":
        return _cmd_run_tcp(args)
    if args.endpoints or args.trace_file or args.server_name != "S":
        print("--endpoints/--trace-file/--server-name describe a real "
              "deployment; add --transport tcp")
        return 2
    if args.metrics_port is not None:
        print("--metrics-port exposes a live process over HTTP; a simulated "
              "run is synchronous — use --metrics to print the final "
              "registry (or add --transport tcp)")
        return 2
    if args.trace_ids:
        print("--trace-ids stamps real wire messages; add --transport tcp "
              "(simulated runs trace at the session layer via --span-log)")
        return 2
    backend = args.backend or ("faust" if args.faust else "ustor")
    is_cluster = backend == "cluster"
    if not is_cluster and (
        args.shards != 1 or args.shard_map != "range"
        or args.server_shard is not None or args.shard_outage
    ):
        print(
            "--shards/--shard-map/--server-shard/--shard-outage need "
            "--backend cluster"
        )
        return 2
    if not is_cluster and (
        args.replicas != 1 or args.quorum is not None
        or args.counter is not None or args.server_replica is not None
    ):
        print(
            "--replicas/--quorum/--counter/--server-replica need "
            "--backend cluster (or --transport tcp)"
        )
        return 2
    if args.server_replica is not None:
        if args.server == "correct":
            print("--server-replica targets a Byzantine behaviour; "
                  "pick a --server")
            return 2
        if args.replicas < 2:
            print("--server-replica targets one replica of a group; "
                  "add --replicas")
            return 2
        if args.server_shard is not None:
            print("--server-replica and --server-shard both place the "
                  "behaviour; pick one")
            return 2
    table = BASELINE_SERVERS.get(backend, SERVERS)
    if args.server not in SERVERS:
        print(f"unknown server {args.server!r}; see 'python -m repro attacks'")
        return 2
    if args.server not in table:
        print(
            f"server behaviour {args.server!r} is not implemented for the "
            f"{backend!r} backend (available: {', '.join(sorted(table))})"
        )
        return 2
    if backend in BASELINE_SERVERS and (args.storage != "memory" or args.outage):
        print(
            f"--storage/--outage need a server with a storage engine; the "
            f"{backend!r} backend has none (use faust or ustor)"
        )
        return 2
    if backend in BASELINE_SERVERS and args.batch:
        print(
            f"--batch needs the throughput pipeline; the {backend!r} backend "
            f"does not support it (use faust, ustor or cluster)"
        )
        return 2
    if args.batch is not None and args.batch < 1:
        print("--batch takes a positive operations-per-flush count")
        return 2
    if args.audit_every is not None and args.audit_every <= 0:
        print("--audit-every takes a positive virtual-time cadence")
        return 2
    if (
        args.server != "correct"
        and args.server_shard is None
        and args.server_replica is None
        and (args.storage != "memory" or args.outage or args.shard_outage)
    ):
        print(
            f"--storage/--outage configure the correct server; the "
            f"{args.server!r} behaviour owns its durability and fault "
            f"schedule (the rollback server, e.g., builds its own log engine)"
        )
        return 2
    if args.server_shard is not None and args.server == "correct":
        print("--server-shard targets a Byzantine behaviour; pick a --server")
        return 2
    outages = tuple((start, duration) for start, duration in (args.outage or ()))
    for shard, _start, _duration in args.shard_outage or ():
        # nargs=3 forces one argparse type for all operands; reject a
        # fractional shard rather than silently truncating to the wrong one.
        if shard != int(shard):
            print(f"--shard-outage: shard index must be an integer, got {shard}")
            return 2
    shard_outages = tuple(
        (int(shard), start, duration)
        for shard, start, duration in (args.shard_outage or ())
    )
    # The correct server takes its engine from --storage; Byzantine servers
    # own their durability (the rollback one builds its own log engine).
    factory = None if args.server == "correct" else table[args.server]
    if backend in BASELINE_SERVERS:
        factory = table[args.server]
    shard_factories = {}
    if is_cluster and args.server_shard is not None:
        # The chosen behaviour hits one shard; every other shard is honest.
        shard_factories = {args.server_shard: factory}
        factory = None
    replica_factories = {}
    if args.server_replica is not None:
        # The behaviour hits one replica of every group; with quorum-many
        # honest peers left, its deviation is masked rather than fatal.
        replica_factories = {args.server_replica: factory}
        factory = None
    batching = (
        BatchingPolicy(max_batch=args.batch) if args.batch is not None else None
    )
    span_log = _obs_prepare(args)
    system = open_system(
        SystemConfig(
            num_clients=args.clients,
            seed=args.seed,
            server_factory=factory,
            storage=args.storage,
            server_outages=outages,
            shards=args.shards,
            shard_map=args.shard_map,
            shard_server_factories=shard_factories,
            shard_outages=shard_outages,
            replicas=args.replicas,
            quorum=args.quorum,
            counter=args.counter,
            replica_server_factories=replica_factories,
            batching=batching,
            span_log=span_log,
        ),
        backend=backend,
    )
    auditor = (
        system.attach_audit(every=args.audit_every)
        if args.audit_every is not None
        else None
    )
    health = _obs_health(
        system,
        servers=(system.servers if is_cluster else [system.server]),
        auditor=auditor,
    )
    writer = _obs_snapshot_writer(args, health)
    if writer is not None:
        writer.write(system.now)  # the t=0 baseline line
    scripts = generate_scripts(
        args.clients,
        WorkloadConfig(
            ops_per_client=args.ops,
            read_fraction=args.read_fraction,
            mean_think_time=1.0,
        ),
        random.Random(args.seed),
    )
    # With batching on, the workload must flow through the sessions —
    # they are the layer that buffers and auto-flushes submissions.  Span
    # tracing lives at the same layer, so --span-log/--chrome-trace route
    # through the sessions too (simulated clients have no wire to stamp).
    driver = Driver(
        system, via_sessions=batching is not None or span_log is not None
    )
    driver.attach_all(scripts)
    system.run(until=args.until)

    print(f"# run: {args.clients} clients x {args.ops} ops, server={args.server}, "
          f"backend={backend}, seed={args.seed}")
    if is_cluster:
        placement = [system.shard_of(r) for r in range(args.clients)]
        print(f"# cluster: {system.num_shards} shard(s), map={args.shard_map}, "
              f"register->shard {placement}")
        if args.replicas > 1:
            _print_quorum_stats(
                [c for shard in system.shards for c in shard.clients]
            )
    print(f"# completed {driver.stats.total_completed()}/{driver.stats.total_planned()} "
          f"operations by t={system.now:.1f}")
    if batching is not None:
        networks = (
            [shard.network for shard in system.shards]
            if is_cluster
            else [system.network]
        )
        coalesced = sum(n.messages_coalesced for n in networks)
        bursts = sum(n.bursts_formed for n in networks)
        group_commits = sum(
            getattr(s, "group_commits", 0)
            for s in (system.servers if is_cluster else [system.server])
        )
        print(f"# batching: max_batch={batching.max_batch}, "
              f"{coalesced} message(s) coalesced onto {bursts} burst(s), "
              f"{group_commits} server group commit(s)")
    if auditor is not None:
        final = auditor.final()
        worst = max((a.delta_ops for a in auditor.audits), default=0)
        verdicts = " ".join(
            f"{name}={'OK' if result.ok else 'VIOLATED'}"
            for name, result in sorted(final.verdicts.items())
        )
        print(f"# audits: {len(auditor.audits)} incremental audit(s) every "
              f"{args.audit_every:g} time units, max delta {worst} op(s)/audit")
        print(f"# audit verdicts: {verdicts}")
        for name, result in sorted(final.verdicts.items()):
            if not result.ok:
                print(f"#   {name}: {result.violation}")
    for server in (system.servers if is_cluster else [system.server]):
        if getattr(server, "restarts", 0):
            engine = server.engine
            print(f"# server {server.name} storage={engine.name}: "
                  f"{server.restarts} restart(s), "
                  f"{getattr(engine, 'last_recovery_replayed', 0)} WAL record(s) "
                  f"replayed, {getattr(engine, 'snapshots_taken', 0)} snapshot(s)")
    # Each shard is its own consistency domain: histories (and the
    # checkers below) are per shard on a cluster, global otherwise.
    histories = (
        sorted(system.shard_histories().items())
        if is_cluster
        else [(None, system.history())]
    )
    if args.history:
        for shard, history in histories:
            print()
            if shard is not None:
                print(f"--- shard {shard} ---")
            print(history.describe())
    if args.timeline:
        from repro.analysis.timeline import render_timeline

        for shard, history in histories:
            print()
            if shard is not None:
                print(f"--- shard {shard} ---")
            print(render_timeline(history, width=96))

    if args.check:
        for shard, history in histories:
            domain = system.shards[shard] if shard is not None else system
            label = "" if shard is None else f" [shard {shard}]"
            print()
            print(f"linearizability{label}:            "
                  f"{check_linearizability(history)}")
            print(f"causal consistency{label}:         "
                  f"{check_causal_consistency(history)}")
            if all(hasattr(c, "vh_records") for c in domain.clients):
                views = build_client_views(history, domain.recorder, domain.clients)
                print(f"weak fork-linearizability{label}:  "
                      f"{validate_weak_fork_linearizability(history, views)}")
            else:
                # The view-history replay is USTOR-specific; baseline
                # protocols carry no version digests to rebuild views from.
                print(f"weak fork-linearizability{label}:  n/a for the "
                      f"{backend} backend")

    print()
    for client in system.clients:
        flags = []
        if client.crashed:
            flags.append("crashed")
        if getattr(client, "fail_reason", None):
            flags.append(f"USTOR fail: {client.fail_reason}")
        if getattr(client, "faust_failed", False):
            flags.append(f"FAUST fail: {client.faust_fail_reason}")
        if getattr(client, "faust_failed", None) is False and not client.crashed:
            flags.append(f"stability cut {list(client.tracker.stability_cut())}")
        print(f"{client.name}: {'; '.join(flags) if flags else 'ok'}")

    print()
    print(f"messages: {system.trace.message_count()} "
          f"({system.trace.total_bytes()} bytes simulated)")
    for kind in ("SUBMIT", "REPLY", "COMMIT"):
        count = system.trace.message_count(kind)
        if count:
            print(f"  {kind:7s} x{count:5d}  "
                  f"avg {system.trace.total_bytes(kind) / count:7.1f} B")

    events = system.notifications.history
    if events:
        failures = sum(1 for e in events if isinstance(e, FailureNotification))
        print(f"notifications: {len(events)} "
              f"({failures} failure, {len(events) - failures} stability)")

    _obs_finish(args, span_log, system.now, health, writer)

    if args.profile:
        import json as _json

        print()
        print("# performance profile (repro.perf)")
        print(_json.dumps(system.profile(), indent=2))
    return 0


def _cmd_serve(args) -> int:
    """Run one server process until interrupted (``repro serve``)."""
    from repro.net.server import serve_forever

    if args.server not in TCP_SERVERS:
        known = ", ".join(TCP_SERVERS)
        print(f"server behaviour {args.server!r} does not run over tcp "
              f"(available: {known}; the rest script virtual-time events "
              f"the simulator owns — see 'python -m repro attacks')")
        return 2
    if args.server != "correct" and args.storage != "memory":
        print("--storage configures the correct server; Byzantine "
              "behaviours own their durability")
        return 2
    factory = None if args.server == "correct" else SERVERS[args.server]
    from repro.common.errors import ConfigurationError

    try:
        return serve_forever(
            args.clients,
            host=args.host,
            port=args.port,
            server_name=args.server_name,
            storage=args.storage,
            server_factory=factory,
            metrics_port=args.metrics_port,
            counter=args.counter,
            # The supervisor and CI block on this line; an unflushed pipe
            # buffer would deadlock them.
            announce=lambda line: print(line, flush=True),
        )
    except ConfigurationError as exc:
        print(f"cannot serve: {exc}")
        return 2


def _cmd_serve_cluster(args) -> int:
    """Launch one ``repro serve`` process per shard and babysit them."""
    import time

    from repro.common.errors import ConfigurationError
    from repro.net.supervisor import ClusterSupervisor

    if args.shards < 1:
        print("--shards takes a positive shard count")
        return 2
    if args.replicas < 1:
        print("--replicas takes a positive replica count")
        return 2
    supervisor = ClusterSupervisor(
        args.clients,
        args.shards,
        host=args.host,
        base_port=args.base_port,
        storage=args.storage,
        replicas=args.replicas,
        counter=args.counter,
    )
    try:
        endpoints = supervisor.start()
    except ConfigurationError as exc:
        print(f"cluster failed to start: {exc}")
        return 1
    try:
        # Endpoints are flat, shard-major then replica-minor — the order
        # the TCP client layer expects back via --endpoints.
        for proc in supervisor.processes:
            print(f"SHARD {proc.server_name} LISTENING {proc.host} "
                  f"{proc.port}", flush=True)
        print(f"CLUSTER {','.join(endpoints)}", flush=True)
        while True:
            time.sleep(0.5)
            for proc in supervisor.processes:
                code = proc.process.poll() if proc.process else None
                if code is not None:
                    print(f"server {proc.server_name} exited with code "
                          f"{code}; stopping the cluster")
                    return 1
    except KeyboardInterrupt:
        return 0
    finally:
        supervisor.stop()


def _cmd_replay(args) -> int:
    """Replay a recorded TCP run on the simulator and re-derive verdicts."""
    from repro.common.errors import ConfigurationError
    from repro.net.trace import replay_trace

    try:
        result = replay_trace(args.trace)
    except (ConfigurationError, OSError) as exc:
        print(f"cannot replay {args.trace!r}: {exc}")
        return 1
    history = result.history
    print(f"# replayed {len(history)} operation(s) from {args.trace}")
    for divergence in result.divergences:
        print(f"DIVERGENCE: {divergence}")
    print(f"# replay equivalent to recording: "
          f"{'yes' if result.ok else 'NO'}")
    failures = result.fail_reasons()
    for client_id, reason in sorted(failures.items()):
        print(f"C{client_id + 1}: USTOR fail: {reason}")
    if args.check:
        print()
        print(f"linearizability:            {check_linearizability(history)}")
        print(f"causal consistency:         "
              f"{check_causal_consistency(history)}")
        views = build_client_views(history, result.recorder, result.clients)
        print(f"weak fork-linearizability:  "
              f"{validate_weak_fork_linearizability(history, views)}")
    if args.history:
        print()
        print(history.describe())
    return 0 if result.ok else 1


def _cmd_experiments(args) -> int:
    from repro.experiments.runner import main as experiments_main

    forwarded = []
    if args.quick:
        forwarded.append("--quick")
    if args.write:
        forwarded.append("--write")
    if args.only:
        forwarded.extend(["--only", args.only])
    return experiments_main(forwarded)


def _cmd_scale(args) -> int:
    import json as _json

    from repro.faust.checkpoint import CheckpointPolicy
    from repro.faust.membership import MembershipPolicy
    from repro.obs.exposition import render_prometheus
    from repro.obs.registry import Registry
    from repro.workloads.generator import OpenLoopConfig
    from repro.workloads.scale import ScaleConfig, run_scale

    policy = None
    if args.checkpoint_interval:
        policy = CheckpointPolicy(
            interval=args.checkpoint_interval, keep_tail=args.keep_tail
        )
    membership = None
    if args.membership:
        membership = MembershipPolicy(
            lease_checkpoints=args.lease_checkpoints,
            evict_after=args.evict_after,
            rejoin=not args.no_rejoin,
            check_period=args.membership_check_period,
        )
    config = ScaleConfig(
        num_clients=args.clients,
        seed=args.seed,
        open_loop=OpenLoopConfig(
            rate=args.rate,
            duration=args.duration,
            read_fraction=args.read_fraction,
            zipf_exponent=args.zipf,
        ),
        checkpoint=policy,
        membership=membership,
        churn_windows=args.churn_windows,
        churn_mean_duration=args.churn_mean_duration,
        client_faults=tuple(args.client_faults),
        sample_every=args.sample_every,
        trace_malloc=args.trace_malloc,
    )
    report = run_scale(config)
    rendered = _json.dumps(report.to_dict(), indent=2)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(rendered + "\n")
    print(rendered)
    if args.metrics_out:
        registry = Registry()
        report.publish(registry)
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(render_prometheus(registry))
        print(f"METRICS WRITTEN {args.metrics_out}")
    if not all(report.checker_ok.values()):
        print("CONSISTENCY CHECK FAILED", file=sys.stderr)
        return 1
    if report.failed_clients:
        print("FAIL NOTIFICATIONS RAISED UNDER A CORRECT SERVER",
              file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a workload and analyse the history")
    run.add_argument("--clients", type=int, default=3)
    run.add_argument("--ops", type=int, default=6)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--server", default="correct", help="see 'attacks'")
    run.add_argument("--read-fraction", type=float, default=0.5)
    run.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default=None,
        help="protocol stack to run the workload on (default: ustor)",
    )
    run.add_argument(
        "--faust", action="store_true", help="alias for --backend faust"
    )
    run.add_argument(
        "--storage",
        choices=("memory", "log"),
        default="memory",
        help="server durability: volatile (paper) or WAL+snapshots",
    )
    run.add_argument(
        "--outage",
        nargs=2,
        type=float,
        action="append",
        metavar=("START", "DURATION"),
        help="schedule a server crash-recovery window (repeatable; on a "
        "cluster it takes every shard down)",
    )
    run.add_argument(
        "--shards",
        type=int,
        default=1,
        help="number of shards (requires --backend cluster)",
    )
    run.add_argument(
        "--shard-map",
        choices=SHARD_MAP_STRATEGIES,
        default="range",
        help="register partitioning strategy for --backend cluster",
    )
    run.add_argument(
        "--server-shard",
        type=int,
        default=None,
        metavar="SHARD",
        help="apply the chosen --server behaviour to this shard only "
        "(every other shard stays honest; requires --backend cluster)",
    )
    run.add_argument(
        "--shard-outage",
        nargs=3,
        type=float,
        action="append",
        metavar=("SHARD", "START", "DURATION"),
        help="crash-recovery window for one shard's server (repeatable; "
        "requires --backend cluster)",
    )
    run.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="replicas per shard (k-of-n quorum groups; --backend cluster, "
        "or one endpoint per replica over --transport tcp)",
    )
    run.add_argument(
        "--quorum",
        type=int,
        default=None,
        metavar="K",
        help="replies that must agree per operation (default: majority "
        "of --replicas)",
    )
    run.add_argument(
        "--counter",
        choices=("volatile", "durable"),
        default=None,
        help="arm the monotonic-counter trust anchor: every REPLY carries "
        "a counter attestation the clients verify (rollback caught in "
        "O(1); over tcp this arms the client-side verifier only)",
    )
    run.add_argument(
        "--server-replica",
        type=int,
        default=None,
        metavar="REPLICA",
        help="apply the chosen --server behaviour to this replica of every "
        "shard only (the rest of each group stays honest; requires "
        "--replicas > 1)",
    )
    run.add_argument(
        "--batch",
        type=int,
        default=None,
        metavar="N",
        help="enable the throughput pipeline (session auto-flush every N "
        "operations, transport burst coalescing, server group commit); "
        "faust/ustor/cluster backends only",
    )
    run.add_argument(
        "--audit-every",
        type=float,
        default=None,
        metavar="T",
        help="run streaming incremental consistency audits every T virtual "
        "time units (O(delta) per audit; per shard on a cluster)",
    )
    run.add_argument(
        "--transport",
        choices=("sim", "tcp"),
        default="sim",
        help="world to run in: the discrete-event simulator (default) or "
        "real sockets against 'repro serve' processes (ustor backend only)",
    )
    run.add_argument(
        "--endpoints",
        default=None,
        metavar="HOST:PORT[,HOST:PORT...]",
        help="server address(es) for --transport tcp "
        "(one per replica with --replicas)",
    )
    run.add_argument(
        "--server-name",
        default="S",
        metavar="NAME",
        help="name the tcp server process answers as ('repro serve "
        "--server-name'; serve-cluster names its shard S0)",
    )
    run.add_argument(
        "--trace-file",
        default=None,
        metavar="PATH",
        help="record the tcp run's wire trace (JSONL) for 'repro replay'",
    )
    run.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="wall-clock deadline for synchronous waits over tcp",
    )
    run.add_argument("--until", type=float, default=500.0,
                     help="virtual time budget (wall-clock seconds over tcp)")
    run.add_argument(
        "--metrics",
        action="store_true",
        help="enable the repro.obs registry and print the final metrics "
        "(Prometheus text) after the run",
    )
    run.add_argument(
        "--metrics-snapshot",
        default=None,
        metavar="PATH",
        help="write whole-registry snapshots (JSONL) to PATH "
        "(implies --metrics)",
    )
    run.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve GET /metrics over HTTP for the run's lifetime "
        "(0 picks an ephemeral port; see the METRICS line; "
        "--transport tcp only)",
    )
    run.add_argument(
        "--span-log",
        default=None,
        metavar="PATH",
        help="write per-operation trace spans (JSONL) to PATH",
    )
    run.add_argument(
        "--chrome-trace",
        default=None,
        metavar="PATH",
        help="write the span log as a Chrome trace-event file "
        "(chrome://tracing / Perfetto)",
    )
    run.add_argument(
        "--trace-ids",
        action="store_true",
        help="stamp SUBMIT/COMMIT with deterministic causal trace ids "
        "(an optional TLV field the server echoes; --transport tcp only)",
    )
    run.add_argument("--check", action="store_true", help="run consistency checkers")
    run.add_argument(
        "--profile",
        action="store_true",
        help="print the machine-readable repro.perf profile after the run",
    )
    run.add_argument("--history", action="store_true", help="print the history")
    run.add_argument(
        "--timeline", action="store_true", help="render an ASCII timeline"
    )
    run.set_defaults(func=_cmd_run)

    attacks = sub.add_parser("attacks", help="list available server behaviours")
    attacks.set_defaults(func=_cmd_attacks)

    serve = sub.add_parser(
        "serve", help="run one server as a real TCP process"
    )
    serve.add_argument("--clients", type=int, default=3)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 picks an ephemeral one; see the LISTENING line)",
    )
    serve.add_argument(
        "--server", default="correct",
        help=f"behaviour to serve ({', '.join(TCP_SERVERS)})",
    )
    serve.add_argument("--server-name", default="S")
    serve.add_argument(
        "--storage", default="memory",
        help="server durability: 'memory', 'log', or 'dir:PATH' "
        "(WAL + snapshots in a directory, survives process restarts)",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="expose GET /metrics over HTTP (0 picks an ephemeral port; "
        "the METRICS line announces it; scrape with 'repro stats')",
    )
    serve.add_argument(
        "--counter", choices=("volatile", "durable"), default=None,
        help="attach a monotonic counter: every REPLY carries an "
        "attestation clients can verify; 'durable' with dir: storage "
        "persists the value across restarts",
    )
    serve.set_defaults(func=_cmd_serve)

    stats = sub.add_parser(
        "stats", help="scrape a live /metrics endpoint and print it"
    )
    stats.add_argument(
        "--endpoint", required=True, metavar="HOST:PORT",
        help="the metrics listener (the METRICS line of 'repro serve "
        "--metrics-port' or 'repro run --metrics-port')",
    )
    stats.add_argument(
        "--json", action="store_true",
        help="fetch /metrics.json (raw snapshot) instead of Prometheus text",
    )
    stats.add_argument("--timeout", type=float, default=5.0,
                       metavar="SECONDS")
    stats.set_defaults(func=_cmd_stats)

    serve_cluster = sub.add_parser(
        "serve-cluster", help="run one server process per shard"
    )
    serve_cluster.add_argument("--clients", type=int, default=6)
    serve_cluster.add_argument("--shards", type=int, default=2)
    serve_cluster.add_argument("--host", default="127.0.0.1")
    serve_cluster.add_argument(
        "--base-port", type=int, default=0,
        help="shard i listens on BASE+i (0 picks ephemeral ports)",
    )
    serve_cluster.add_argument(
        "--storage", default="memory",
        help="per-process durability; '{shard}' and '{replica}' "
        "placeholders are expanded, e.g. 'dir:/tmp/faust/shard-{shard}'",
    )
    serve_cluster.add_argument(
        "--replicas", type=int, default=1,
        help="server processes per shard (a k-of-n replica group; clients "
        "connect with matching 'run --transport tcp --replicas')",
    )
    serve_cluster.add_argument(
        "--counter", choices=("volatile", "durable"), default=None,
        help="attach a monotonic counter to every server process",
    )
    serve_cluster.set_defaults(func=_cmd_serve_cluster)

    replay = sub.add_parser(
        "replay", help="replay a recorded tcp run on the simulator"
    )
    replay.add_argument("--trace", required=True, metavar="PATH")
    replay.add_argument(
        "--check", action="store_true", help="run consistency checkers"
    )
    replay.add_argument(
        "--history", action="store_true", help="print the replayed history"
    )
    replay.set_defaults(func=_cmd_replay)

    scale = sub.add_parser(
        "scale",
        help="open-loop scale run: Poisson arrivals, Zipf keys, "
        "resident-memory sampling",
    )
    scale.add_argument("--clients", type=int, default=4)
    scale.add_argument("--seed", type=int, default=20260730)
    scale.add_argument(
        "--rate", type=float, default=0.15,
        help="per-client Poisson arrival rate (ops per time unit)",
    )
    scale.add_argument("--duration", type=float, default=800.0,
                       metavar="TIME", help="arrival horizon (virtual time)")
    scale.add_argument("--read-fraction", type=float, default=0.5)
    scale.add_argument("--zipf", type=float, default=1.0,
                       help="Zipf exponent for read-key popularity")
    scale.add_argument(
        "--checkpoint-interval", type=int, default=0, metavar="OPS",
        help="co-sign a checkpoint every N stable ops (0 disables "
        "checkpointing: the unbounded baseline)",
    )
    scale.add_argument("--keep-tail", type=int, default=2,
                       help="writes per register kept across compaction")
    scale.add_argument("--churn-windows", type=int, default=0,
                       help="random session churn windows over the run "
                       "(logical sessions cycling over the signer slots; "
                       "rejected when the plan needs more concurrent slots "
                       "than --clients provides)")
    scale.add_argument("--churn-mean-duration", type=float, default=5.0,
                       metavar="TIME",
                       help="mean offline duration of a churn window")
    scale.add_argument("--membership", action="store_true",
                       help="lease-based membership epochs (requires "
                       "--checkpoint-interval): evict lapsed clients so "
                       "the checkpoint chain survives crash-forever")
    scale.add_argument("--lease-checkpoints", type=int, default=2,
                       metavar="N",
                       help="membership ticks a client may miss before its "
                       "lease lapses")
    scale.add_argument("--evict-after", type=int, default=3,
                       metavar="N",
                       help="further lapsed ticks before the quorum "
                       "proposes eviction")
    scale.add_argument("--membership-check-period", type=float, default=20.0,
                       metavar="TIME",
                       help="virtual-time period of the membership tick")
    scale.add_argument("--no-rejoin", action="store_true",
                       help="refuse re-admission epochs for returning "
                       "evicted clients")
    scale.add_argument("--client-faults", action="append", default=[],
                       metavar="SPEC",
                       help="inject a client fault, kind:client@start"
                       "[+duration] with kind one of crash-forever, "
                       "crash-restart, lease-expiry (repeatable)")
    scale.add_argument("--sample-every", type=float, default=20.0,
                       metavar="TIME")
    scale.add_argument("--trace-malloc", action="store_true",
                       help="track Python allocations for a bytes/op figure")
    scale.add_argument("--json", default=None, metavar="PATH",
                       help="also write the report as JSON to PATH")
    scale.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write a Prometheus-style rendering of the report to PATH",
    )
    scale.set_defaults(func=_cmd_scale)

    experiments = sub.add_parser("experiments", help="run the E* harness")
    experiments.add_argument("--quick", action="store_true")
    experiments.add_argument("--write", action="store_true")
    experiments.add_argument("--only", default=None)
    experiments.set_defaults(func=_cmd_experiments)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
