"""Durable server storage: pluggable engines, WAL + snapshots, recovery.

The paper's server is specified as volatile state; this subsystem gives
it a persistence axis — a :class:`StorageEngine` the server delegates
every state transition through, with a volatile engine (the paper's
model) and a log-structured engine (write-ahead log + snapshots +
deterministic crash recovery).  See DESIGN.md "Persistence & recovery"
for the format and the recovery invariant, and
:mod:`repro.ustor.byzantine` (``RollbackServer``) for the attack surface
persistence opens.
"""

from repro.store.codec import (
    commit_from_tuple,
    commit_to_tuple,
    decode_server_state,
    encode_server_state,
    invocation_from_tuple,
    invocation_to_tuple,
    mem_entry_from_tuple,
    mem_entry_to_tuple,
    signed_version_from_tuple,
    signed_version_to_tuple,
    state_from_tuple,
    state_to_tuple,
    submit_from_tuple,
    submit_to_tuple,
    version_from_tuple,
    version_to_tuple,
)
from repro.store.engine import (
    ENGINES,
    LogStructuredEngine,
    MemoryEngine,
    StorageEngine,
    frame_record,
    iter_frames,
    make_engine,
)
from repro.store.media import DirectoryMedium, InMemoryMedium, Medium

__all__ = [
    "ENGINES",
    "DirectoryMedium",
    "InMemoryMedium",
    "LogStructuredEngine",
    "Medium",
    "MemoryEngine",
    "StorageEngine",
    "commit_from_tuple",
    "commit_to_tuple",
    "decode_server_state",
    "encode_server_state",
    "frame_record",
    "invocation_from_tuple",
    "invocation_to_tuple",
    "iter_frames",
    "make_engine",
    "mem_entry_from_tuple",
    "mem_entry_to_tuple",
    "signed_version_from_tuple",
    "signed_version_to_tuple",
    "state_from_tuple",
    "state_to_tuple",
    "submit_from_tuple",
    "submit_to_tuple",
    "version_from_tuple",
    "version_to_tuple",
]
