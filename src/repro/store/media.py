"""Durable media: the byte store a :class:`~repro.store.engine.StorageEngine`
survives crashes on.

A :class:`Medium` is deliberately dumber than a filesystem — named byte
streams with append, atomic replace and truncate — because that is the
exact durability contract write-ahead logging needs.  Two implementations:

* :class:`InMemoryMedium` — bytearrays that outlive a *simulated* server
  crash (the server process loses ``ServerState``; the medium does not).
  This is what the deterministic tests and the crash/rollback scenarios
  run on: "disk" survives, process memory dies.
* :class:`DirectoryMedium` — real files under a directory, with
  write-then-rename atomic replacement.  Used by the storage benchmarks
  to measure the engine against an actual filesystem.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from pathlib import Path

from repro.common.errors import StorageError


class Medium(ABC):
    """Named durable byte streams."""

    @abstractmethod
    def read(self, name: str) -> bytes:
        """Full contents of ``name`` (empty bytes if it does not exist)."""

    @abstractmethod
    def append(self, name: str, data: bytes) -> None:
        """Append ``data`` to ``name``, creating it if needed."""

    @abstractmethod
    def write_atomic(self, name: str, data: bytes) -> None:
        """Replace ``name`` with ``data`` atomically: readers observe either
        the old contents or the new, never a prefix."""

    @abstractmethod
    def truncate(self, name: str) -> None:
        """Drop the contents of ``name`` (it remains present but empty)."""

    def size(self, name: str) -> int:
        return len(self.read(name))


class InMemoryMedium(Medium):
    """Byte streams in host memory, distinct from simulated process state.

    ``appends``/``replacements`` count the write operations so benchmarks
    and tests can assert the engine's I/O pattern (e.g. one atomic
    replacement per checkpoint).
    """

    def __init__(self) -> None:
        self._streams: dict[str, bytearray] = {}
        self.appends = 0
        self.replacements = 0

    def read(self, name: str) -> bytes:
        return bytes(self._streams.get(name, b""))

    def append(self, name: str, data: bytes) -> None:
        self._streams.setdefault(name, bytearray()).extend(data)
        self.appends += 1

    def write_atomic(self, name: str, data: bytes) -> None:
        self._streams[name] = bytearray(data)
        self.replacements += 1

    def truncate(self, name: str) -> None:
        self._streams[name] = bytearray()

    def size(self, name: str) -> int:
        return len(self._streams.get(name, b""))


class DirectoryMedium(Medium):
    """Real files under one directory; atomic replace via rename."""

    def __init__(self, path: str | os.PathLike) -> None:
        self._dir = Path(path)
        self._dir.mkdir(parents=True, exist_ok=True)

    def _path(self, name: str) -> Path:
        if "/" in name or name.startswith("."):
            raise StorageError(f"invalid stream name {name!r}")
        return self._dir / name

    def read(self, name: str) -> bytes:
        path = self._path(name)
        if not path.exists():
            return b""
        return path.read_bytes()

    def append(self, name: str, data: bytes) -> None:
        with open(self._path(name), "ab") as stream:
            stream.write(data)

    def write_atomic(self, name: str, data: bytes) -> None:
        path = self._path(name)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_bytes(data)
        os.replace(tmp, path)

    def truncate(self, name: str) -> None:
        self.write_atomic(name, b"")

    def size(self, name: str) -> int:
        path = self._path(name)
        return path.stat().st_size if path.exists() else 0
