"""Canonical codec for durable server state.

Serializes the server-side protocol structures — :class:`ServerState` and
everything reachable from it, plus the two state-transition messages the
WAL records — through the same tag-length-value encoding the protocol
already signs with (:mod:`repro.common.encoding`).  One codec, three
consumers:

* the log-structured engine's WAL records and snapshots,
* deterministic crash recovery (``decode(encode(state))`` is structurally
  equal to ``state.clone()`` — the *restore-is-clone* equivalence the
  rollback adversary exploits and ``tests/test_store_codec.py`` pins),
* byte-identity checks: two states are equal iff their encodings are.

Every ``*_to_tuple`` function produces plain encodable values (ints,
bytes, ``None``, enums, tuples); every ``*_from_tuple`` validates shape
and raises :class:`EncodingError` on malformed input, so a corrupt WAL
record can never half-build a state object.
"""

from __future__ import annotations

from typing import Any

from repro.common.encoding import decode, encode
from repro.common.errors import EncodingError
from repro.common.types import BOTTOM, ClientId, OpKind
from repro.replica.counter import CounterAttestation
from repro.ustor.messages import (
    CommitMessage,
    InvocationTuple,
    MemEntry,
    ReplyMessage,
    SignedVersion,
    SubmitMessage,
)
from repro.ustor.server import ServerState
from repro.ustor.version import Version


def _shape(value: Any, length: int, what: str) -> tuple:
    if not isinstance(value, tuple) or len(value) != length:
        raise EncodingError(f"malformed {what} encoding: {value!r}")
    return value


def _flex_shape(value: Any, base: int, extra: int, what: str) -> tuple:
    """Shape check for encodings with optional trailing fields.

    Accepts ``base`` to ``base + extra`` elements and pads the missing
    trailing positions with ``None``, so decoders written for the longer
    form read older (shorter) encodings unchanged — how the optional
    trace-id field stays compatible with pre-existing WALs and wire
    traces.
    """
    if not isinstance(value, tuple) or not base <= len(value) <= base + extra:
        raise EncodingError(f"malformed {what} encoding: {value!r}")
    return value + (None,) * (base + extra - len(value))


# --------------------------------------------------------------------- #
# Versions
# --------------------------------------------------------------------- #


def version_to_tuple(version: Version) -> tuple:
    return (version.vector, version.digests)


def version_from_tuple(data: tuple) -> Version:
    vector, digests = _shape(data, 2, "Version")
    return Version(vector=tuple(vector), digests=tuple(digests))


def signed_version_to_tuple(signed: SignedVersion) -> tuple:
    return (version_to_tuple(signed.version), signed.commit_sig)


def signed_version_from_tuple(data: tuple) -> SignedVersion:
    version, commit_sig = _shape(data, 2, "SignedVersion")
    return SignedVersion(version=version_from_tuple(version), commit_sig=commit_sig)


# --------------------------------------------------------------------- #
# MEM entries and invocation tuples
# --------------------------------------------------------------------- #


def mem_entry_to_tuple(entry: MemEntry) -> tuple:
    # BOTTOM (outside the value domain) maps to None; MemEntry.value is
    # never None, so the mapping is unambiguous.
    value = None if entry.value is BOTTOM else entry.value
    return (entry.timestamp, value, entry.data_sig)


def mem_entry_from_tuple(data: tuple) -> MemEntry:
    timestamp, value, data_sig = _shape(data, 3, "MemEntry")
    return MemEntry(
        timestamp=timestamp,
        value=BOTTOM if value is None else value,
        data_sig=data_sig,
    )


def invocation_to_tuple(invocation: InvocationTuple) -> tuple:
    return (
        invocation.client,
        invocation.opcode,
        invocation.register,
        invocation.submit_sig,
    )


def invocation_from_tuple(data: tuple) -> InvocationTuple:
    client, opcode, register, submit_sig = _shape(data, 4, "InvocationTuple")
    if not isinstance(opcode, OpKind):
        raise EncodingError(f"invocation opcode is not an OpKind: {opcode!r}")
    return InvocationTuple(
        client=client, opcode=opcode, register=register, submit_sig=submit_sig
    )


# --------------------------------------------------------------------- #
# The two state-transition messages (WAL record payloads)
# --------------------------------------------------------------------- #


def commit_to_tuple(message: CommitMessage) -> tuple:
    base = (
        version_to_tuple(message.version),
        message.commit_sig,
        message.proof_sig,
    )
    # The trace id is an *optional trailing* element: absent, the bytes
    # are identical to every encoding ever written before it existed.
    if message.trace_id is not None:
        return base + (message.trace_id,)
    return base


def commit_from_tuple(data: tuple) -> CommitMessage:
    version, commit_sig, proof_sig, trace_id = _flex_shape(
        data, 3, 1, "CommitMessage"
    )
    return CommitMessage(
        version=version_from_tuple(version),
        commit_sig=commit_sig,
        proof_sig=proof_sig,
        trace_id=trace_id,
    )


def submit_to_tuple(message: SubmitMessage) -> tuple:
    piggyback = (
        None if message.piggyback is None else commit_to_tuple(message.piggyback)
    )
    base = (
        message.timestamp,
        invocation_to_tuple(message.invocation),
        message.value,
        message.data_sig,
        piggyback,
    )
    if message.trace_id is not None:
        return base + (message.trace_id,)
    return base


def submit_from_tuple(data: tuple) -> SubmitMessage:
    timestamp, invocation, value, data_sig, piggyback, trace_id = _flex_shape(
        data, 5, 1, "SubmitMessage"
    )
    return SubmitMessage(
        timestamp=timestamp,
        invocation=invocation_from_tuple(invocation),
        value=value,
        data_sig=data_sig,
        piggyback=None if piggyback is None else commit_from_tuple(piggyback),
        trace_id=trace_id,
    )


def reply_to_tuple(message: ReplyMessage) -> tuple:
    reader_version = (
        None
        if message.reader_version is None
        else signed_version_to_tuple(message.reader_version)
    )
    mem = None if message.mem is None else mem_entry_to_tuple(message.mem)
    base = (
        message.commit_index,
        signed_version_to_tuple(message.last_version),
        tuple(invocation_to_tuple(inv) for inv in message.pending),
        tuple(message.proofs),
        reader_version,
        mem,
    )
    # Trailing optional fields, oldest first so old decoders still read
    # the prefix: an attestation forces an explicit None trace_id slot.
    if message.attestation is not None:
        return base + (
            message.trace_id,
            attestation_to_tuple(message.attestation),
        )
    if message.trace_id is not None:
        return base + (message.trace_id,)
    return base


def reply_from_tuple(data: tuple) -> ReplyMessage:
    (
        commit_index,
        last_version,
        pending,
        proofs,
        reader_version,
        mem,
        trace_id,
        attestation,
    ) = _flex_shape(data, 6, 2, "ReplyMessage")
    return ReplyMessage(
        commit_index=commit_index,
        last_version=signed_version_from_tuple(last_version),
        pending=tuple(invocation_from_tuple(inv) for inv in pending),
        proofs=tuple(proofs),
        reader_version=(
            None
            if reader_version is None
            else signed_version_from_tuple(reader_version)
        ),
        mem=None if mem is None else mem_entry_from_tuple(mem),
        trace_id=trace_id,
        attestation=(
            None if attestation is None else attestation_from_tuple(attestation)
        ),
    )


def attestation_to_tuple(attestation: CounterAttestation) -> tuple:
    return (
        attestation.counter_id,
        attestation.value,
        attestation.state_value,
        attestation.binding,
        attestation.mac,
    )


def attestation_from_tuple(data: tuple) -> CounterAttestation:
    counter_id, value, state_value, binding, mac = _shape(
        data, 5, "CounterAttestation"
    )
    return CounterAttestation(
        counter_id=counter_id,
        value=value,
        state_value=state_value,
        binding=binding,
        mac=mac,
    )


# --------------------------------------------------------------------- #
# ServerState
# --------------------------------------------------------------------- #


def state_to_tuple(state: ServerState) -> tuple:
    base = (
        state.num_clients,
        tuple(mem_entry_to_tuple(entry) for entry in state.mem),
        state.commit_index,
        tuple(signed_version_to_tuple(signed) for signed in state.sver),
        tuple(invocation_to_tuple(inv) for inv in state.pending),
        tuple(state.proofs),
    )
    # Optional trailing fields, oldest first: a state that never counted a
    # SUBMIT encodes exactly as it did before either field existed, and a
    # non-empty pending list (which implies submits_applied > 0) carries
    # its per-entry submit timestamps for checkpoint truncation.
    if state.pending:
        return base + (state.submits_applied, tuple(state.pending_ts))
    if state.submits_applied:
        return base + (state.submits_applied,)
    return base


def state_from_tuple(data: tuple) -> ServerState:
    num_clients, mem, commit_index, sver, pending, proofs, submits, pending_ts = (
        _flex_shape(data, 6, 2, "ServerState")
    )
    if pending_ts is None:
        # Legacy snapshot: entry ages unknown — the None sentinel keeps
        # apply_checkpoint from ever truncating them.
        pending_ts = (None,) * len(pending)
    elif len(pending_ts) != len(pending):
        raise EncodingError(
            f"ServerState pending_ts length {len(pending_ts)} does not "
            f"match pending length {len(pending)}"
        )
    return ServerState(
        num_clients=num_clients,
        mem=[mem_entry_from_tuple(entry) for entry in mem],
        commit_index=commit_index,
        sver=[signed_version_from_tuple(signed) for signed in sver],
        pending=[invocation_from_tuple(inv) for inv in pending],
        proofs=list(proofs),
        submits_applied=submits or 0,
        pending_ts=list(pending_ts),
    )


# --------------------------------------------------------------------- #
# Byte-level convenience
# --------------------------------------------------------------------- #


def decode_payload(data: bytes) -> tuple:
    """Decode one canonical payload (enum-aware); returns the value tuple."""
    return decode(data, enums=(OpKind,))


def encode_server_state(state: ServerState) -> bytes:
    """The canonical byte form of a server state: equal states, equal bytes."""
    return encode(state_to_tuple(state))


def decode_server_state(data: bytes) -> ServerState:
    (state_tuple,) = decode_payload(data)
    return state_from_tuple(state_tuple)


def encode_wal_submit(seq: int, message: SubmitMessage) -> bytes:
    return encode(("S", seq, submit_to_tuple(message)))


def encode_wal_commit(seq: int, client: ClientId, message: CommitMessage) -> bytes:
    return encode(("C", seq, client, commit_to_tuple(message)))


def encode_wal_checkpoint(seq: int, cut: tuple[int, ...]) -> bytes:
    """A durable checkpoint record: the certified stable cut at ``seq``.

    Replay re-runs :func:`~repro.ustor.server.apply_checkpoint` under the
    same defensive bound, so a recovered server converges to the same
    truncated pending list whether or not the post-checkpoint snapshot
    survived.
    """
    return encode(("K", seq, tuple(cut)))


def encode_wal_batch(entries: tuple) -> bytes:
    """One group-commit record: several WAL entries under a single frame.

    ``entries`` are the inner tuples of :func:`encode_wal_submit` /
    :func:`encode_wal_commit` (``("S", seq, ...)`` / ``("C", seq, ...)``),
    in application order.  Framing the whole batch as one record gives the
    batch a single commit point: a torn tail drops it atomically, never a
    prefix of it.
    """
    return encode(("B", entries))


def encode_snapshot(covered_seq: int, state: ServerState) -> bytes:
    return encode(("SNAP", covered_seq, state_to_tuple(state)))
