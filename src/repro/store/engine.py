"""Pluggable server storage engines: volatile, or WAL + snapshots.

The paper specifies the server (Algorithm 2) as volatile state; a
production untrusted store must persist it, and *how* it persists it is a
new attack surface — a server that restarts from a stale checkpoint
mounts a rollback/fork attack that fail-aware clients detect.  This
module gives the server a durability axis:

* :class:`MemoryEngine` — the paper's volatile server.  Nothing survives
  a crash; a restarted server comes back empty-handed (which honest
  clients detect exactly like a rollback-to-zero).
* :class:`LogStructuredEngine` — an append-only write-ahead log of state
  transitions (the SUBMIT/COMMIT messages, which are the *only* inputs
  that mutate ``ServerState``) plus periodic snapshots.  Recovery loads
  the latest snapshot and replays the WAL suffix; because
  :func:`~repro.ustor.server.apply_submit` and
  :func:`~repro.ustor.server.apply_commit` are pure state-machine
  functions, replay reproduces the pre-crash state byte-for-byte.

WAL framing: each record is ``len(4B BE) || crc32(4B BE) || payload``.
A torn tail (partial header, partial payload, or CRC mismatch — the
expected artifact of crashing mid-append) silently ends replay; a corrupt
*snapshot* raises :class:`StorageError`, because snapshots are replaced
atomically and must never be half-present.  Group commit
(:meth:`StorageEngine.log_records`, driven by the server's batched
wakeups) packs a whole drain's transitions into **one** frame — a single
append, a single commit point, torn-tail atomicity for the batch.

Compaction is driven by two signals: a plain record-count threshold
(``snapshot_interval``) and the COMMIT/GC signal — when a COMMIT prunes
the pending list (Section 5's garbage collection), the state is at its
smallest, so the engine checkpoints at the lower
``gc_snapshot_interval`` threshold.  A checkpoint atomically replaces the
snapshot and truncates the WAL.
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod
from typing import Callable, Iterator

from repro.common.errors import ConfigurationError, StorageError
from repro.common.types import ClientId
from repro.obs.registry import SIZE_BUCKETS, get_registry
from repro.store.codec import (
    commit_from_tuple,
    commit_to_tuple,
    decode_payload,
    encode_snapshot,
    encode_wal_batch,
    encode_wal_checkpoint,
    encode_wal_commit,
    encode_wal_submit,
    state_from_tuple,
    submit_from_tuple,
    submit_to_tuple,
)
from repro.store.media import DirectoryMedium, InMemoryMedium, Medium
from repro.ustor.messages import CommitMessage, SubmitMessage
from repro.ustor.server import (
    ServerState,
    apply_checkpoint,
    apply_commit,
    apply_submit,
)

_FRAME_HEADER_BYTES = 8  # 4-byte length + 4-byte crc32


def frame_record(payload: bytes) -> bytes:
    """Wrap a payload in the WAL frame: length, CRC, payload."""
    return (
        len(payload).to_bytes(4, "big")
        + zlib.crc32(payload).to_bytes(4, "big")
        + payload
    )


def iter_frames(data: bytes) -> Iterator[bytes]:
    """Yield framed payloads; stop silently at a torn or corrupt tail."""
    offset = 0
    total = len(data)
    while offset < total:
        if offset + _FRAME_HEADER_BYTES > total:
            return  # torn header
        length = int.from_bytes(data[offset : offset + 4], "big")
        crc = int.from_bytes(data[offset + 4 : offset + 8], "big")
        end = offset + _FRAME_HEADER_BYTES + length
        if end > total:
            return  # torn payload
        payload = data[offset + _FRAME_HEADER_BYTES : end]
        if zlib.crc32(payload) != crc:
            return  # corrupt tail
        yield payload
        offset = end


class StorageEngine(ABC):
    """Durability contract between :class:`~repro.ustor.server.UstorServer`
    and its storage.

    The server calls :meth:`recover` once at construction and again on
    every restart; it calls :meth:`log_submit`/:meth:`log_commit` *before*
    externalizing the corresponding REPLY (write-ahead discipline), and
    :meth:`maybe_checkpoint` after each applied transition.
    """

    name: str = "abstract"
    #: Does state survive a crash/restart cycle?
    durable: bool = False

    def __init__(self, num_clients: int) -> None:
        if num_clients < 1:
            raise ConfigurationError("need at least one client")
        self._n = num_clients

    @property
    def num_clients(self) -> int:
        return self._n

    @abstractmethod
    def recover(self, replay_wal: bool = True) -> ServerState:
        """The state to serve from: initial on first boot, reconstructed
        from durable storage after a crash.  ``replay_wal=False`` restores
        the latest snapshot *without* the WAL suffix — the honest engine
        never does this; the rollback adversary's whole attack is doing
        exactly this."""

    @abstractmethod
    def log_submit(self, message: SubmitMessage) -> None:
        """Record a SUBMIT transition before its REPLY leaves the server."""

    @abstractmethod
    def log_commit(self, client: ClientId, message: CommitMessage) -> None:
        """Record a COMMIT transition."""

    def log_checkpoint(self, cut: tuple[int, ...]) -> None:
        """Record an authenticated-checkpoint cut (no-op for volatile
        engines: there is no log to compact behind it)."""

    def log_records(self, records: list[tuple]) -> None:
        """Record a group-commit batch of transitions before any of their
        REPLYs leave the server.

        ``records`` are ``("S", submit_message)`` / ``("C", client,
        commit_message)`` / ``("K", cut)`` tuples in application order.
        The base implementation appends them one by one (correct for any
        engine); engines that can batch override this with a single
        durable write carrying one commit point for the whole batch.
        """
        for record in records:
            if record[0] == "S":
                self.log_submit(record[1])
            elif record[0] == "C":
                self.log_commit(record[1], record[2])
            else:
                self.log_checkpoint(record[1])

    def maybe_checkpoint(self, state: ServerState, gc_advanced: bool = False) -> None:
        """Checkpoint if the engine's policy says so; ``gc_advanced`` marks
        transitions where COMMIT pruned the pending list."""

    def checkpoint(self, state: ServerState) -> None:
        """Force a snapshot of ``state`` and compact the log."""


class MemoryEngine(StorageEngine):
    """The paper's volatile server: nothing is ever persisted."""

    name = "memory"
    durable = False

    def recover(self, replay_wal: bool = True) -> ServerState:
        return ServerState.initial(self._n)

    def log_submit(self, message: SubmitMessage) -> None:
        pass

    def log_commit(self, client: ClientId, message: CommitMessage) -> None:
        pass


class LogStructuredEngine(StorageEngine):
    """WAL + snapshot persistence over a :class:`Medium`."""

    name = "log"
    durable = True

    WAL = "wal"
    SNAPSHOT = "snapshot"

    def __init__(
        self,
        num_clients: int,
        medium: Medium | None = None,
        snapshot_interval: int = 64,
        gc_snapshot_interval: int | None = None,
    ) -> None:
        super().__init__(num_clients)
        if snapshot_interval < 1:
            raise ConfigurationError("snapshot_interval must be at least 1")
        if gc_snapshot_interval is not None and gc_snapshot_interval < 1:
            raise ConfigurationError("gc_snapshot_interval must be at least 1")
        self.medium = medium if medium is not None else InMemoryMedium()
        self.snapshot_interval = snapshot_interval
        self.gc_snapshot_interval = gc_snapshot_interval or max(
            1, snapshot_interval // 2
        )
        #: Sequence number of the last appended record (monotone across
        #: recoveries; snapshots store the sequence they cover).
        self._seq = 0
        self._records_since_checkpoint = 0
        # -- instrumentation for benchmarks/experiments -------------------
        self.wal_appends = 0
        self.wal_bytes_written = 0
        self.snapshots_taken = 0
        self.last_snapshot_bytes = 0
        self.last_recovery_replayed = 0
        self.group_commit_batches = 0
        self.group_commit_records = 0
        registry = get_registry()
        self._obs_wal_appends = registry.counter("store.wal_appends")
        self._obs_wal_frame_bytes = registry.histogram(
            "store.wal_frame_bytes", SIZE_BUCKETS
        )

    # ---------------------------------------------------------------- #
    # Logging
    # ---------------------------------------------------------------- #

    def log_submit(self, message: SubmitMessage) -> None:
        self._seq += 1
        self._append(encode_wal_submit(self._seq, message), records=1)

    def log_commit(self, client: ClientId, message: CommitMessage) -> None:
        self._seq += 1
        self._append(encode_wal_commit(self._seq, client, message), records=1)

    def log_checkpoint(self, cut: tuple[int, ...]) -> None:
        """Append the certified cut; the caller compacts right after, so
        the record only matters if the crash lands in between."""
        self._seq += 1
        self._append(encode_wal_checkpoint(self._seq, cut), records=1)

    def log_records(self, records: list[tuple]) -> None:
        """Group commit: the whole batch as ONE framed append.

        Every record keeps its own sequence number (recovery stays
        per-transition idempotent across snapshots), but durability is
        all-or-nothing: either the full batch survives a crash or none of
        it does — exactly the unbatched guarantee, since no REPLY covered
        by the batch leaves the server before this append returns.
        """
        if not records:
            return
        if len(records) == 1:
            # No batch framing overhead for a lone record.
            record = records[0]
            if record[0] == "S":
                self.log_submit(record[1])
            elif record[0] == "C":
                self.log_commit(record[1], record[2])
            else:
                self.log_checkpoint(record[1])
            return
        entries = []
        for record in records:
            self._seq += 1
            if record[0] == "S":
                entries.append(("S", self._seq, submit_to_tuple(record[1])))
            elif record[0] == "C":
                entries.append(("C", self._seq, record[1], commit_to_tuple(record[2])))
            else:
                entries.append(("K", self._seq, tuple(record[1])))
        self._append(encode_wal_batch(tuple(entries)), records=len(records))
        self.group_commit_batches += 1
        self.group_commit_records += len(records)

    def _append(self, payload: bytes, records: int = 1) -> None:
        framed = frame_record(payload)
        self.medium.append(self.WAL, framed)
        self.wal_appends += 1
        self.wal_bytes_written += len(framed)
        self._obs_wal_appends.inc()
        self._obs_wal_frame_bytes.observe(len(framed))
        self._records_since_checkpoint += records

    # ---------------------------------------------------------------- #
    # Checkpoints / compaction
    # ---------------------------------------------------------------- #

    @property
    def records_since_checkpoint(self) -> int:
        return self._records_since_checkpoint

    def maybe_checkpoint(self, state: ServerState, gc_advanced: bool = False) -> None:
        threshold = (
            self.gc_snapshot_interval if gc_advanced else self.snapshot_interval
        )
        if self._records_since_checkpoint >= threshold:
            self.checkpoint(state)

    def checkpoint(self, state: ServerState) -> None:
        payload = encode_snapshot(self._seq, state)
        self.medium.write_atomic(self.SNAPSHOT, frame_record(payload))
        # Compaction: every WAL record is now covered by the snapshot.
        self.medium.truncate(self.WAL)
        self._records_since_checkpoint = 0
        self.snapshots_taken += 1
        self.last_snapshot_bytes = len(payload)

    # ---------------------------------------------------------------- #
    # Recovery
    # ---------------------------------------------------------------- #

    def recover(self, replay_wal: bool = True) -> ServerState:
        state, covered = self._load_snapshot()
        self._seq = covered
        replayed = 0
        if replay_wal:
            data = self.medium.read(self.WAL)
            frames = list(iter_frames(data))
            for payload in frames:
                record = decode_payload(payload)[0]
                # A group-commit frame carries several entries; a plain
                # frame is its own single entry.
                entries = record[1] if record[0] == "B" else (record,)
                for entry in entries:
                    tag, seq = entry[0], entry[1]
                    if seq <= covered:
                        # Crash landed between snapshot write and WAL
                        # truncate: the entry is already in the snapshot.
                        continue
                    if tag == "S":
                        apply_submit(state, submit_from_tuple(entry[2]))
                    elif tag == "C":
                        apply_commit(state, entry[2], commit_from_tuple(entry[3]))
                    elif tag == "K":
                        apply_checkpoint(state, tuple(entry[2]))
                    else:
                        raise StorageError(f"unknown WAL record tag {tag!r}")
                    self._seq = seq
                    replayed += 1
            valid_end = sum(_FRAME_HEADER_BYTES + len(p) for p in frames)
            if valid_end < len(data):
                # Trim the torn tail now: appends after this recovery must
                # not be stranded behind corrupt bytes, where the *next*
                # recovery's replay would silently stop short of them.
                self.medium.write_atomic(self.WAL, data[:valid_end])
            self._records_since_checkpoint = replayed
        else:
            # Deliberately forget the suffix (rollback semantics): truncate
            # so future appends cannot interleave with discarded history.
            self.medium.truncate(self.WAL)
            self._records_since_checkpoint = 0
        self.last_recovery_replayed = replayed
        return state

    def _load_snapshot(self) -> tuple[ServerState, int]:
        data = self.medium.read(self.SNAPSHOT)
        if not data:
            return ServerState.initial(self._n), 0
        frames = list(iter_frames(data))
        if len(frames) != 1:
            raise StorageError(
                "corrupt snapshot: snapshots are written atomically and must "
                "contain exactly one valid frame"
            )
        record = decode_payload(frames[0])[0]
        if not (isinstance(record, tuple) and len(record) == 3 and record[0] == "SNAP"):
            raise StorageError("corrupt snapshot: malformed SNAP record")
        _, covered, state_tuple = record
        return state_from_tuple(state_tuple), covered


#: Engine classes by the name ``SystemConfig.storage`` selects.
ENGINES: dict[str, type[StorageEngine]] = {
    MemoryEngine.name: MemoryEngine,
    LogStructuredEngine.name: LogStructuredEngine,
}

def make_engine(
    spec: str | StorageEngine | Callable[[int], StorageEngine],
    num_clients: int,
) -> StorageEngine:
    """Resolve a storage spec: an engine name (``"memory"`` / ``"log"``),
    ``"dir:<path>"`` (the log engine over real files in ``<path>`` — the
    form server *processes* use, since their state must outlive them), an
    engine instance (passed through), or a factory ``f(num_clients)``."""
    if isinstance(spec, StorageEngine):
        return spec
    if isinstance(spec, str):
        if spec.startswith("dir:"):
            path = spec[len("dir:"):]
            if not path:
                raise ConfigurationError(
                    "the 'dir:' storage spec needs a directory path, "
                    "e.g. 'dir:/var/lib/faust'"
                )
            return LogStructuredEngine(num_clients, medium=DirectoryMedium(path))
        try:
            cls = ENGINES[spec]
        except KeyError:
            raise ConfigurationError(
                f"unknown storage engine {spec!r}; choose from {sorted(ENGINES)}"
            ) from None
        return cls(num_clients)
    if callable(spec):
        engine = spec(num_clients)
        if not isinstance(engine, StorageEngine):
            raise ConfigurationError(
                f"storage factory returned {type(engine).__name__}, "
                f"not a StorageEngine"
            )
        return engine
    raise ConfigurationError(f"cannot interpret storage spec {spec!r}")
