"""Weak fork-linearizability (Definition 6) — the paper's new notion.

A history is weakly fork-linearizable iff each client ``C_i`` has a view
``pi_i`` such that:

1. ``pi_i`` is a view of the history at ``C_i`` (Definition 1);
2. ``pi_i`` preserves the *weak* real-time order — real-time order with
   each client's **last** operation in the view exempt;
3. (causality) every update causally preceding an operation of ``pi_i``
   appears in ``pi_i``, before it;
4. (at-most-one-join) for every client ``C_j`` and every two operations
   ``o, o'`` in ``pi_i ∩ pi_j`` *by the same client* with ``o`` preceding
   ``o'``: ``pi_i|o = pi_j|o`` — so only the last common operation of each
   client may sit on divergent prefixes.

The weakened conditions 2 and 4 are exactly what admits wait-free
protocols (Sections 4-5); condition 3 restores the causality that
fork-*-linearizability loses.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.common.errors import CheckerError
from repro.common.types import ClientId
from repro.history.causality import build_causal_structure
from repro.history.events import Operation
from repro.history.history import History
from repro.consistency.fork import prefixes_agree
from repro.consistency.report import CheckResult, ok, violated
from repro.consistency.views import (
    enumerate_views,
    preserves_weak_real_time,
    view_violation,
)

_CONDITION = "weak-fork-linearizability"


def causality_violation(
    history: History, view: Sequence[Operation]
) -> str | None:
    """Definition 6 condition 3 on one candidate view (or None if fine)."""
    structure = build_causal_structure(history)
    position = {op.op_id: i for i, op in enumerate(view)}
    for op in view:
        for ancestor_id in structure.ancestors(op.op_id):
            ancestor = history.op(ancestor_id)
            if not ancestor.is_write:
                continue
            if ancestor_id not in position:
                return (
                    f"update {ancestor.describe()} causally precedes "
                    f"{op.describe()} but is missing from the view"
                )
            if position[ancestor_id] > position[op.op_id]:
                return (
                    f"update {ancestor.describe()} causally precedes "
                    f"{op.describe()} but follows it in the view"
                )
    return None


def at_most_one_join_violation(
    pi_i: Sequence[Operation], pi_j: Sequence[Operation]
) -> str | None:
    """Definition 6 condition 4 between two concrete views (or None)."""
    ids_j = {op.op_id for op in pi_j}
    common_by_client: dict[ClientId, list[Operation]] = defaultdict(list)
    for op in pi_i:  # pi_i order; ops of one client are program-ordered
        if op.op_id in ids_j:
            common_by_client[op.client].append(op)
    for client, ops in common_by_client.items():
        # Every common op except the client's last must have equal prefixes.
        for op in ops[:-1]:
            if not prefixes_agree(pi_i, pi_j, op.op_id):
                return (
                    f"views share operations {ops[-1].op_id} and {op.op_id} of "
                    f"C{client + 1} but disagree on the prefix up to {op.op_id}"
                )
    return None


def validate_weak_fork_linearizability(
    history: History, views: dict[ClientId, Sequence[Operation]]
) -> CheckResult:
    """Check concrete candidate views against Definition 6.

    ``history`` may contain incomplete operations; it is completion-extended
    with the standard rules first.  Views must draw their operations from
    the prepared history (use :func:`prepare_history_for_views` to build
    matching operation objects from protocol output).
    """
    prepared = history.completed_for_checking()
    for client, view in views.items():
        problem = view_violation(prepared, client, view)
        if problem is not None:
            return violated(_CONDITION, f"C{client + 1}: {problem} (condition 1)")
        if not preserves_weak_real_time(view, prepared):
            return violated(
                _CONDITION,
                f"view of C{client + 1} violates weak real-time order (condition 2)",
            )
        problem = causality_violation(prepared, view)
        if problem is not None:
            return violated(_CONDITION, f"C{client + 1}: {problem} (condition 3)")
    clients = sorted(views)
    for pos, i in enumerate(clients):
        for j in clients[pos + 1 :]:
            problem = at_most_one_join_violation(views[i], views[j])
            if problem is None:
                problem = at_most_one_join_violation(views[j], views[i])
            if problem is not None:
                return violated(
                    _CONDITION,
                    f"C{i + 1}/C{j + 1}: {problem} (condition 4)",
                )
    return ok(_CONDITION, witness=views)


def check_weak_fork_linearizability_exhaustive(
    history: History, max_ops: int = 7
) -> CheckResult:
    """Joint existential search over per-client views (small histories)."""
    prepared = history.completed_for_checking()
    prepared.assert_unique_write_values()
    if len(prepared) > max_ops:
        raise CheckerError(
            f"exhaustive weak-fork checker limited to {max_ops} ops, "
            f"got {len(prepared)}"
        )
    clients = prepared.clients()

    def condition_2_and_3(sequence) -> bool:
        return (
            preserves_weak_real_time(sequence, prepared)
            and causality_violation(prepared, sequence) is None
        )

    candidate_views: dict[ClientId, list[tuple[Operation, ...]]] = {}
    for client in clients:
        candidates = list(
            enumerate_views(prepared, client, extra_filter=condition_2_and_3)
        )
        if not candidates:
            return violated(
                _CONDITION,
                f"no view satisfying conditions 1-3 exists for C{client + 1}",
            )
        candidate_views[client] = candidates

    assignment: dict[ClientId, tuple[Operation, ...]] = {}

    def compatible(view, other) -> bool:
        return (
            at_most_one_join_violation(view, other) is None
            and at_most_one_join_violation(other, view) is None
        )

    def assign(index: int) -> bool:
        if index == len(clients):
            return True
        client = clients[index]
        for view in candidate_views[client]:
            if all(compatible(view, assignment[p]) for p in clients[:index]):
                assignment[client] = view
                if assign(index + 1):
                    return True
                del assignment[client]
        return False

    if assign(0):
        return ok(_CONDITION, witness=dict(assignment))
    return violated(
        _CONDITION, "no compatible family of views exists (exhaustive search)"
    )
