"""Uniform result type for all consistency checkers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class CheckResult:
    """Outcome of a consistency check.

    ``ok`` is the verdict; ``condition`` names the checked notion
    ("linearizability", "causal-consistency", ...); ``violation`` describes
    the first failure found; ``witness`` optionally carries evidence — a
    satisfying linearization / views for positive results, the offending
    operations for negative ones.
    """

    ok: bool
    condition: str
    violation: str | None = None
    witness: Any = field(default=None, compare=False)

    def __bool__(self) -> bool:
        return self.ok

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.ok:
            return f"{self.condition}: OK"
        return f"{self.condition}: VIOLATED ({self.violation})"


def ok(condition: str, witness: Any = None) -> CheckResult:
    """A passing :class:`CheckResult` for ``condition``."""
    return CheckResult(ok=True, condition=condition, witness=witness)


def violated(condition: str, violation: str, witness: Any = None) -> CheckResult:
    """A failing :class:`CheckResult` describing the first violation."""
    return CheckResult(ok=False, condition=condition, violation=violation, witness=witness)
