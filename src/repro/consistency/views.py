"""Views of a history at a client (Definition 1) and related predicates.

A *view* of history ``sigma`` at client ``C_i`` is a sequential, legal
permutation of a subset of the (completion-extended) operations that
contains exactly ``C_i``'s complete operations in their original order.
Forking consistency notions quantify existentially over views, so this
module provides both a *validator* (given a candidate sequence, check it)
and an *enumerator* (generate all views of a small history) used by the
exhaustive fork / weak-fork checkers.
"""

from __future__ import annotations

from itertools import combinations, permutations
from typing import Iterable, Iterator, Sequence

from repro.common.types import ClientId
from repro.history.events import Operation
from repro.history.history import History
from repro.history.register_spec import explain_illegal, is_legal_sequence
from repro.consistency.report import CheckResult, ok, violated


def view_violation(
    history: History, client: ClientId, sequence: Sequence[Operation]
) -> str | None:
    """Why ``sequence`` is not a view of ``history`` at ``client`` (or None).

    ``history`` should already be completion-extended
    (:meth:`History.completed_for_checking` or protocol-derived); the
    sequence must draw its operations from it.
    """
    known = {op.op_id for op in history}
    seen: set[int] = set()
    for op in sequence:
        if op.op_id not in known:
            return f"operation {op.op_id} does not occur in the history"
        if op.op_id in seen:
            return f"operation {op.op_id} occurs twice in the candidate view"
        seen.add(op.op_id)

    own_in_view = [op.op_id for op in sequence if op.client == client]
    own_ops = history.restrict_to_client(client)
    # Operations completed synthetically (responded_at == inf) were pending
    # in the original execution; Definition 1 lets each view's extension
    # sigma' choose whether to append their response, so they are optional.
    required = [op.op_id for op in own_ops if op.responded_at != float("inf")]
    allowed_order = [op.op_id for op in own_ops]
    if [op_id for op_id in own_in_view if op_id in set(required)] != required:
        return (
            f"view restricted to C{client + 1} is {own_in_view} but must "
            f"contain all of {required} in order (Definition 1, condition 2)"
        )
    it = iter(allowed_order)
    if not all(any(op_id == candidate for candidate in it) for op_id in own_in_view):
        return (
            f"view lists C{client + 1}'s operations out of program order "
            f"(Definition 1, condition 2)"
        )

    problem = explain_illegal(list(sequence))
    if problem is not None:
        return f"view violates the register specification: {problem}"
    return None


def is_view_of(
    history: History, client: ClientId, sequence: Sequence[Operation]
) -> bool:
    """Is ``sequence`` a view of ``history`` at ``client`` (Definition 1)?"""
    return view_violation(history, client, sequence) is None


def preserves_real_time(sequence: Sequence[Operation], history: History) -> bool:
    """Does the sequence preserve ``<_sigma`` (Definition 2, condition 2)?"""
    position = {op.op_id: i for i, op in enumerate(sequence)}
    ops = [op for op in history if op.op_id in position]
    for a in ops:
        for b in ops:
            if a.precedes(b) and position[a.op_id] > position[b.op_id]:
                return False
    return True


def lastops(sequence: Sequence[Operation]) -> set[int]:
    """``lastops(pi)``: the last operation of every client in the sequence."""
    last: dict[ClientId, int] = {}
    for op in sequence:
        last[op.client] = op.op_id
    return set(last.values())


def preserves_weak_real_time(
    sequence: Sequence[Operation], history: History
) -> bool:
    """Weak real-time order (Section 4): real-time order must hold after
    removing each client's last operation from the sequence."""
    exempt = lastops(sequence)
    trimmed = [op for op in sequence if op.op_id not in exempt]
    return preserves_real_time(trimmed, history)


def enumerate_views(
    history: History,
    client: ClientId,
    extra_filter=None,
) -> Iterator[tuple[Operation, ...]]:
    """All views of a (small, completion-extended) history at a client.

    Candidates range over every subset of other clients' operations
    combined with all of ``client``'s operations, in every legal order.
    ``extra_filter`` (sequence -> bool) prunes orders early, e.g. real-time
    preservation for fork-linearizability.
    """
    own = [op for op in history.restrict_to_client(client)]
    others = [op for op in history if op.client != client]
    for r in range(len(others) + 1):
        for chosen in combinations(others, r):
            pool = own + list(chosen)
            for perm in permutations(pool):
                own_order = [op.op_id for op in perm if op.client == client]
                if own_order != [op.op_id for op in own]:
                    continue
                if not is_legal_sequence(perm):
                    continue
                if extra_filter is not None and not extra_filter(perm):
                    continue
                yield perm


def validate_view(
    history: History, client: ClientId, sequence: Sequence[Operation], condition: str
) -> CheckResult:
    """CheckResult wrapper around :func:`view_violation`."""
    problem = view_violation(history, client, sequence)
    if problem is None:
        return ok(condition)
    return violated(condition, f"C{client + 1}: {problem}")
