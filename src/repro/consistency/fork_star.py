"""Fork-*-linearizability (Li & Mazieres, NSDI 2007; paper Section 4).

Adapted to this model as the paper describes it: each client has a view
that preserves the **full** real-time order of the history (including,
"oddly", every other client's last operation) and the views satisfy
**at-most-one-join** — but, unlike weak fork-linearizability, there is
*no causality requirement*.

Section 4 claims weak fork-linearizability is *neither stronger nor
weaker* than fork-*-linearizability.  The two witnesses (exercised in the
test-suite and experiment E12):

* Figure 3's history is weakly fork-linearizable but **not**
  fork-*-linearizable — C2's view must order the hidden read before the
  write, violating full real-time order.
* A causality-violating history (a client observes a write through a data
  dependency yet reads older state of the causally-preceding register)
  can be fork-*-linearizable while weak fork-linearizability's condition 3
  forbids it.
"""

from __future__ import annotations

from typing import Sequence

from repro.common.errors import CheckerError
from repro.common.types import ClientId
from repro.history.events import Operation
from repro.history.history import History
from repro.consistency.report import CheckResult, ok, violated
from repro.consistency.views import enumerate_views, preserves_real_time, view_violation
from repro.consistency.weak_fork import at_most_one_join_violation

_CONDITION = "fork-star-linearizability"


def validate_fork_star_linearizability(
    history: History, views: dict[ClientId, Sequence[Operation]]
) -> CheckResult:
    """Validator form: check concrete candidate views."""
    prepared = history.completed_for_checking()
    for client, view in views.items():
        problem = view_violation(prepared, client, view)
        if problem is not None:
            return violated(_CONDITION, f"C{client + 1}: {problem}")
        if not preserves_real_time(view, prepared):
            return violated(
                _CONDITION,
                f"view of C{client + 1} does not preserve (full) real-time order",
            )
    clients = sorted(views)
    for position, i in enumerate(clients):
        for j in clients[position + 1 :]:
            problem = at_most_one_join_violation(views[i], views[j])
            if problem is None:
                problem = at_most_one_join_violation(views[j], views[i])
            if problem is not None:
                return violated(_CONDITION, f"C{i + 1}/C{j + 1}: {problem}")
    return ok(_CONDITION, witness=views)


def check_fork_star_linearizability_exhaustive(
    history: History, max_ops: int = 7
) -> CheckResult:
    """Joint existential search over per-client views (small histories)."""
    prepared = history.completed_for_checking()
    prepared.assert_unique_write_values()
    if len(prepared) > max_ops:
        raise CheckerError(
            f"exhaustive fork-* checker limited to {max_ops} ops, got {len(prepared)}"
        )
    clients = prepared.clients()

    def rt_filter(sequence) -> bool:
        return preserves_real_time(sequence, prepared)

    candidate_views: dict[ClientId, list[tuple[Operation, ...]]] = {}
    for client in clients:
        candidates = list(enumerate_views(prepared, client, extra_filter=rt_filter))
        if not candidates:
            return violated(
                _CONDITION,
                f"no real-time-preserving view exists for C{client + 1}",
            )
        candidate_views[client] = candidates

    assignment: dict[ClientId, tuple[Operation, ...]] = {}

    def compatible(view, other) -> bool:
        return (
            at_most_one_join_violation(view, other) is None
            and at_most_one_join_violation(other, view) is None
        )

    def assign(index: int) -> bool:
        if index == len(clients):
            return True
        client = clients[index]
        for view in candidate_views[client]:
            if all(compatible(view, assignment[p]) for p in clients[:index]):
                assignment[client] = view
                if assign(index + 1):
                    return True
                del assignment[client]
        return False

    if assign(0):
        return ok(_CONDITION, witness=dict(assignment))
    return violated(
        _CONDITION, "no compatible family of views exists (exhaustive search)"
    )
