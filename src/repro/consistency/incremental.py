"""Streaming incremental checkers: O(delta) periodic audits.

The offline checkers (:mod:`repro.consistency.linearizability`,
:mod:`repro.consistency.causal`) re-examine the *entire* history on every
call, so a workload that audits itself every T time units pays
O(history) per audit — quadratic over a run, and the dominant cost of
long audited workloads (the macro inefficiency the throughput pipeline
removes).  The checkers here consume the operation stream *as it is
recorded* and maintain just enough state to decide the same conditions,
so each audit costs O(operations appended since the last audit) and a
verdict read is O(1).

Both checkers implement the :class:`~repro.history.recorder.
HistoryRecorder` listener protocol (``on_invoke`` / ``on_response``) —
attach them with ``recorder.add_listener(checker)`` (or use
:class:`~repro.workloads.runner.IncrementalAuditor`, which wires and
polls them) — and agree with their offline counterparts on every history
recorded from a live execution:

* :class:`IncrementalLinearizabilityChecker` decides Definition 2 with
  the same three SWMR rules as :func:`~repro.consistency.
  linearizability.check_linearizability` (value-from-the-future, stale
  read, new/old inversion).  Per completed read the work is O(1) plus an
  amortized-O(log reads) staircase update for the inversion rule.
* :class:`IncrementalCausalChecker` decides Definition 3 with the
  writes-into characterisation of :func:`~repro.consistency.causal.
  check_causal_consistency`, maintained as per-client vector clocks
  (operation counts for cycle detection, per-writer write counts for the
  causally-overwritten rule) — O(clients) per operation.

Both process writes at *invocation* (the offline checkers keep
incomplete writes: they may have been read) and reads at *response*
(incomplete reads are dropped, exactly as ``completed_for_checking``
does), so an audit mid-run equals the offline verdict on the same
prefix.  A read returning a value no invoked write produced is reported
as a violation — the offline verdict on that prefix — and re-examined if
the write appears later (impossible in histories recorded from real
executions, where a value cannot be known before its write is invoked;
it matters only when replaying synthetic histories).

``tests/test_consistency_incremental.py`` pins the agreement with the
offline checkers on randomized protocol runs, Byzantine runs and
handcrafted violations.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass, field

from repro.common.types import BOTTOM, OpKind
from repro.history.events import Operation
from repro.history.history import History
from repro.consistency.report import CheckResult, ok, violated


class IncrementalChecker:
    """Shared machinery: sticky verdicts and stream statistics.

    Subclasses implement ``on_invoke``/``on_response`` and record the
    first violation through :meth:`_violate`; :meth:`result` then renders
    the current verdict without touching the history again.
    """

    condition = "incremental"

    def __init__(self) -> None:
        self._violation: CheckResult | None = None
        #: Reads whose value matched no invoked write yet, keyed by
        #: ``(register, value bytes)`` — a violation while unresolved.
        self._orphans: dict[tuple, list[Operation]] = {}
        self.ops_processed = 0

    # -- stream hooks (the HistoryRecorder listener protocol) ----------- #

    def on_invoke(self, op: Operation) -> None:
        """Observe one invocation (writes take effect here)."""
        raise NotImplementedError  # pragma: no cover - abstract

    def on_response(self, op: Operation) -> None:
        """Observe one response (reads take effect here)."""
        raise NotImplementedError  # pragma: no cover - abstract

    # -- verdicts -------------------------------------------------------- #

    def _violate(self, description: str, witness=None) -> None:
        if self._violation is None:
            self._violation = violated(self.condition, description, witness=witness)

    @property
    def ok(self) -> bool:
        """Is the stream consistent so far? (O(1))."""
        return self._violation is None and not self._orphans

    def result(self) -> CheckResult:
        """The verdict over everything streamed so far (O(1))."""
        if self._violation is not None:
            return self._violation
        if self._orphans:
            reads = next(iter(self._orphans.values()))
            return violated(
                self.condition,
                f"{reads[0].describe()} returned a value that was never "
                f"written",
                witness=reads[0],
            )
        return ok(self.condition)


@dataclass
class _RegisterState:
    """Per-register linearizability state.

    ``writes`` holds the register's writes in writer program order (SWMR:
    one sequential writer totally orders them); index ``k`` (1-based)
    denotes the k-th write, index 0 the initial BOTTOM.  ``staircase``
    is the new/old-inversion structure: ``(responded_at, write_index)``
    pairs kept sorted by response time with strictly increasing indexes,
    so "the newest write observed by any read that completed before t"
    is one bisection away.
    """

    writes: list[Operation] = field(default_factory=list)
    index_of_value: dict[bytes, int] = field(default_factory=dict)
    staircase: list[tuple[float, int]] = field(default_factory=list)
    #: Checkpoint base: writes pruned behind the co-signed cut.  Indexes
    #: stay absolute (write k of the execution is still index k); the
    #: ``writes`` list holds entries ``base + 1 ..``.
    base: int = 0
    base_time: float = float("-inf")


class IncrementalLinearizabilityChecker(IncrementalChecker):
    """Streaming Definition 2 (atomicity) for SWMR register histories."""

    condition = "linearizability"

    def __init__(self) -> None:
        super().__init__()
        self._registers: dict[int, _RegisterState] = {}

    def _register(self, register: int) -> _RegisterState:
        state = self._registers.get(register)
        if state is None:
            state = self._registers[register] = _RegisterState()
        return state

    # -- stream hooks ---------------------------------------------------- #

    def on_invoke(self, op: Operation) -> None:
        """Record a write at invocation (reads wait for their response)."""
        if not op.is_write:
            return
        self.ops_processed += 1
        state = self._register(op.register)
        key = bytes(op.value)
        if key in state.index_of_value:
            self._violate(
                f"writes of register {op.register} repeat the value "
                f"{op.value!r}; unique values are assumed",
                witness=op,
            )
            return
        state.writes.append(op)
        index = state.base + len(state.writes)
        state.index_of_value[key] = index
        orphans = self._orphans.pop((op.register, key), None)
        if orphans:
            for read in orphans:
                self._check_read(read, index, state)

    def on_response(self, op: Operation) -> None:
        """Process a completed read; record a write's response time."""
        if op.is_write:
            # Find it in its register's write list: it is the last one
            # (SWMR program order — the writer cannot have moved on).
            state = self._register(op.register)
            if state.writes and state.writes[-1].op_id == op.op_id:
                state.writes[-1] = op
            return
        self.ops_processed += 1
        state = self._register(op.register)
        if op.value is BOTTOM:
            self._check_read(op, 0, state)
        elif op.value is None:
            self._violate(f"read {op.op_id} has no recorded return value", op)
        else:
            index = state.index_of_value.get(bytes(op.value))
            if index is None:
                self._orphans.setdefault(
                    (op.register, bytes(op.value)), []
                ).append(op)
            else:
                self._check_read(op, index, state)

    def seed_base(self, base: dict[int, tuple[int, float]]) -> None:
        """Adopt a compacted history's checkpoint base before a replay."""
        for register, (count, last) in base.items():
            state = self._register(register)
            state.base = count
            state.base_time = last

    def on_compact(self, cut: tuple[int, ...], keep_tail: int) -> None:
        """Prune checker state behind a co-signed checkpoint cut.

        Mirrors :meth:`~repro.history.recorder.HistoryRecorder.compact`:
        per register, writes with ``timestamp <= cut[register]`` are
        dropped except the newest ``keep_tail``; their values leave the
        index so a later (Byzantine) read of a pruned value surfaces as
        an orphan, exactly as the offline checker reports "never
        written" on the compacted history.
        """
        for register, state in self._registers.items():
            if register >= len(cut):
                continue
            writes = state.writes
            eligible = 0
            while eligible < len(writes):
                timestamp = writes[eligible].timestamp
                if timestamp is None or timestamp > cut[register]:
                    break
                eligible += 1
            prune = eligible - keep_tail
            if prune <= 0:
                continue
            dropped = writes[:prune]
            del writes[:prune]
            for write in dropped:
                state.index_of_value.pop(bytes(write.value), None)
            state.base += prune
            last = dropped[-1].responded_at
            if last is not None and last > state.base_time:
                state.base_time = last
            state.staircase = [
                entry for entry in state.staircase if entry[1] > state.base
            ]

    # -- the three SWMR rules, incrementally ----------------------------- #

    def _check_read(self, read: Operation, index: int, state: _RegisterState) -> None:
        # Rule 1 — value from the future: the read completed before the
        # write it returns was invoked.  Indexes are absolute; mapped
        # values always point at retained writes (index > base).
        if index >= 1:
            write = state.writes[index - 1 - state.base]
            if read.responded_at < write.invoked_at:
                self._violate(
                    f"{read.describe()} completed before {write.describe()} "
                    f"was invoked (value from the future)",
                    witness=(read, write),
                )
                return
        elif state.base and read.invoked_at > state.base_time:
            # BOTTOM behind a checkpoint base: a pruned write completed
            # before this read was invoked.  Reads overlapping the pruned
            # era may legitimately see BOTTOM.
            self._violate(
                f"{read.describe()} is stale: {state.base} checkpointed "
                f"write(s) of register {read.register} completed before "
                f"the read was invoked, yet it returned BOTTOM",
                witness=read,
            )
            return
        # Rule 2 — stale read: a later write completed before the read was
        # invoked.  Writes respond in index order (program order), so the
        # earliest-responding later write is the very next one.
        position = max(index - state.base, 0)
        if position < len(state.writes):
            later = state.writes[position]
            if later.responded_at is not None and later.responded_at < read.invoked_at:
                self._violate(
                    f"{read.describe()} is stale: {later.describe()} "
                    f"completed before the read was invoked",
                    witness=(read, later),
                )
                return
        # Rule 3 — new/old inversion: some read that completed before this
        # one was invoked observed a strictly newer write.
        position = bisect_left(state.staircase, (read.invoked_at, -1))
        if position and state.staircase[position - 1][1] > index:
            self._violate(
                f"new/old inversion: a read preceding {read.describe()} "
                f"observed write #{state.staircase[position - 1][1]} of "
                f"register {read.register}, newer than write #{index}",
                witness=read,
            )
            return
        self._staircase_insert(state, read.responded_at, index)

    @staticmethod
    def _staircase_insert(state: _RegisterState, responded_at: float, index: int) -> None:
        # Keep only Pareto-optimal (earliest response, newest write)
        # pairs: response times ascending, indexes strictly ascending.
        stairs = state.staircase
        position = bisect_left(stairs, (responded_at, -1))
        if position and stairs[position - 1][1] >= index:
            return  # dominated: an earlier read already saw a newer write
        insort(stairs, (responded_at, index))
        position = bisect_left(stairs, (responded_at, index)) + 1
        # Drop now-dominated later entries (amortized O(1): each entry is
        # removed at most once over the checker's lifetime).
        while position < len(stairs) and stairs[position][1] <= index:
            del stairs[position]


@dataclass
class _ClientState:
    """Per-client causal state: program-order position and vector clocks.

    ``ops[j]`` counts operations of client ``j`` in this client's causal
    past (cycle detection); ``writes[j]`` counts *writes* of client ``j``
    in it — and because SWMR writes of a register are totally ordered by
    writer program order, ``writes[j]`` IS the index of the newest write
    of register ``j`` causally preceding this client's next operation.
    """

    position: int = 0
    ops: dict[int, int] = field(default_factory=dict)
    writes: dict[int, int] = field(default_factory=dict)


def _merge(into: dict[int, int], other: dict[int, int]) -> None:
    for key, value in other.items():
        if value > into.get(key, 0):
            into[key] = value


class IncrementalCausalChecker(IncrementalChecker):
    """Streaming Definition 3 (causal consistency) for SWMR histories."""

    condition = "causal-consistency"

    def __init__(self) -> None:
        super().__init__()
        self._clients: dict[int, _ClientState] = {}
        #: Per register: the vector-clock snapshots of each write, in
        #: writer program order (1-based index = write index).  After
        #: checkpoint compaction the list holds writes ``base + 1 ..``
        #: (indexes stay absolute; ``_reg_base`` is the offset).
        self._write_clocks: dict[int, list[tuple[dict, dict]]] = {}
        #: Protocol timestamps parallel to ``_write_clocks`` — the prune
        #: rule is phrased over them.
        self._write_ts: dict[int, list[int | None]] = {}
        self._reg_base: dict[int, int] = {}
        self._index_of_value: dict[int, dict[bytes, int]] = {}

    def _client(self, client: int) -> _ClientState:
        state = self._clients.get(client)
        if state is None:
            state = self._clients[client] = _ClientState()
        return state

    # -- stream hooks ---------------------------------------------------- #

    def on_invoke(self, op: Operation) -> None:
        """Fold a write into its writer's causal past at invocation."""
        if not op.is_write:
            return
        self.ops_processed += 1
        values = self._index_of_value.setdefault(op.register, {})
        key = bytes(op.value)
        if key in values:
            # Check BEFORE mutating any clock state: a duplicate must not
            # desynchronize the write index from ``_write_clocks`` (later
            # reads index into it), only leave the sticky verdict.
            self._violate(
                f"writes of register {op.register} repeat the value "
                f"{op.value!r}; unique values are assumed",
                witness=op,
            )
            return
        state = self._client(op.client)
        state.position += 1
        state.ops[op.client] = state.position
        state.writes[op.register] = state.writes.get(op.register, 0) + 1
        values[key] = state.writes[op.register]
        self._write_clocks.setdefault(op.register, []).append(
            (dict(state.ops), dict(state.writes))
        )
        self._write_ts.setdefault(op.register, []).append(op.timestamp)
        orphans = self._orphans.pop((op.register, key), None)
        if orphans:
            for read in orphans:
                self._absorb_read(read, values[key])

    def on_response(self, op: Operation) -> None:
        """Fold a completed read into its reader's causal past."""
        if op.is_write:
            return
        self.ops_processed += 1
        if op.value is BOTTOM:
            state = self._client(op.client)
            state.position += 1
            state.ops[op.client] = state.position
            if state.writes.get(op.register, 0) > 0:
                self._violate(
                    f"{op.describe()} is causally overwritten: a write of "
                    f"register {op.register} causally precedes the read "
                    f"yet it returned BOTTOM",
                    witness=op,
                )
            return
        if op.value is None:
            self._violate(f"read {op.op_id} has no recorded return value", op)
            return
        index = self._index_of_value.get(op.register, {}).get(bytes(op.value))
        if index is None:
            self._orphans.setdefault(
                (op.register, bytes(op.value)), []
            ).append(op)
            # The read still advances its client's program order.
            state = self._client(op.client)
            state.position += 1
            state.ops[op.client] = state.position
            return
        state = self._client(op.client)
        state.position += 1
        state.ops[op.client] = state.position
        self._absorb_read(op, index)

    def seed_base(self, base: dict[int, tuple[int, float]]) -> None:
        """Adopt a compacted history's checkpoint base before a replay.

        SWMR: the writer of register ``j`` is client ``j``, so the
        writer's cumulative write count starts at the pruned count —
        that keeps the value index absolute across the replay.
        """
        for register, (count, _last) in base.items():
            self._reg_base[register] = count
            writer = self._client(register)
            writer.writes[register] = max(
                writer.writes.get(register, 0), count
            )

    def on_compact(self, cut: tuple[int, ...], keep_tail: int) -> None:
        """Prune write-clock prefixes behind a co-signed checkpoint cut.

        The reader-side cumulative clocks are untouched (the BOTTOM and
        causally-overwritten rules compare absolute counts); only the
        per-write snapshots and the value index shed the pruned prefix,
        by the same rule as the recorder.
        """
        for register, clocks in self._write_clocks.items():
            if register >= len(cut):
                continue
            ts_list = self._write_ts[register]
            eligible = 0
            while eligible < len(ts_list):
                timestamp = ts_list[eligible]
                if timestamp is None or timestamp > cut[register]:
                    break
                eligible += 1
            prune = eligible - keep_tail
            if prune <= 0:
                continue
            del clocks[:prune]
            del ts_list[:prune]
            base = self._reg_base.get(register, 0) + prune
            self._reg_base[register] = base
            values = self._index_of_value.get(register, {})
            for key in [k for k, idx in values.items() if idx <= base]:
                del values[key]

    # -- the writes-into rules, as clock arithmetic ---------------------- #

    def _absorb_read(self, read: Operation, index: int) -> None:
        state = self._client(read.client)
        base = self._reg_base.get(read.register, 0)
        write_ops, write_writes = self._write_clocks[read.register][index - 1 - base]
        # Cycle: the write already counts this client up to (or past) the
        # read itself — the read would causally precede its own source.
        if write_ops.get(read.client, 0) >= state.ops.get(read.client, 0):
            self._violate(
                f"potential causality contains a cycle: the write read by "
                f"{read.describe()} causally depends on the read",
                witness=read,
            )
            return
        # Causally overwritten: a strictly newer write of the register is
        # already in the reader's causal past.
        if state.writes.get(read.register, 0) > index:
            self._violate(
                f"{read.describe()} is causally overwritten: write "
                f"#{state.writes[read.register]} of register "
                f"{read.register} causally precedes the read",
                witness=read,
            )
            return
        _merge(state.ops, write_ops)
        _merge(state.writes, write_writes)


def attach_incremental_checkers(
    recorder, checks: tuple[str, ...] = ("linearizability", "causal")
) -> dict[str, IncrementalChecker]:
    """Create and subscribe streaming checkers on a live recorder.

    ``checks`` names any of ``"linearizability"`` / ``"causal"``; the
    returned dict maps each name to its attached checker.  Operations the
    recorder has already seen are replayed into each checker first, so
    attaching mid-run is sound — without the catch-up, a read returning a
    pre-attach value would be misreported as fabricated.
    """
    made: dict[str, IncrementalChecker] = {}
    past = recorder.history() if (recorder.completed_count or recorder.pending_count) else None
    for name in checks:
        if name == "linearizability":
            made[name] = IncrementalLinearizabilityChecker()
        elif name == "causal":
            made[name] = IncrementalCausalChecker()
        else:
            raise ValueError(
                f"unknown incremental check {name!r}; choose from "
                f"('linearizability', 'causal')"
            )
        if past is not None:
            if past.base:
                made[name].seed_base(past.base)
            replay_history(made[name], past)
        recorder.add_listener(made[name])
    return made


def replay_history(checker: IncrementalChecker, history: History) -> CheckResult:
    """Stream a recorded :class:`History` through ``checker`` and return
    the final verdict.

    Events are replayed in execution order — invocations by invocation
    time, responses by response time.  At a time tie, responses are
    processed first: a client whose next operation is invoked at the
    exact virtual instant the previous one responded (a zero think-time
    driver) must have that response folded in before the invocation, as
    a live recorder would.  A zero-duration operation keeps its own
    invoke-then-respond order.
    """
    RESPOND, INVOKE, BOTH = 0, 1, 1  # BOTH rides the invocation phase
    events: list[tuple[float, int, int, int, Operation]] = []
    for sequence, op in enumerate(history):
        if op.complete and op.responded_at == op.invoked_at:
            events.append((op.invoked_at, BOTH, sequence, 2, op))
            continue
        events.append((op.invoked_at, INVOKE, sequence, 0, op))
        if op.complete:
            events.append((op.responded_at, RESPOND, sequence, 1, op))
    events.sort(key=lambda event: (event[0], event[1], event[2]))
    for _time, _phase, _sequence, action, op in events:
        if action == 0:
            checker.on_invoke(op)
        elif action == 1:
            checker.on_response(op)
        else:
            checker.on_invoke(op)
            checker.on_response(op)
    return checker.result()
