"""Linearizability checking (Definition 2) for SWMR register histories.

Two checkers are provided:

* :func:`check_linearizability` — a fast, provably sound-and-complete
  polynomial decision procedure specialised to the paper's functionality
  (SWMR registers, unique written values).  Linearizability is *local*
  (Herlihy & Wing), so the history is checked per register; within one
  register the single sequential writer totally orders the writes, and the
  classical atomic-register conditions become three simple rules:

  1. no read completes before the write it returns is invoked
     ("value from the future");
  2. no read is invoked after a *later* write (than the one it returns)
     has completed ("stale read");
  3. two reads ordered in real time never observe writes in the opposite
     order ("new/old inversion").

  These are exactly the conditions under which the canonical placement —
  writes in program order, each read right after its write, same-value
  reads in invocation order — extends real-time order, and each is
  individually necessary.  See tests/test_consistency_linearizability.py
  for the brute-force cross-validation.

* :func:`check_linearizability_exhaustive` — a direct Wing&Gong-style
  search usable on any small history; the oracle against which the fast
  checker is validated.
"""

from __future__ import annotations

from repro.common.errors import CheckerError
from repro.common.types import BOTTOM, RegisterId
from repro.history.events import Operation
from repro.history.history import History
from repro.consistency.report import CheckResult, ok, violated

_CONDITION = "linearizability"


def _map_reads_to_write_index(
    history: History, register: RegisterId
) -> tuple[list[Operation], dict[int, int], str | None]:
    """For one register: (writes in order, read op_id -> write index, error).

    Index 0 denotes the initial value BOTTOM; index k >= 1 denotes the k-th
    write.  A read whose value no write produced yields an error string.
    Indexes are *absolute*: a compacted history whose base records
    ``c`` pruned writes numbers its retained writes from ``c + 1``.
    """
    base_count, _ = history.base_of(register)
    writes = history.writes_to(register)
    index_of_value = {
        bytes(w.value): k for k, w in enumerate(writes, start=base_count + 1)
    }
    mapping: dict[int, int] = {}
    for read in history.reads_of(register):
        if not read.is_read:
            continue
        if read.value is BOTTOM:
            mapping[read.op_id] = 0
        elif read.value is None:
            return writes, mapping, f"read {read.op_id} has no recorded return value"
        else:
            key = bytes(read.value)
            if key not in index_of_value:
                return (
                    writes,
                    mapping,
                    f"{read.describe()} returned a value that was never written",
                )
            mapping[read.op_id] = index_of_value[key]
    return writes, mapping, None


def _check_register(history: History, register: RegisterId) -> CheckResult:
    writes, read_index, error = _map_reads_to_write_index(history, register)
    if error is not None:
        return violated(_CONDITION, error)

    base_count, base_time = history.base_of(register)
    reads = history.reads_of(register)

    # Rule 1 and rule 2: each read against the write order.
    for read in reads:
        k = read_index[read.op_id]
        if k >= 1:
            write = writes[k - 1 - base_count]
            if read.precedes(write):
                return violated(
                    _CONDITION,
                    f"{read.describe()} completed before {write.describe()} was "
                    f"invoked (value from the future)",
                    witness=(read, write),
                )
        elif base_count and read.invoked_at > base_time:
            # BOTTOM behind a checkpoint base: some pruned write had
            # completed before this read was even invoked.  Reads that
            # overlapped the pruned era may legitimately see BOTTOM.
            return violated(
                _CONDITION,
                f"{read.describe()} is stale: {base_count} checkpointed "
                f"write(s) of register {register} completed before the "
                f"read was invoked, yet it returned BOTTOM",
                witness=read,
            )
        for later in writes[max(k - base_count, 0) :]:
            if later.precedes(read):
                return violated(
                    _CONDITION,
                    f"{read.describe()} is stale: {later.describe()} completed "
                    f"before the read was invoked",
                    witness=(read, later),
                )

    # Rule 3: new/old inversion between reads.
    ordered_reads = sorted(reads, key=lambda r: (r.invoked_at, r.op_id))
    for i, first in enumerate(ordered_reads):
        for second in ordered_reads[i + 1 :]:
            if first.precedes(second) and read_index[first.op_id] > read_index[second.op_id]:
                return violated(
                    _CONDITION,
                    f"new/old inversion: {first.describe()} precedes "
                    f"{second.describe()} but observes a newer write",
                    witness=(first, second),
                )
    return ok(_CONDITION)


def check_linearizability(history: History) -> CheckResult:
    """Fast polynomial linearizability check (SWMR, unique values)."""
    prepared = history.completed_for_checking()
    prepared.assert_unique_write_values()
    for register in prepared.registers():
        result = _check_register(prepared, register)
        if not result:
            return result
    return ok(_CONDITION)


def check_linearizability_exhaustive(
    history: History, max_ops: int = 13
) -> CheckResult:
    """Memoized Wing&Gong search; exponential, for small histories only.

    Returns a satisfying linearization as the witness when one exists.
    """
    prepared = history.completed_for_checking()
    prepared.assert_unique_write_values()
    if prepared.base:
        raise CheckerError(
            "the exhaustive checker assumes the initial register values "
            "(BOTTOM); compacted histories with a checkpoint base are "
            "checked by check_linearizability"
        )
    ops = list(prepared)
    if len(ops) > max_ops:
        raise CheckerError(
            f"exhaustive checker limited to {max_ops} operations, got {len(ops)}"
        )

    registers = prepared.registers()
    initial_state = tuple(BOTTOM for _ in registers)
    reg_pos = {reg: i for i, reg in enumerate(registers)}
    op_ids = [op.op_id for op in ops]
    id_to_op = {op.op_id: op for op in ops}

    # Real-time predecessors: an op may be linearized only after every op
    # that precedes it in real time has been linearized.
    predecessors: dict[int, set[int]] = {
        op.op_id: {o.op_id for o in ops if o.precedes(op)} for op in ops
    }

    failed_states: set[tuple[frozenset[int], tuple]] = set()

    def search(done: frozenset, state: tuple, path: list[int]) -> list[int] | None:
        if len(done) == len(ops):
            return list(path)
        key = (done, state)
        if key in failed_states:
            return None
        for op_id in op_ids:
            if op_id in done:
                continue
            if not predecessors[op_id] <= done:
                continue
            op = id_to_op[op_id]
            pos = reg_pos[op.register]
            if op.is_read:
                if op.value != state[pos]:
                    continue
                new_state = state
            else:
                new_state = state[:pos] + (op.value,) + state[pos + 1 :]
            path.append(op_id)
            found = search(done | {op_id}, new_state, path)
            if found is not None:
                return found
            path.pop()
        failed_states.add(key)
        return None

    solution = search(frozenset(), initial_state, [])
    if solution is None:
        return violated(_CONDITION, "no linearization exists (exhaustive search)")
    return ok(_CONDITION, witness=[id_to_op[i] for i in solution])
