"""Fork-sequential consistency (Oprea & Reiter, DISC 2006; related work).

The forking analogue of sequential consistency: each client has a view
(Definition 1) and the views satisfy the **no-join** property, but —
unlike fork-linearizability — views need not preserve real-time order at
all (program order is already enforced by view-hood).

The paper cites its companion result [4] ("Fork sequential consistency is
blocking"): like fork-linearizability, this notion cannot be implemented
wait-free, which is why neither is a suitable basis for a fail-aware
service.  The checker exists to position weak fork-linearizability inside
the full lattice of forking notions:

    fork-linearizability  =>  fork-sequential consistency
    fork-linearizability  =>  fork-*-linearizability
    fork-linearizability  =>  weak fork-linearizability
    (weak fork and fork-* incomparable; Figure 3 separates several pairs)
"""

from __future__ import annotations

from typing import Sequence

from repro.common.errors import CheckerError
from repro.common.types import ClientId
from repro.history.events import Operation
from repro.history.history import History
from repro.consistency.fork import no_join_violation
from repro.consistency.report import CheckResult, ok, violated
from repro.consistency.views import enumerate_views, view_violation

_CONDITION = "fork-sequential-consistency"


def validate_fork_sequential_consistency(
    history: History, views: dict[ClientId, Sequence[Operation]]
) -> CheckResult:
    """Validator form: check concrete candidate views."""
    prepared = history.completed_for_checking()
    for client, view in views.items():
        problem = view_violation(prepared, client, view)
        if problem is not None:
            return violated(_CONDITION, f"C{client + 1}: {problem}")
    clients = sorted(views)
    for position, i in enumerate(clients):
        for j in clients[position + 1 :]:
            bad = no_join_violation(views[i], views[j])
            if bad is not None:
                return violated(
                    _CONDITION,
                    f"no-join violated between C{i + 1} and C{j + 1} at "
                    f"operation {bad}",
                )
    return ok(_CONDITION, witness=views)


def check_fork_sequential_exhaustive(
    history: History, max_ops: int = 7
) -> CheckResult:
    """Joint existential search over per-client views (small histories)."""
    prepared = history.completed_for_checking()
    prepared.assert_unique_write_values()
    if len(prepared) > max_ops:
        raise CheckerError(
            f"exhaustive fork-sequential checker limited to {max_ops} ops, "
            f"got {len(prepared)}"
        )
    clients = prepared.clients()
    candidate_views: dict[ClientId, list[tuple[Operation, ...]]] = {}
    for client in clients:
        candidates = list(enumerate_views(prepared, client))
        if not candidates:
            return violated(_CONDITION, f"no view exists for C{client + 1}")
        candidate_views[client] = candidates

    assignment: dict[ClientId, tuple[Operation, ...]] = {}

    def assign(index: int) -> bool:
        if index == len(clients):
            return True
        client = clients[index]
        for view in candidate_views[client]:
            if all(
                no_join_violation(view, assignment[p]) is None
                for p in clients[:index]
            ):
                assignment[client] = view
                if assign(index + 1):
                    return True
                del assignment[client]
        return False

    if assign(0):
        return ok(_CONDITION, witness=dict(assignment))
    return violated(
        _CONDITION, "no compatible family of views exists (exhaustive search)"
    )
