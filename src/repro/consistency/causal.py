"""Causal consistency checking (Definition 3) for SWMR register histories.

:func:`check_causal_consistency` decides Definition 3 for the paper's
functionality using the writes-into characterisation: a SWMR history is
causally consistent iff

1. every read returns a value some write produced (or BOTTOM),
2. potential causality ``-->_sigma`` is acyclic, and
3. no read returns a *causally overwritten* value: if ``r`` reads-from
   ``w_k`` then no later write ``w_l`` (``l > k``; same register, so
   causally after ``w_k``) causally precedes ``r``.  A BOTTOM read must
   have no write of its register among its causal ancestors.

Necessity of each rule is immediate (condition 3 of Definition 3 forces a
causally ordered ``w_k .. w_l .. r`` subsequence into the view, making the
read illegal).  Sufficiency holds for SWMR registers because writes to a
register are causally totally ordered by writer program order, so each
client's view can be built by topologically sorting its causal past with
reads pinned directly after the write they return; the exhaustive
Definition-3 search in :func:`check_causal_exhaustive` cross-validates this
on small histories (see tests).
"""

from __future__ import annotations

from itertools import permutations

from repro.common.errors import CheckerError
from repro.common.types import BOTTOM
from repro.history.causality import CausalStructure, build_causal_structure
from repro.history.events import Operation
from repro.history.history import History
from repro.history.register_spec import is_legal_sequence
from repro.consistency.report import CheckResult, ok, violated

_CONDITION = "causal-consistency"


def check_causal_consistency(history: History) -> CheckResult:
    """Polynomial causal-consistency check (SWMR, unique values)."""
    prepared = history.completed_for_checking()
    prepared.assert_unique_write_values()
    structure = build_causal_structure(prepared)

    if structure.fabricated_reads:
        op = prepared.op(structure.fabricated_reads[0])
        return violated(
            _CONDITION,
            f"{op.describe()} returned a value that was never written",
            witness=op,
        )
    if structure.has_cycle():
        return violated(_CONDITION, "potential causality contains a cycle")

    for register in prepared.registers():
        writes = prepared.writes_to(register)
        write_index = {w.op_id: k for k, w in enumerate(writes, start=1)}
        for read in prepared.reads_of(register):
            ancestors = structure.ancestors(read.op_id)
            source = structure.reads_from.get(read.op_id)
            k = 0 if source is None else write_index[source]
            for later in writes[k:]:
                if later.op_id in ancestors:
                    return violated(
                        _CONDITION,
                        f"{read.describe()} is causally overwritten: "
                        f"{later.describe()} causally precedes the read",
                        witness=(read, later),
                    )
    return ok(_CONDITION)


def _required_view_ops(
    prepared: History, structure: CausalStructure, client: int
) -> list[Operation]:
    """Client ops plus the causal closure of update operations.

    Definition 3 condition 2 requires all updates causally preceding any
    view operation; legality independently requires each read's source
    write.  Both are causal ancestors, so the closure below covers them.
    """
    required: set[int] = {op.op_id for op in prepared.restrict_to_client(client)}
    frontier = list(required)
    while frontier:
        current = frontier.pop()
        for ancestor in structure.ancestors(current):
            op = prepared.op(ancestor)
            if op.is_write and ancestor not in required:
                required.add(ancestor)
                frontier.append(ancestor)
    return [op for op in prepared if op.op_id in required]


def check_causal_exhaustive(history: History, max_ops: int = 8) -> CheckResult:
    """Direct Definition-3 search (small histories): for every client, try
    to build a view over its required operation set that extends causal
    order and satisfies the register spec."""
    prepared = history.completed_for_checking()
    prepared.assert_unique_write_values()
    if len(prepared) > max_ops:
        raise CheckerError(
            f"exhaustive causal checker limited to {max_ops} ops, got {len(prepared)}"
        )
    structure = build_causal_structure(prepared)
    if structure.fabricated_reads:
        op = prepared.op(structure.fabricated_reads[0])
        return violated(_CONDITION, f"{op.describe()} returned an unwritten value")
    if structure.has_cycle():
        return violated(_CONDITION, "potential causality contains a cycle")

    witnesses: dict[int, list[Operation]] = {}
    for client in prepared.clients():
        candidates = _required_view_ops(prepared, structure, client)
        found = None
        for perm in permutations(candidates):
            if not _extends_causal_order(perm, structure):
                continue
            if not is_legal_sequence(perm):
                continue
            found = list(perm)
            break
        if found is None:
            return violated(
                _CONDITION,
                f"no causal view exists for client C{client + 1} (exhaustive search)",
            )
        witnesses[client] = found
    return ok(_CONDITION, witness=witnesses)


def _extends_causal_order(sequence, structure: CausalStructure) -> bool:
    position = {op.op_id: i for i, op in enumerate(sequence)}
    for op in sequence:
        for ancestor in structure.ancestors(op.op_id):
            if ancestor in position and position[ancestor] > position[op.op_id]:
                return False
    return True
