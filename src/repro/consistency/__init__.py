"""Consistency checkers: Definitions 2, 3, 6 and fork-linearizability.

All checkers consume recorded :class:`~repro.history.History` objects and
know nothing about the protocols that produced them.  The *offline*
checkers examine a complete history per call; the *incremental* ones
(:mod:`repro.consistency.incremental`) subscribe to a live recorder and
keep the same verdicts current in O(delta) per audit.
"""

from repro.consistency.causal import check_causal_consistency, check_causal_exhaustive
from repro.consistency.incremental import (
    IncrementalCausalChecker,
    IncrementalChecker,
    IncrementalLinearizabilityChecker,
    attach_incremental_checkers,
    replay_history,
)
from repro.consistency.fork import (
    check_fork_linearizability_exhaustive,
    no_join_violation,
    prefixes_agree,
    validate_fork_linearizability,
)
from repro.consistency.fork_sequential import (
    check_fork_sequential_exhaustive,
    validate_fork_sequential_consistency,
)
from repro.consistency.fork_star import (
    check_fork_star_linearizability_exhaustive,
    validate_fork_star_linearizability,
)
from repro.consistency.linearizability import (
    check_linearizability,
    check_linearizability_exhaustive,
)
from repro.consistency.report import CheckResult, ok, violated
from repro.consistency.views import (
    enumerate_views,
    is_view_of,
    lastops,
    preserves_real_time,
    preserves_weak_real_time,
    view_violation,
)
from repro.consistency.weak_fork import (
    at_most_one_join_violation,
    causality_violation,
    check_weak_fork_linearizability_exhaustive,
    validate_weak_fork_linearizability,
)

__all__ = [
    "CheckResult",
    "IncrementalCausalChecker",
    "IncrementalChecker",
    "IncrementalLinearizabilityChecker",
    "at_most_one_join_violation",
    "attach_incremental_checkers",
    "replay_history",
    "causality_violation",
    "check_causal_consistency",
    "check_causal_exhaustive",
    "check_fork_linearizability_exhaustive",
    "check_fork_sequential_exhaustive",
    "check_fork_star_linearizability_exhaustive",
    "check_linearizability",
    "check_linearizability_exhaustive",
    "check_weak_fork_linearizability_exhaustive",
    "enumerate_views",
    "is_view_of",
    "lastops",
    "no_join_violation",
    "ok",
    "prefixes_agree",
    "preserves_real_time",
    "preserves_weak_real_time",
    "validate_fork_linearizability",
    "validate_fork_sequential_consistency",
    "validate_fork_star_linearizability",
    "validate_weak_fork_linearizability",
    "view_violation",
    "violated",
]
