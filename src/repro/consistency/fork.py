"""Fork-linearizability (Mazieres & Shasha; paper Section 4).

A history is fork-linearizable iff each client ``C_i`` has a view ``pi_i``
that preserves the *full* real-time order of the history, and the views
satisfy the **no-join** property: for every operation ``o`` common to
``pi_i`` and ``pi_j``, the prefixes up to ``o`` coincide
(``pi_i|o = pi_j|o``) — once two clients' views diverge they can never
share a later operation.

The paper proves (via its Figure 3 and companion work [4]) that this
notion *cannot* be implemented wait-free; the exhaustive checker here is
what lets the test-suite demonstrate that USTOR's Figure-3 history is
weakly fork-linearizable **but not** fork-linearizable (experiment E2).
"""

from __future__ import annotations

from typing import Sequence

from repro.common.errors import CheckerError
from repro.common.types import ClientId
from repro.history.events import Operation
from repro.history.history import History
from repro.consistency.report import CheckResult, ok, violated
from repro.consistency.views import (
    enumerate_views,
    preserves_real_time,
    view_violation,
)

_CONDITION = "fork-linearizability"


def prefixes_agree(
    pi_i: Sequence[Operation], pi_j: Sequence[Operation], op_id: int
) -> bool:
    """``pi_i|o == pi_j|o`` compared as op-id sequences."""
    prefix_i = _prefix_ids(pi_i, op_id)
    prefix_j = _prefix_ids(pi_j, op_id)
    return prefix_i is not None and prefix_i == prefix_j


def _prefix_ids(sequence: Sequence[Operation], op_id: int) -> list[int] | None:
    out: list[int] = []
    for op in sequence:
        out.append(op.op_id)
        if op.op_id == op_id:
            return out
    return None


def no_join_violation(
    pi_i: Sequence[Operation], pi_j: Sequence[Operation]
) -> int | None:
    """First common op (id) whose prefixes differ, or None."""
    ids_j = {op.op_id for op in pi_j}
    for op in pi_i:
        if op.op_id in ids_j and not prefixes_agree(pi_i, pi_j, op.op_id):
            return op.op_id
    return None


def validate_fork_linearizability(
    history: History, views: dict[ClientId, Sequence[Operation]]
) -> CheckResult:
    """Check concrete candidate views against the fork-linearizability
    conditions (validator form, usable on protocol-derived views)."""
    prepared = history.completed_for_checking()
    for client, view in views.items():
        problem = view_violation(prepared, client, view)
        if problem is not None:
            return violated(_CONDITION, f"C{client + 1}: {problem}")
        if not preserves_real_time(view, prepared):
            return violated(
                _CONDITION,
                f"view of C{client + 1} does not preserve real-time order",
            )
    clients = sorted(views)
    for i_pos, i in enumerate(clients):
        for j in clients[i_pos + 1 :]:
            bad = no_join_violation(views[i], views[j])
            if bad is not None:
                return violated(
                    _CONDITION,
                    f"no-join violated between C{i + 1} and C{j + 1} at "
                    f"operation {bad}",
                )
    return ok(_CONDITION, witness=views)


def check_fork_linearizability_exhaustive(
    history: History, max_ops: int = 7
) -> CheckResult:
    """Joint existential search over per-client views (small histories)."""
    prepared = history.completed_for_checking()
    prepared.assert_unique_write_values()
    if len(prepared) > max_ops:
        raise CheckerError(
            f"exhaustive fork checker limited to {max_ops} ops, got {len(prepared)}"
        )
    clients = prepared.clients()

    def rt_filter(sequence):
        return preserves_real_time(sequence, prepared)

    candidate_views: dict[ClientId, list[tuple[Operation, ...]]] = {}
    for client in clients:
        candidates = list(enumerate_views(prepared, client, extra_filter=rt_filter))
        if not candidates:
            return violated(
                _CONDITION,
                f"no real-time-preserving view exists for C{client + 1}",
            )
        candidate_views[client] = candidates

    assignment: dict[ClientId, tuple[Operation, ...]] = {}

    def assign(index: int) -> bool:
        if index == len(clients):
            return True
        client = clients[index]
        for view in candidate_views[client]:
            compatible = all(
                no_join_violation(view, assignment[prev]) is None
                for prev in clients[:index]
            )
            if not compatible:
                continue
            assignment[client] = view
            if assign(index + 1):
                return True
            del assignment[client]
        return False

    if assign(0):
        return ok(_CONDITION, witness=dict(assignment))
    return violated(
        _CONDITION, "no compatible family of views exists (exhaustive search)"
    )
