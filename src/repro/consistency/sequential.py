"""Sequential consistency — the non-forking ancestor of fork-sequential.

A history is sequentially consistent iff ONE sequence serves as a view of
the history at *all* clients (so everyone agrees on a single total order)
that preserves each client's program order — but, unlike linearizability,
not necessarily real-time order across clients.

Not used by the protocols, but it completes the executable lattice the
paper situates its notions in:

    linearizability => sequential consistency => causal consistency
    sequential consistency = fork-sequential consistency with one shared view

Deciding sequential consistency is NP-hard in general (Taylor), so only a
memoized exhaustive search is provided, mirroring the Wing&Gong
linearizability oracle with the real-time constraint relaxed to program
order.
"""

from __future__ import annotations

from repro.common.errors import CheckerError
from repro.common.types import BOTTOM
from repro.history.history import History
from repro.consistency.report import CheckResult, ok, violated

_CONDITION = "sequential-consistency"


def check_sequential_consistency_exhaustive(
    history: History, max_ops: int = 12
) -> CheckResult:
    """Memoized search for a single program-order-preserving legal order."""
    prepared = history.completed_for_checking()
    prepared.assert_unique_write_values()
    ops = list(prepared)
    if len(ops) > max_ops:
        raise CheckerError(
            f"exhaustive sequential checker limited to {max_ops} ops, got {len(ops)}"
        )

    registers = prepared.registers()
    reg_pos = {reg: i for i, reg in enumerate(registers)}
    initial_state = tuple(BOTTOM for _ in registers)
    id_to_op = {op.op_id: op for op in ops}

    # Program-order predecessors only (the lone difference from the
    # linearizability oracle, which uses full real-time precedence).
    predecessors: dict[int, set[int]] = {}
    for client in prepared.clients():
        sequence = prepared.restrict_to_client(client)
        for index, op in enumerate(sequence):
            predecessors[op.op_id] = {earlier.op_id for earlier in sequence[:index]}

    failed_states: set[tuple[frozenset, tuple]] = set()

    def search(done: frozenset, state: tuple, path: list[int]) -> list[int] | None:
        if len(done) == len(ops):
            return list(path)
        key = (done, state)
        if key in failed_states:
            return None
        for op in ops:
            if op.op_id in done or not predecessors[op.op_id] <= done:
                continue
            pos = reg_pos[op.register]
            if op.is_read:
                if op.value != state[pos]:
                    continue
                new_state = state
            else:
                new_state = state[:pos] + (op.value,) + state[pos + 1 :]
            path.append(op.op_id)
            found = search(done | {op.op_id}, new_state, path)
            if found is not None:
                return found
            path.pop()
        failed_states.add(key)
        return None

    solution = search(frozenset(), initial_state, [])
    if solution is None:
        return violated(_CONDITION, "no sequentially consistent order exists")
    return ok(_CONDITION, witness=[id_to_op[op_id] for op_id in solution])
