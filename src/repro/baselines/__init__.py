"""Baseline protocols: the blocking fork-linearizable design and a naive store."""

from repro.baselines.lockstep import (
    LockStepClient,
    LockStepServer,
    LsOutcome,
    TamperingLockStepServer,
    build_lockstep_system,
)
from repro.baselines.unchecked import (
    LyingUncheckedServer,
    PlainOutcome,
    UncheckedClient,
    UncheckedServer,
    build_unchecked_system,
)

__all__ = [
    "LockStepClient",
    "LockStepServer",
    "LsOutcome",
    "LyingUncheckedServer",
    "PlainOutcome",
    "TamperingLockStepServer",
    "UncheckedClient",
    "UncheckedServer",
    "build_lockstep_system",
    "build_unchecked_system",
]
