"""The naive baseline: an unchecked remote store (no signatures, no checks).

This is what using an untrusted provider *without* the paper's machinery
looks like: a plain key-value server the clients believe blindly.  A
Byzantine server can return arbitrary values, serve stale data, or fork
clients — and nothing ever notices.  The adversarial experiments run the
same attacks against this baseline and against USTOR/FAUST to demonstrate
the detection gap (E7/E8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.errors import ProtocolError
from repro.common.types import (
    BOTTOM,
    Bottom,
    ClientId,
    OpKind,
    RegisterId,
    Value,
    client_name,
)
from repro.history.recorder import HistoryRecorder
from repro.sim.process import Node
from repro.ustor.messages import INT_BYTES, MARKER_BYTES


@dataclass(frozen=True)
class PlainRequest:
    client: ClientId
    op: OpKind
    register: RegisterId
    value: Value | None = None

    kind = "PLAIN-REQ"

    def wire_size(self) -> int:
        value = len(self.value) if self.value is not None else MARKER_BYTES
        return MARKER_BYTES + 2 * INT_BYTES + value


@dataclass(frozen=True)
class PlainResponse:
    op: OpKind
    register: RegisterId
    value: Value | Bottom | None

    kind = "PLAIN-RESP"

    def wire_size(self) -> int:
        if self.value is None or self.value is BOTTOM:
            return MARKER_BYTES + INT_BYTES + MARKER_BYTES
        return MARKER_BYTES + INT_BYTES + len(self.value)


@dataclass(frozen=True)
class PlainOutcome:
    kind: OpKind
    register: RegisterId
    value: Value | Bottom | None
    timestamp: int


class UncheckedClient(Node):
    """Trusts every byte the server sends."""

    def __init__(
        self,
        client_id: ClientId,
        num_clients: int,
        server_name: str = "S",
        recorder: HistoryRecorder | None = None,
    ) -> None:
        super().__init__(name=client_name(client_id))
        self._id = client_id
        self._n = num_clients
        self._server = server_name
        self._recorder = recorder
        self._t = 0
        self._pending: tuple[OpKind, RegisterId, Value | None, int | None, Callable] | None = None
        self.completed_operations = 0
        self.failed = False  # present for interface parity; never set

    @property
    def busy(self) -> bool:
        return self._pending is not None

    def write(self, value: Value, callback=None) -> None:
        if not isinstance(value, bytes):
            raise ProtocolError("register values are bytes")
        self._invoke(OpKind.WRITE, self._id, value, callback)

    def read(self, register: RegisterId, callback=None) -> None:
        self._invoke(OpKind.READ, register, None, callback)

    def _invoke(self, kind, register, value, callback) -> None:
        if self._crashed:
            raise ProtocolError(f"{self.name} has crashed")
        if self._pending is not None:
            raise ProtocolError(f"{self.name} already has an operation in flight")
        self._t += 1
        op_id = None
        if self._recorder is not None:
            op_id = self._recorder.begin(
                client=self._id,
                kind=kind,
                register=register,
                invoked_at=self.now,
                value=value,
                timestamp=self._t,
            )
        self._pending = (kind, register, value, op_id, callback)
        self.send(
            self._server,
            PlainRequest(client=self._id, op=kind, register=register, value=value),
        )

    def on_message(self, src: str, message) -> None:
        if not isinstance(message, PlainResponse) or self._pending is None:
            return
        kind, register, value, op_id, callback = self._pending
        self._pending = None
        self.completed_operations += 1
        returned = value if kind is OpKind.WRITE else message.value
        if self._recorder is not None and op_id is not None:
            self._recorder.end(op_id, responded_at=self.now, value=returned, timestamp=self._t)
        if callback is not None:
            callback(
                PlainOutcome(kind=kind, register=register, value=returned, timestamp=self._t)
            )


class UncheckedServer(Node):
    """An honest plain store (subclass to attack it)."""

    def __init__(self, num_clients: int, name: str = "S") -> None:
        super().__init__(name=name)
        self._n = num_clients
        self.values: list[Value | Bottom] = [BOTTOM] * num_clients

    def on_message(self, src: str, message) -> None:
        if not isinstance(message, PlainRequest):
            return
        if message.op is OpKind.WRITE and message.value is not None:
            self.values[message.client] = message.value
            self.send(src, PlainResponse(op=message.op, register=message.register, value=None))
        else:
            self.send(
                src,
                PlainResponse(
                    op=message.op,
                    register=message.register,
                    value=self.values[message.register],
                ),
            )


class LyingUncheckedServer(UncheckedServer):
    """Returns fabricated values for reads of ``target_register`` —
    and, the point of the baseline, gets away with it."""

    def __init__(self, num_clients: int, target_register: RegisterId, name: str = "S"):
        super().__init__(num_clients, name)
        self._target = target_register
        self.lies_told = 0

    def on_message(self, src: str, message) -> None:
        if (
            isinstance(message, PlainRequest)
            and message.op is OpKind.READ
            and message.register == self._target
        ):
            self.lies_told += 1
            self.send(
                src,
                PlainResponse(
                    op=message.op,
                    register=message.register,
                    value=b"FABRICATED|%d" % self.lies_told,
                ),
            )
            return
        super().on_message(src, message)


def build_unchecked_system(num_clients: int, seed: int = 0, latency=None, server_factory=None):
    """Assemble an unchecked deployment mirroring ``SystemBuilder.build``."""
    from repro.crypto.keystore import KeyStore
    from repro.sim.network import FixedLatency, Network
    from repro.sim.offline import OfflineChannel
    from repro.sim.scheduler import Scheduler
    from repro.sim.trace import SimTrace
    from repro.workloads.runner import StorageSystem

    scheduler = Scheduler(seed=seed)
    trace = SimTrace()
    network = Network(scheduler, default_latency=latency or FixedLatency(1.0), trace=trace)
    offline = OfflineChannel(scheduler, trace=trace)
    recorder = HistoryRecorder()
    factory = server_factory or (lambda n, name: UncheckedServer(n, name=name))
    server = factory(num_clients, "S")
    network.register(server)
    clients = []
    for i in range(num_clients):
        client = UncheckedClient(client_id=i, num_clients=num_clients, recorder=recorder)
        network.register(client)
        offline.register(client)
        clients.append(client)
    return StorageSystem(
        scheduler=scheduler,
        network=network,
        offline=offline,
        server=server,  # type: ignore[arg-type]
        clients=clients,
        recorder=recorder,
        trace=trace,
        keystore=KeyStore(num_clients),
    )
