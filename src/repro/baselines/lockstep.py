"""A lock-step fork-linearizable storage protocol (the blocking baseline).

This is the classic SUNDR-style design the paper contrasts USTOR against
(Section 1: "in previous protocols concurrent operations by different
clients may block each other, even if the provider is correct"; cf.
Mazieres & Shasha PODC'02, Cachin-Shelat-Shraer PODC'07's lock-step
protocol).  The server serialises *all* operations globally: it answers
one SUBMIT at a time and withholds the next REPLY until the previous
operation's COMMIT has arrived.

Integrity machinery: every operation is a signed descriptor; the global
schedule is committed to by a hash chain over descriptors; every client
replays the full chain (each REPLY carries the descriptors appended since
the client's previous operation), verifies every descriptor signature and
the chain recomputation, and signs the new chain head in its COMMIT.  Two
clients that observe a common operation therefore agree on the *entire*
prefix (collision resistance), which — together with the lock-step
real-time ordering — yields fork-linearizability.

The price is the paper's impossibility in action: a client that crashes
between REPLY and COMMIT wedges the token forever, and even without
crashes every operation waits for all queued predecessors.  Experiments
E3 and E5 measure exactly this against USTOR.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.common.errors import ProtocolError
from repro.common.types import (
    BOTTOM,
    Bottom,
    ClientId,
    OpKind,
    RegisterId,
    Value,
    client_name,
)
from repro.crypto.hashing import HASH_BYTES, hash_register_value, hash_values
from repro.crypto.keystore import ClientSigner
from repro.history.recorder import HistoryRecorder
from repro.sim.process import Node
from repro.ustor.messages import INT_BYTES, MARKER_BYTES, SIGNATURE_BYTES


# --------------------------------------------------------------------- #
# Wire format
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class OpDescriptor:
    """A signed description of one operation, the unit of the hash chain."""

    client: ClientId
    kind: OpKind
    register: RegisterId
    timestamp: int  # the client's local operation counter
    value_hash: bytes | None  # H(x) for writes, None for reads
    op_sig: bytes  # sign_client("LS-OP", kind, register, t, value_hash)

    def wire_size(self) -> int:
        vh = HASH_BYTES if self.value_hash is not None else MARKER_BYTES
        return 3 * INT_BYTES + MARKER_BYTES + vh + SIGNATURE_BYTES


def chain_extend(chain: bytes | None, descriptor: OpDescriptor) -> bytes:
    """Append a descriptor to the hash chain."""
    return hash_values(
        "LS-CHAIN",
        chain,
        descriptor.client,
        descriptor.kind,
        descriptor.register,
        descriptor.timestamp,
        descriptor.value_hash,
    )


@dataclass(frozen=True)
class LsVersion:
    """A committed global version: sequence number, vector, chain head."""

    seq: int
    vector: tuple[int, ...]
    chain: bytes | None
    committer: ClientId
    commit_sig: bytes | None  # None only for the initial version

    @classmethod
    def initial(cls, num_clients: int) -> "LsVersion":
        return cls(seq=0, vector=(0,) * num_clients, chain=None, committer=0, commit_sig=None)

    def wire_size(self) -> int:
        chain = HASH_BYTES if self.chain is not None else MARKER_BYTES
        sig = SIGNATURE_BYTES if self.commit_sig is not None else MARKER_BYTES
        return 2 * INT_BYTES + INT_BYTES * len(self.vector) + chain + sig


@dataclass(frozen=True)
class LsSubmit:
    descriptor: OpDescriptor
    value: Value | None  # the written value (writes only)
    last_seq: int  # the global seq the client saw after its previous op

    kind = "LS-SUBMIT"

    def wire_size(self) -> int:
        value = len(self.value) if self.value is not None else MARKER_BYTES
        return MARKER_BYTES + self.descriptor.wire_size() + value + INT_BYTES


@dataclass(frozen=True)
class LsReply:
    version: LsVersion
    delta: tuple[OpDescriptor, ...]  # log entries since the client's last op
    #: (value, writer data signature) for reads; None for writes.
    read_value: Value | Bottom | None
    read_data_sig: bytes | None

    kind = "LS-REPLY"

    def wire_size(self) -> int:
        size = MARKER_BYTES + self.version.wire_size()
        size += sum(d.wire_size() for d in self.delta)
        if self.read_value is not None and self.read_value is not BOTTOM:
            size += len(self.read_value)
        else:
            size += MARKER_BYTES
        size += SIGNATURE_BYTES if self.read_data_sig is not None else MARKER_BYTES
        return size


@dataclass(frozen=True)
class LsCommit:
    version: LsVersion

    kind = "LS-COMMIT"

    def wire_size(self) -> int:
        return MARKER_BYTES + self.version.wire_size()


# --------------------------------------------------------------------- #
# Client
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class LsOutcome:
    """Returned by completed lock-step operations."""

    kind: OpKind
    register: RegisterId
    value: Value | Bottom | None
    timestamp: int
    seq: int


class _Pending:
    __slots__ = ("descriptor", "value", "op_id", "callback")

    def __init__(self, descriptor, value, op_id, callback):
        self.descriptor = descriptor
        self.value = value
        self.op_id = op_id
        self.callback = callback


class LockStepClient(Node):
    """Client of the lock-step protocol; replays and verifies the full chain."""

    def __init__(
        self,
        client_id: ClientId,
        num_clients: int,
        signer: ClientSigner,
        server_name: str = "S",
        recorder: HistoryRecorder | None = None,
        on_fail: Callable[[str], None] | None = None,
    ) -> None:
        super().__init__(name=client_name(client_id))
        self._id = client_id
        self._n = num_clients
        self._signer = signer
        self._server = server_name
        self._recorder = recorder
        self._on_fail = on_fail

        self._t = 0  # own operation counter
        self._seq = 0  # global sequence number after my last operation
        self._chain: bytes | None = None
        self._vector = [0] * num_clients
        #: Per-register view derived from the verified chain:
        #: (writer timestamp, value hash) of the latest write, or None.
        self._registers: list[tuple[int, bytes] | None] = [None] * num_clients

        self._pending: _Pending | None = None
        self._failed = False
        self._fail_reason: str | None = None
        self._fail_listeners: list[Callable[[str], None]] = []
        self.completed_operations = 0

    # -- introspection -------------------------------------------------- #

    @property
    def client_id(self) -> ClientId:
        return self._id

    @property
    def failed(self) -> bool:
        return self._failed

    @property
    def fail_reason(self) -> str | None:
        return self._fail_reason

    @property
    def busy(self) -> bool:
        return self._pending is not None

    def add_failure_listener(self, listener: Callable[[str], None]) -> None:
        """Invoke ``listener(reason)`` when a chain check fails."""
        self._fail_listeners.append(listener)

    # -- operations ------------------------------------------------------ #

    def write(self, value: Value, callback=None) -> None:
        if not isinstance(value, bytes):
            raise ProtocolError("register values are bytes")
        self._invoke(OpKind.WRITE, self._id, value, callback)

    def read(self, register: RegisterId, callback=None) -> None:
        if not 0 <= register < self._n:
            raise ProtocolError(f"register {register} out of range")
        self._invoke(OpKind.READ, register, None, callback)

    def _invoke(self, kind, register, value, callback) -> None:
        if self._failed:
            raise ProtocolError(f"{self.name} has failed and halted")
        if self._crashed:
            raise ProtocolError(f"{self.name} has crashed")
        if self._pending is not None:
            raise ProtocolError(f"{self.name} already has an operation in flight")
        t = self._t + 1
        value_hash = hash_register_value(value) if kind is OpKind.WRITE else None
        descriptor = OpDescriptor(
            client=self._id,
            kind=kind,
            register=register,
            timestamp=t,
            value_hash=value_hash,
            op_sig=self._signer.sign("LS-OP", kind, register, t, value_hash),
        )
        op_id = None
        if self._recorder is not None:
            op_id = self._recorder.begin(
                client=self._id,
                kind=kind,
                register=register,
                invoked_at=self.now,
                value=value,
                timestamp=t,
            )
        self._pending = _Pending(descriptor, value, op_id, callback)
        self.send(self._server, LsSubmit(descriptor=descriptor, value=value, last_seq=self._seq))

    # -- REPLY processing -------------------------------------------------- #

    def on_message(self, src: str, message) -> None:
        if self._failed or not isinstance(message, LsReply) or self._pending is None:
            return
        pending = self._pending
        version = message.version

        # 1. The version must be signed by its committer (or be initial).
        if version.seq == 0:
            if version != LsVersion.initial(self._n):
                self._fail("forged initial version")
                return
        elif version.commit_sig is None or not self._signer.verify(
            version.committer,
            version.commit_sig,
            "LS-COMMIT",
            version.seq,
            version.vector,
            version.chain,
        ):
            self._fail("invalid commit signature on version")
            return

        # 2. The delta must connect my last chain state to the new head,
        #    with every descriptor genuinely signed by its client.
        if version.seq != self._seq + len(message.delta):
            self._fail("sequence number does not match delta length")
            return
        chain = self._chain
        vector = list(self._vector)
        registers = list(self._registers)
        for descriptor in message.delta:
            k = descriptor.client
            if not 0 <= k < self._n or k == self._id:
                self._fail("delta contains an impossible operation")
                return
            if not self._signer.verify(
                k,
                descriptor.op_sig,
                "LS-OP",
                descriptor.kind,
                descriptor.register,
                descriptor.timestamp,
                descriptor.value_hash,
            ):
                self._fail("invalid operation signature in delta")
                return
            if descriptor.timestamp != vector[k] + 1:
                self._fail("operation timestamps in delta are not consecutive")
                return
            vector[k] += 1
            if descriptor.kind is OpKind.WRITE:
                assert descriptor.value_hash is not None
                registers[descriptor.register] = (
                    descriptor.timestamp,
                    descriptor.value_hash,
                )
            chain = chain_extend(chain, descriptor)
        if chain != version.chain:
            self._fail("hash chain mismatch — forked or reordered history")
            return
        if tuple(vector) != version.vector or vector[self._id] != self._t:
            self._fail("timestamp vector mismatch")
            return

        # 3. For reads: the returned value must be the chain's latest write.
        returned: Value | Bottom | None = None
        if pending.descriptor.kind is OpKind.READ:
            j = pending.descriptor.register
            expected = registers[j]
            if expected is None:
                if message.read_value is not BOTTOM:
                    self._fail("read returned a value for a never-written register")
                    return
                returned = BOTTOM
            else:
                if message.read_value is None or message.read_value is BOTTOM:
                    self._fail("read returned no value for a written register")
                    return
                if hash_register_value(message.read_value) != expected[1]:
                    self._fail("read value does not match the committed write")
                    return
                returned = message.read_value
        else:
            returned = pending.value

        # 4. Commit: extend the chain with my own operation and sign.
        self._t += 1
        vector[self._id] += 1
        chain = chain_extend(chain, pending.descriptor)
        new_version = LsVersion(
            seq=version.seq + 1,
            vector=tuple(vector),
            chain=chain,
            committer=self._id,
            commit_sig=self._signer.sign(
                "LS-COMMIT", version.seq + 1, tuple(vector), chain
            ),
        )
        self._seq = new_version.seq
        self._chain = chain
        self._vector = vector
        self._registers = registers
        if pending.descriptor.kind is OpKind.WRITE:
            self._registers[self._id] = (self._t, pending.descriptor.value_hash)
        self.send(self._server, LsCommit(version=new_version))

        self._pending = None
        self.completed_operations += 1
        if self._recorder is not None and pending.op_id is not None:
            self._recorder.end(
                pending.op_id, responded_at=self.now, value=returned, timestamp=self._t
            )
        if pending.callback is not None:
            pending.callback(
                LsOutcome(
                    kind=pending.descriptor.kind,
                    register=pending.descriptor.register,
                    value=returned,
                    timestamp=self._t,
                    seq=self._seq,
                )
            )

    def _fail(self, reason: str) -> None:
        self._failed = True
        self._fail_reason = reason
        trace = self.network.trace
        if trace is not None:
            trace.note(self.now, self.name, "lockstep-fail", reason)
        if self._on_fail is not None:
            self._on_fail(reason)
        for listener in list(self._fail_listeners):
            listener(reason)


# --------------------------------------------------------------------- #
# Server
# --------------------------------------------------------------------- #


class LockStepServer(Node):
    """Serialises everything: one outstanding operation system-wide."""

    def __init__(self, num_clients: int, name: str = "S") -> None:
        super().__init__(name=name)
        self._n = num_clients
        self.log: list[OpDescriptor] = []
        self.version = LsVersion.initial(num_clients)
        self.values: list[Value | Bottom] = [BOTTOM] * num_clients
        self._queue: deque[tuple[str, LsSubmit]] = deque()
        self._inflight: tuple[str, LsSubmit] | None = None
        self.submits_handled = 0
        self.max_queue_len = 0

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def blocked(self) -> bool:
        """Is the token held by an operation whose COMMIT has not arrived?"""
        return self._inflight is not None

    def on_message(self, src: str, message) -> None:
        if isinstance(message, LsSubmit):
            self._queue.append((src, message))
            self.max_queue_len = max(self.max_queue_len, len(self._queue))
            self._pump()
        elif isinstance(message, LsCommit):
            self._handle_commit(src, message)

    def _pump(self) -> None:
        if self._inflight is not None or not self._queue:
            return
        src, submit = self._queue.popleft()
        self._inflight = (src, submit)
        self.submits_handled += 1
        delta = tuple(self.log[submit.last_seq :])
        read_value: Value | Bottom | None = None
        if submit.descriptor.kind is OpKind.READ:
            read_value = self.values[submit.descriptor.register]
        self.send(
            src,
            LsReply(
                version=self.version,
                delta=delta,
                read_value=read_value,
                read_data_sig=None,
            ),
        )

    def _handle_commit(self, src: str, message: LsCommit) -> None:
        if self._inflight is None or self._inflight[0] != src:
            return  # stray commit; a correct run never produces one
        _src, submit = self._inflight
        self.log.append(submit.descriptor)
        self.version = message.version
        if submit.descriptor.kind is OpKind.WRITE and submit.value is not None:
            self.values[submit.descriptor.client] = submit.value
        self._inflight = None
        self._pump()


class TamperingLockStepServer(LockStepServer):
    """Serves a corrupted value for reads of ``target_register`` — caught by
    the chain-derived value-hash check, demonstrating that the baseline's
    *integrity* is fine; it is its *liveness* that is fundamentally limited."""

    def __init__(self, num_clients: int, target_register: RegisterId, name: str = "S"):
        super().__init__(num_clients, name)
        self._target = target_register

    def _pump(self) -> None:
        if self._inflight is not None or not self._queue:
            return
        src, submit = self._queue.popleft()
        self._inflight = (src, submit)
        self.submits_handled += 1
        delta = tuple(self.log[submit.last_seq :])
        read_value: Value | Bottom | None = None
        if submit.descriptor.kind is OpKind.READ:
            read_value = self.values[submit.descriptor.register]
            if submit.descriptor.register == self._target and read_value is not BOTTOM:
                read_value = b"CORRUPTED|" + bytes(read_value)
        self.send(
            src,
            LsReply(
                version=self.version, delta=delta, read_value=read_value, read_data_sig=None
            ),
        )


def build_lockstep_system(
    num_clients: int,
    seed: int = 0,
    scheme: str = "hmac",
    latency=None,
    server_factory: Callable[[int, str], LockStepServer] | None = None,
):
    """Assemble a lock-step deployment mirroring ``SystemBuilder.build``."""
    from repro.sim.network import FixedLatency, Network
    from repro.sim.offline import OfflineChannel
    from repro.sim.scheduler import Scheduler
    from repro.sim.trace import SimTrace
    from repro.crypto.keystore import KeyStore
    from repro.workloads.runner import StorageSystem

    scheduler = Scheduler(seed=seed)
    trace = SimTrace()
    network = Network(scheduler, default_latency=latency or FixedLatency(1.0), trace=trace)
    offline = OfflineChannel(scheduler, trace=trace)
    keystore = KeyStore(num_clients, scheme=scheme)
    recorder = HistoryRecorder()
    factory = server_factory or (lambda n, name: LockStepServer(n, name=name))
    server = factory(num_clients, "S")
    network.register(server)
    clients = []
    for i in range(num_clients):
        client = LockStepClient(
            client_id=i,
            num_clients=num_clients,
            signer=keystore.signer(i),
            recorder=recorder,
        )
        network.register(client)
        offline.register(client)
        clients.append(client)
    return StorageSystem(
        scheduler=scheduler,
        network=network,
        offline=offline,
        server=server,  # type: ignore[arg-type]
        clients=clients,
        recorder=recorder,
        trace=trace,
        keystore=keystore,
    )
