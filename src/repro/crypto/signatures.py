"""Digital signatures: the paper's ``sign_i`` / ``verify_i`` primitives.

The model (Section 2) gives every client ``C_i`` a signing capability
``sign_i`` whose signatures anyone can check with ``verify_i``, and assumes
the (possibly Byzantine) server cannot forge them.  Three interchangeable
schemes implement this contract:

* :class:`Ed25519Scheme` — real public-key signatures via the
  ``cryptography`` package.  This is the faithful instantiation.
* :class:`HmacScheme` — HMAC-SHA256 with one secret per client.  Orders of
  magnitude faster, used by the bulk of the test suite.  Verification needs
  the per-client secret, so the keystore plays the role of a PKI; server
  objects are never handed signing material (see
  :mod:`repro.crypto.keystore`).
* :class:`InsecureScheme` — structural "signatures" with no cryptography at
  all, for micro-benchmarks that isolate protocol logic from crypto cost.
  A forged signature is trivially constructible, which some adversarial
  tests exploit on purpose.

All schemes sign canonical byte payloads built by
:func:`repro.common.encoding.encode`, so signatures bind unambiguously to
structured messages (e.g. ``COMMIT || V_i || M_i``).
"""

from __future__ import annotations

import hashlib
import hmac
from abc import ABC, abstractmethod

from repro.common.errors import UnknownSignerError
from repro.common.types import ClientId

#: Nominal signature size used by the wire-size model (Ed25519 signatures
#: are exactly 64 bytes; the other schemes are padded/truncated abstractions
#: of the same interface).
SIGNATURE_BYTES = 64


class SignatureScheme(ABC):
    """Abstract ``sign_i`` / ``verify_i`` for a fixed population of clients.

    A scheme instance is bound to ``n`` clients with ids ``0 .. n-1``; the
    server has no id and no signing capability, matching the paper's trust
    assumptions.
    """

    def __init__(self, num_clients: int) -> None:
        if num_clients < 1:
            raise ValueError("a signature scheme needs at least one client")
        self._num_clients = num_clients

    @property
    def num_clients(self) -> int:
        return self._num_clients

    def _check_signer(self, signer: ClientId) -> None:
        if not 0 <= signer < self._num_clients:
            raise UnknownSignerError(
                f"client id {signer} outside population of {self._num_clients}"
            )

    @abstractmethod
    def sign(self, signer: ClientId, payload: bytes) -> bytes:
        """Produce ``sign_i(payload)`` for ``i = signer``."""

    @abstractmethod
    def verify(self, signer: ClientId, signature: bytes, payload: bytes) -> bool:
        """Check ``verify_i(signature, payload)``; never raises on bad input."""


class HmacScheme(SignatureScheme):
    """HMAC-SHA256 with an independent secret per client.

    Within the simulation's trust model this is a faithful stand-in for
    public-key signatures: clients (who all verify each other) hold the
    secrets, the server object is never constructed with access to them.
    """

    def __init__(self, num_clients: int, seed: bytes = b"faust-hmac") -> None:
        super().__init__(num_clients)
        self._keys = [
            hashlib.sha256(seed + b"|client|" + str(i).encode()).digest()
            for i in range(num_clients)
        ]

    def sign(self, signer: ClientId, payload: bytes) -> bytes:
        self._check_signer(signer)
        mac = hmac.new(self._keys[signer], payload, hashlib.sha256).digest()
        return mac + mac  # pad to SIGNATURE_BYTES for a uniform size model

    def verify(self, signer: ClientId, signature: bytes, payload: bytes) -> bool:
        try:
            self._check_signer(signer)
        except UnknownSignerError:
            return False
        if not isinstance(signature, (bytes, bytearray)):
            return False
        expected = self.sign(signer, payload)
        return hmac.compare_digest(bytes(signature), expected)


class InsecureScheme(SignatureScheme):
    """Structural signatures with zero cryptographic cost.

    The "signature" is a deterministic non-cryptographic tag over
    ``(signer, payload)``.  It preserves the protocol's *functional*
    behaviour (verification succeeds exactly for honestly produced
    signatures) but offers no unforgeability; benchmarks use it to separate
    protocol cost from crypto cost, and adversarial tests use
    :meth:`forge` to model a broken signature scheme.
    """

    def sign(self, signer: ClientId, payload: bytes) -> bytes:
        self._check_signer(signer)
        return self.forge(signer, payload)

    @staticmethod
    def forge(signer: ClientId, payload: bytes) -> bytes:
        """Anyone (including a Byzantine server) can compute this tag."""
        digest = hashlib.blake2b(
            payload, digest_size=28, key=str(signer).encode()[:16]
        ).digest()
        return digest + digest + b"\x00" * (SIGNATURE_BYTES - 56)

    def verify(self, signer: ClientId, signature: bytes, payload: bytes) -> bool:
        try:
            self._check_signer(signer)
        except UnknownSignerError:
            return False
        return signature == self.forge(signer, payload)


class Ed25519Scheme(SignatureScheme):
    """Real Ed25519 signatures (RFC 8032) via the ``cryptography`` package.

    Key generation is deterministic from a seed so that simulation runs are
    reproducible.  Import of the backend is deferred so the rest of the
    library works in environments without ``cryptography`` installed.
    """

    def __init__(self, num_clients: int, seed: bytes = b"faust-ed25519") -> None:
        super().__init__(num_clients)
        from cryptography.hazmat.primitives.asymmetric.ed25519 import (
            Ed25519PrivateKey,
        )

        self._private = []
        self._public = []
        for i in range(num_clients):
            raw = hashlib.sha256(seed + b"|client|" + str(i).encode()).digest()
            key = Ed25519PrivateKey.from_private_bytes(raw)
            self._private.append(key)
            self._public.append(key.public_key())

    def sign(self, signer: ClientId, payload: bytes) -> bytes:
        self._check_signer(signer)
        return self._private[signer].sign(payload)

    def verify(self, signer: ClientId, signature: bytes, payload: bytes) -> bool:
        try:
            self._check_signer(signer)
        except UnknownSignerError:
            return False
        if not isinstance(signature, (bytes, bytearray)):
            return False
        try:
            self._public[signer].verify(bytes(signature), payload)
        except Exception:
            return False
        return True


def make_scheme(name: str, num_clients: int) -> SignatureScheme:
    """Factory: ``"ed25519"``, ``"hmac"`` or ``"insecure"``."""
    schemes = {
        "ed25519": Ed25519Scheme,
        "hmac": HmacScheme,
        "insecure": InsecureScheme,
    }
    try:
        cls = schemes[name]
    except KeyError:
        raise UnknownSignerError(
            f"unknown signature scheme {name!r}; choose from {sorted(schemes)}"
        ) from None
    return cls(num_clients)
