"""Cryptographic substrate: hash ``H`` and signatures ``sign_i``/``verify_i``."""

from repro.crypto.hashing import (
    HASH_BYTES,
    hash_bytes,
    hash_register_value,
    hash_values,
)
from repro.crypto.keystore import ClientSigner, KeyStore, PublicVerifier
from repro.crypto.signatures import (
    SIGNATURE_BYTES,
    Ed25519Scheme,
    HmacScheme,
    InsecureScheme,
    SignatureScheme,
    make_scheme,
)

__all__ = [
    "HASH_BYTES",
    "SIGNATURE_BYTES",
    "ClientSigner",
    "Ed25519Scheme",
    "HmacScheme",
    "InsecureScheme",
    "KeyStore",
    "PublicVerifier",
    "SignatureScheme",
    "hash_bytes",
    "hash_register_value",
    "hash_values",
    "make_scheme",
]
