"""Collision-resistant hashing (the paper's function ``H``).

The paper assumes a collision-resistant hash ``H`` known to all parties and
uses it in two places: hashing register values before DATA-signing them
(Algorithm 1, line 13) and chaining operation digests
``D(omega_1..omega_m) = H(D(omega_1..omega_{m-1}) || i_m)`` (Section 5).

We instantiate ``H`` with SHA-256 over the canonical encoding of
:mod:`repro.common.encoding`, with a domain-separation label so that value
hashes and digest-chain hashes can never collide structurally.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.common.encoding import encode
from repro.common.types import BOTTOM, Bottom, Value

#: Size of a hash output in bytes; also used by the wire-size model.
HASH_BYTES = 32


def hash_bytes(payload: bytes) -> bytes:
    """Raw SHA-256 of a byte string."""
    return hashlib.sha256(payload).digest()


def hash_values(*values: Any) -> bytes:
    """Hash a structured payload via the canonical encoding."""
    return hash_bytes(encode(*values))


def hash_register_value(value: Value | Bottom) -> bytes:
    """Hash a register value for DATA signatures (Algorithm 1, line 13).

    ``BOTTOM`` (the initial value, never actually written) hashes to a
    distinguished constant so that ``checkData`` can verify reads of
    never-written registers uniformly.
    """
    if value is BOTTOM:
        return hash_values("VALUE", None)
    return hash_values("VALUE", value)
