"""Collision-resistant hashing (the paper's function ``H``).

The paper assumes a collision-resistant hash ``H`` known to all parties and
uses it in two places: hashing register values before DATA-signing them
(Algorithm 1, line 13) and chaining operation digests
``D(omega_1..omega_m) = H(D(omega_1..omega_{m-1}) || i_m)`` (Section 5).

We instantiate ``H`` with SHA-256 over the canonical encoding of
:mod:`repro.common.encoding`, with a domain-separation label so that value
hashes and digest-chain hashes can never collide structurally.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.common.encoding import encode
from repro.common.types import BOTTOM, Bottom, Value

#: Size of a hash output in bytes; also used by the wire-size model.
HASH_BYTES = 32

#: The single point instantiating ``H``.  Every fast path that pre-seeds
#: an incremental hash state (here and in :mod:`repro.ustor.digests`)
#: must construct it through this name, so swapping the hash function
#: can never desynchronise the fast paths from the reference paths.
HASH = hashlib.sha256


def hash_bytes(payload: bytes) -> bytes:
    """Raw ``H`` (SHA-256) of a byte string."""
    return HASH(payload).digest()


def hash_values(*values: Any) -> bytes:
    """Hash a structured payload via the canonical encoding."""
    return hash_bytes(encode(*values))


#: ``H(BOTTOM)`` is needed at every client bootstrap and on every read of
#: a never-written register; it is a constant, computed once at import.
_BOTTOM_HASH = hash_values("VALUE", None)

# The canonical encoding of ("VALUE", x) for bytes x is a constant prefix
# (sequence header + label + bytes tag) followed by len(x) and x; hashing
# from a pre-seeded state skips re-encoding the prefix per value.
_VALUE_PREFIX = encode("VALUE", b"")[:-8]
_VALUE_STATE = HASH(_VALUE_PREFIX)


def hash_register_value(value: Value | Bottom) -> bytes:
    """Hash a register value for DATA signatures (Algorithm 1, line 13).

    ``BOTTOM`` (the initial value, never actually written) hashes to a
    distinguished constant so that ``checkData`` can verify reads of
    never-written registers uniformly.  Byte-identical to
    ``hash_values("VALUE", value)`` (the incremental-prefix fast path is
    covered by the equivalence tests).
    """
    if value is BOTTOM:
        return _BOTTOM_HASH
    if isinstance(value, bytes):
        state = _VALUE_STATE.copy()
        state.update(len(value).to_bytes(8, "big"))
        state.update(value)
        return state.digest()
    return hash_values("VALUE", value)
