"""Per-client signing handles and the trust boundary around the server.

The paper's server is untrusted and, critically, *cannot forge client
signatures*.  In this reproduction that guarantee is enforced by object
capabilities rather than convention:

* a :class:`KeyStore` owns the :class:`~repro.crypto.signatures.SignatureScheme`
  and hands each client a :class:`ClientSigner` bound to that client's id;
* server implementations (correct or Byzantine) receive a
  :class:`PublicVerifier` at most — an object that can only *verify*.

A Byzantine server written against this API simply has no handle with which
to produce a valid client signature, mirroring the computational assumption
of Section 2.

Deduplicated verification
-------------------------

Verification is deterministic: ``verify_i(sig, payload)`` always returns
the same answer for the same triple.  The same COMMIT- and
PROOF-signatures are presented to *every* client that processes a REPLY
mentioning them (Algorithm 1, lines 35/41/49), so a :class:`KeyStore`
shares one bounded :class:`VerificationCache` across all the *client*
capabilities it hands out — the crypto work for each distinct signature
is done once per system instead of once per observing client.  This is
the "batched verification" optimization of PERFORMANCE.md: correctness
is untouched (the cache stores the scheme's own verdicts, keyed by the
exact signer/signature/payload triple), only repetition is removed.

The cache itself is trusted state: whoever holds it could inject
verdicts.  It therefore lives strictly on the client side of the trust
boundary — :meth:`KeyStore.verifier` (the capability handed to servers)
returns a **cache-less** verifier, so a Byzantine server gains no
handle over what honest clients accept.
"""

from __future__ import annotations

from typing import Any

from repro.common.encoding import encode
from repro.common.types import ClientId
from repro.crypto.signatures import SignatureScheme, make_scheme


class VerificationCache:
    """Bounded memo of signature-verification verdicts.

    Keys are ``(signer, signature bytes, canonical payload bytes)`` — the
    full input of ``verify`` — so a hit can never change an answer, only
    skip recomputing it.  One instance is shared per :class:`KeyStore`;
    independent systems never share verdicts.
    """

    __slots__ = ("_memo", "_limit", "hits", "misses")

    def __init__(self, limit: int = 1 << 16) -> None:
        self._memo: dict[tuple[ClientId, bytes, bytes], bool] = {}
        self._limit = limit
        self.hits = 0
        self.misses = 0

    def lookup(self, key: tuple[ClientId, bytes, bytes]) -> bool | None:
        """The cached verdict for ``key``, or None on a miss."""
        verdict = self._memo.get(key)
        if verdict is None:
            self.misses += 1
            return None
        self.hits += 1
        return verdict

    def store(self, key: tuple[ClientId, bytes, bytes], verdict: bool) -> None:
        """Record the scheme's verdict for ``key`` (bounded)."""
        if len(self._memo) >= self._limit:  # pragma: no cover - bound guard
            self._memo.clear()
        self._memo[key] = verdict

    def stats(self) -> dict[str, int]:
        """Hit/miss/size counters (harvested by :mod:`repro.perf`)."""
        return {"hits": self.hits, "misses": self.misses, "size": len(self._memo)}


class PublicVerifier:
    """Verification-only view of a signature scheme (safe to give anyone)."""

    def __init__(
        self, scheme: SignatureScheme, cache: VerificationCache | None = None
    ) -> None:
        self._scheme = scheme
        self._cache = cache

    @property
    def num_clients(self) -> int:
        """Size of the client population the scheme is bound to."""
        return self._scheme.num_clients

    def verify(self, signer: ClientId, signature: bytes, *payload: Any) -> bool:
        """``verify_signer(signature, payload)`` over the canonical encoding."""
        payload_bytes = encode(*payload)
        cache = self._cache
        if cache is None or not isinstance(signature, bytes):
            return self._scheme.verify(signer, signature, payload_bytes)
        key = (signer, signature, payload_bytes)
        verdict = cache.lookup(key)
        if verdict is None:
            verdict = self._scheme.verify(signer, signature, payload_bytes)
            cache.store(key, verdict)
        return verdict


class ClientSigner:
    """``sign_i`` bound to one client, plus the shared verifier.

    Clients verify each other's signatures constantly (Algorithm 1 lines 35,
    41, 43, 49, 50), so the signer carries a verifier alongside its own
    signing capability.
    """

    def __init__(
        self,
        scheme: SignatureScheme,
        client: ClientId,
        cache: VerificationCache | None = None,
    ) -> None:
        self._scheme = scheme
        self._client = client
        self._verifier = PublicVerifier(scheme, cache)

    @property
    def client(self) -> ClientId:
        """The client id this signing capability is bound to."""
        return self._client

    @property
    def verifier(self) -> PublicVerifier:
        """The shared verification capability (cache included)."""
        return self._verifier

    def sign(self, *payload: Any) -> bytes:
        """Sign a structured payload with this client's key."""
        return self._scheme.sign(self._client, encode(*payload))

    def verify(self, signer: ClientId, signature: bytes, *payload: Any) -> bool:
        """``verify_signer(signature, payload)`` via the shared verifier."""
        return self._verifier.verify(signer, signature, *payload)


class KeyStore:
    """Creates and hands out signing / verifying capabilities.

    One keystore per simulated system.  Construction is deterministic given
    the scheme name and client count, keeping whole-system runs reproducible.
    Client signers share one :class:`VerificationCache`; the server-side
    verifier is cache-less (the cache is a verdict-injection capability,
    so it never crosses the trust boundary).
    """

    def __init__(self, num_clients: int, scheme: str | SignatureScheme = "hmac") -> None:
        if isinstance(scheme, SignatureScheme):
            if scheme.num_clients != num_clients:
                raise ValueError(
                    "scheme population does not match requested client count"
                )
            self._scheme = scheme
        else:
            self._scheme = make_scheme(scheme, num_clients)
        self._num_clients = num_clients
        self._cache = VerificationCache()

    @property
    def num_clients(self) -> int:
        """Size of the client population."""
        return self._num_clients

    def signer(self, client: ClientId) -> ClientSigner:
        """The full signing capability for ``client`` (clients only)."""
        return ClientSigner(self._scheme, client, self._cache)

    def verifier(self) -> PublicVerifier:
        """A verification-only capability (safe for servers).

        Deliberately cache-less: the shared verdict cache is writable
        trusted state, and handing it to a (possibly Byzantine) server
        would let it inject ``True`` verdicts for forged signatures.
        """
        return PublicVerifier(self._scheme)

    def verification_cache_stats(self) -> dict[str, int]:
        """Hit/miss/size counters of the shared verification cache."""
        return self._cache.stats()
