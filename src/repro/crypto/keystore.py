"""Per-client signing handles and the trust boundary around the server.

The paper's server is untrusted and, critically, *cannot forge client
signatures*.  In this reproduction that guarantee is enforced by object
capabilities rather than convention:

* a :class:`KeyStore` owns the :class:`~repro.crypto.signatures.SignatureScheme`
  and hands each client a :class:`ClientSigner` bound to that client's id;
* server implementations (correct or Byzantine) receive a
  :class:`PublicVerifier` at most — an object that can only *verify*.

A Byzantine server written against this API simply has no handle with which
to produce a valid client signature, mirroring the computational assumption
of Section 2.
"""

from __future__ import annotations

from typing import Any

from repro.common.encoding import encode
from repro.common.types import ClientId
from repro.crypto.signatures import SignatureScheme, make_scheme


class PublicVerifier:
    """Verification-only view of a signature scheme (safe to give anyone)."""

    def __init__(self, scheme: SignatureScheme) -> None:
        self._scheme = scheme

    @property
    def num_clients(self) -> int:
        return self._scheme.num_clients

    def verify(self, signer: ClientId, signature: bytes, *payload: Any) -> bool:
        """``verify_signer(signature, payload)`` over the canonical encoding."""
        return self._scheme.verify(signer, signature, encode(*payload))


class ClientSigner:
    """``sign_i`` bound to one client, plus the shared verifier.

    Clients verify each other's signatures constantly (Algorithm 1 lines 35,
    41, 43, 49, 50), so the signer carries a verifier alongside its own
    signing capability.
    """

    def __init__(self, scheme: SignatureScheme, client: ClientId) -> None:
        self._scheme = scheme
        self._client = client
        self._verifier = PublicVerifier(scheme)

    @property
    def client(self) -> ClientId:
        return self._client

    @property
    def verifier(self) -> PublicVerifier:
        return self._verifier

    def sign(self, *payload: Any) -> bytes:
        """Sign a structured payload with this client's key."""
        return self._scheme.sign(self._client, encode(*payload))

    def verify(self, signer: ClientId, signature: bytes, *payload: Any) -> bool:
        return self._verifier.verify(signer, signature, *payload)


class KeyStore:
    """Creates and hands out signing / verifying capabilities.

    One keystore per simulated system.  Construction is deterministic given
    the scheme name and client count, keeping whole-system runs reproducible.
    """

    def __init__(self, num_clients: int, scheme: str | SignatureScheme = "hmac") -> None:
        if isinstance(scheme, SignatureScheme):
            if scheme.num_clients != num_clients:
                raise ValueError(
                    "scheme population does not match requested client count"
                )
            self._scheme = scheme
        else:
            self._scheme = make_scheme(scheme, num_clients)
        self._num_clients = num_clients

    @property
    def num_clients(self) -> int:
        return self._num_clients

    def signer(self, client: ClientId) -> ClientSigner:
        """The full signing capability for ``client`` (clients only)."""
        return ClientSigner(self._scheme, client)

    def verifier(self) -> PublicVerifier:
        """A verification-only capability (safe for servers)."""
        return PublicVerifier(self._scheme)
