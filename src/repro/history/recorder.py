"""Recording histories from live protocol runs.

Protocol clients report invocations and responses here; the recorder
assembles the :class:`~repro.history.History` that the consistency
checkers consume, and keeps the ``(client, protocol timestamp) -> op``
mapping that lets the analysis layer reconstruct USTOR view histories.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import HistoryError
from repro.common.types import Bottom, ClientId, OpKind, RegisterId, Value
from repro.history.events import Operation
from repro.history.history import History


class _PendingOp:
    __slots__ = ("op_id", "client", "kind", "register", "value", "invoked_at", "timestamp")

    def __init__(self, op_id, client, kind, register, value, invoked_at, timestamp):
        self.op_id = op_id
        self.client = client
        self.kind = kind
        self.register = register
        self.value = value
        self.invoked_at = invoked_at
        self.timestamp = timestamp


class HistoryRecorder:
    """Builds a history incrementally from begin/end calls.

    Observers (e.g. the streaming checkers of
    :mod:`repro.consistency.incremental`) can subscribe with
    :meth:`add_listener` and see every invocation and response as it is
    recorded, in event order — the O(delta) alternative to re-extracting
    the whole :class:`History` on every periodic audit.
    """

    def __init__(self) -> None:
        self._next_id = 0
        self._pending: dict[int, _PendingOp] = {}
        self._done: list[Operation] = []
        self._by_key: dict[tuple[ClientId, int], int] = {}
        self._listeners: list = []
        #: register -> (pruned_write_count, last_pruned_responded_at);
        #: accumulated by :meth:`compact`, carried on extracted histories.
        self._base: dict[RegisterId, tuple[int, float]] = {}
        self.compacted_ops = 0

    def add_listener(self, listener) -> None:
        """Subscribe ``listener`` to the live operation stream.

        The listener's ``on_invoke(op)`` is called at every :meth:`begin`
        with the operation as a (still-incomplete) :class:`Operation`
        (``responded_at=None``); ``on_response(op)`` at every :meth:`end`
        with the completed operation.  Either hook may be absent.
        """
        self._listeners.append(listener)

    def begin(
        self,
        client: ClientId,
        kind: OpKind,
        register: RegisterId,
        invoked_at: float,
        value: Value | None = None,
        timestamp: int | None = None,
    ) -> int:
        """Record an invocation; returns the operation id.

        ``timestamp`` is the protocol timestamp (USTOR assigns it before
        sending SUBMIT, so it is known even for operations that never
        complete).
        """
        op_id = self._next_id
        self._next_id += 1
        self._pending[op_id] = _PendingOp(
            op_id, client, kind, register, value, invoked_at, timestamp
        )
        if timestamp is not None:
            self._by_key[(client, timestamp)] = op_id
        if self._listeners:
            op = Operation(
                op_id=op_id,
                client=client,
                kind=kind,
                register=register,
                value=value,
                invoked_at=invoked_at,
                responded_at=None,
                timestamp=timestamp,
            )
            for listener in self._listeners:
                hook = getattr(listener, "on_invoke", None)
                if hook is not None:
                    hook(op)
        return op_id

    def end(
        self,
        op_id: int,
        responded_at: float,
        value: Value | Bottom | None = None,
        timestamp: int | None = None,
    ) -> Operation:
        """Record the matching response; returns the completed operation."""
        try:
            pending = self._pending.pop(op_id)
        except KeyError:
            raise HistoryError(f"no pending operation with id {op_id}") from None
        if timestamp is not None:
            pending.timestamp = timestamp
            self._by_key[(pending.client, timestamp)] = op_id
        final_value = pending.value if pending.kind is OpKind.WRITE else value
        op = Operation(
            op_id=op_id,
            client=pending.client,
            kind=pending.kind,
            register=pending.register,
            value=final_value,
            invoked_at=pending.invoked_at,
            responded_at=responded_at,
            timestamp=pending.timestamp,
        )
        self._done.append(op)
        for listener in self._listeners:
            hook = getattr(listener, "on_response", None)
            if hook is not None:
                hook(op)
        return op

    # ------------------------------------------------------------------ #
    # Checkpoint compaction
    # ------------------------------------------------------------------ #

    def compact(self, cut: tuple[int, ...], keep_tail: int = 1) -> int:
        """Prune completed operations behind a co-signed checkpoint cut.

        ``cut[j]`` is the stable protocol timestamp for client ``j``
        (SWMR: also the writer of register ``j``).  Per register, the
        completed writes with ``timestamp <= cut[register]`` are pruned
        except the newest ``keep_tail`` of them; completed reads whose
        value came from a pruned write go with it.  What was dropped is
        summarised in the per-register base carried on every extracted
        :class:`History`, so the offline checkers keep write indexes
        absolute and the BOTTOM staleness rule time-sound.  Listeners
        with an ``on_compact(cut, keep_tail)`` hook (the incremental
        checkers) are told to prune by the same rule.  Returns the
        number of operations dropped.
        """
        if keep_tail < 1:
            raise HistoryError("keep_tail must be at least 1")
        writes_by_register: dict[RegisterId, list[Operation]] = {}
        for op in self._done:
            if op.is_write:
                writes_by_register.setdefault(op.register, []).append(op)
        pruned_ids: set[int] = set()
        pruned_values: set[tuple[RegisterId, bytes]] = set()
        for register, writes in writes_by_register.items():
            if register >= len(cut):
                continue
            eligible = [
                w
                for w in writes
                if w.timestamp is not None and w.timestamp <= cut[register]
            ]
            drop = eligible[:-keep_tail]
            if not drop:
                continue
            for write in drop:
                pruned_ids.add(write.op_id)
                pruned_values.add((register, bytes(write.value)))
            count, last = self._base.get(register, (0, float("-inf")))
            self._base[register] = (
                count + len(drop),
                max(last, drop[-1].responded_at),
            )
        if pruned_values:
            for op in self._done:
                if (
                    op.is_read
                    and op.value is not None
                    and not isinstance(op.value, Bottom)
                    and (op.register, bytes(op.value)) in pruned_values
                ):
                    pruned_ids.add(op.op_id)
        if pruned_ids:
            self._done = [op for op in self._done if op.op_id not in pruned_ids]
            self._by_key = {
                key: op_id
                for key, op_id in self._by_key.items()
                if op_id not in pruned_ids
            }
            self.compacted_ops += len(pruned_ids)
        for listener in self._listeners:
            hook = getattr(listener, "on_compact", None)
            if hook is not None:
                hook(tuple(cut), keep_tail)
        return len(pruned_ids)

    # ------------------------------------------------------------------ #
    # Extraction
    # ------------------------------------------------------------------ #

    def history(self) -> History:
        """The history so far, pending operations included (incomplete)."""
        ops = list(self._done)
        for pending in self._pending.values():
            ops.append(
                Operation(
                    op_id=pending.op_id,
                    client=pending.client,
                    kind=pending.kind,
                    register=pending.register,
                    value=pending.value,
                    invoked_at=pending.invoked_at,
                    responded_at=None,
                    timestamp=pending.timestamp,
                )
            )
        return History(ops, base=self._base)

    def op_id_for(self, client: ClientId, timestamp: int) -> int | None:
        """Map a protocol ``(client, timestamp)`` pair to an operation id."""
        return self._by_key.get((client, timestamp))

    @property
    def completed_count(self) -> int:
        return len(self._done)

    @property
    def pending_count(self) -> int:
        return len(self._pending)
