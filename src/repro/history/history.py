"""Histories: sequences of operations with the paper's derived notions.

A :class:`History` is the record of one execution restricted to the
register functionality ``F`` — what Section 2 calls ``sigma|F``.  It
provides the constructions every definition in the paper is phrased in:
``complete(sigma)``, per-client restriction ``sigma|C_i``, real-time
precedence, prefixes ``sigma|o``, and the unique-values reads-from helpers
that the consistency checkers build on.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.common.errors import HistoryError
from repro.common.types import BOTTOM, ClientId, OpKind, RegisterId
from repro.history.events import Operation


class History:
    """An immutable collection of operations from one execution.

    ``base`` carries the checkpoint cut a compacted recorder pruned
    behind (:meth:`~repro.history.recorder.HistoryRecorder.compact`): a
    mapping ``register -> (pruned_write_count, last_pruned_responded_at)``.
    Checkers use it to keep write indexes absolute and to keep the
    BOTTOM-read staleness rule sound on histories that no longer start
    at the initial value.  An empty base (the default) is a history from
    timestamp zero.
    """

    def __init__(
        self,
        operations: Iterable[Operation],
        base: dict[RegisterId, tuple[int, float]] | None = None,
    ) -> None:
        ops = sorted(operations, key=lambda o: (o.invoked_at, o.op_id))
        seen: set[int] = set()
        for op in ops:
            if op.op_id in seen:
                raise HistoryError(f"duplicate op_id {op.op_id} in history")
            seen.add(op.op_id)
        self._ops: tuple[Operation, ...] = tuple(ops)
        self._by_id = {op.op_id: op for op in ops}
        self._by_client: dict[ClientId, list[Operation]] = defaultdict(list)
        for op in self._ops:
            self._by_client[op.client].append(op)
        self._base: dict[RegisterId, tuple[int, float]] = dict(base or {})
        self._check_well_formed()

    def _check_well_formed(self) -> None:
        """Each client must be sequential: alternating invoke/response."""
        for client, ops in self._by_client.items():
            previous: Operation | None = None
            for op in ops:
                if previous is not None:
                    if previous.responded_at is None:
                        raise HistoryError(
                            f"client C{client + 1} invoked op {op.op_id} while "
                            f"op {previous.op_id} was still pending"
                        )
                    if previous.responded_at > op.invoked_at:
                        raise HistoryError(
                            f"client C{client + 1} operations overlap "
                            f"({previous.op_id} and {op.op_id})"
                        )
                previous = op

    # ------------------------------------------------------------------ #
    # Basic access
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops)

    def __getitem__(self, index: int) -> Operation:
        return self._ops[index]

    @property
    def operations(self) -> tuple[Operation, ...]:
        return self._ops

    @property
    def base(self) -> dict[RegisterId, tuple[int, float]]:
        """The checkpoint base this history was compacted behind."""
        return dict(self._base)

    def base_of(self, register: RegisterId) -> tuple[int, float]:
        """``(pruned_write_count, last_pruned_responded_at)`` for one register."""
        return self._base.get(register, (0, float("-inf")))

    def op(self, op_id: int) -> Operation:
        try:
            return self._by_id[op_id]
        except KeyError:
            raise HistoryError(f"no operation with id {op_id}") from None

    def clients(self) -> list[ClientId]:
        return sorted(self._by_client)

    def registers(self) -> list[RegisterId]:
        return sorted({op.register for op in self._ops})

    # ------------------------------------------------------------------ #
    # The paper's derived sequences
    # ------------------------------------------------------------------ #

    def complete(self) -> "History":
        """``complete(sigma)``: the complete operations only."""
        return History(
            (op for op in self._ops if op.complete), base=self._base
        )

    def restrict_to_client(self, client: ClientId) -> list[Operation]:
        """``sigma|C_i`` as an ordered list."""
        return list(self._by_client.get(client, ()))

    def restrict_to_register(self, register: RegisterId) -> list[Operation]:
        return [op for op in self._ops if op.register == register]

    def writes_to(self, register: RegisterId) -> list[Operation]:
        """All writes to a register in writer program order.

        SWMR means a single (sequential) writer, so program order totally
        orders these writes — the fact the fast linearizability checker
        exploits.
        """
        return [
            op
            for op in self._by_client.get(register, ())
            if op.is_write and op.register == register
        ]

    def reads_of(self, register: RegisterId) -> list[Operation]:
        return [op for op in self._ops if op.is_read and op.register == register]

    # ------------------------------------------------------------------ #
    # Unique-values machinery (Section 2 assumes written values unique)
    # ------------------------------------------------------------------ #

    def assert_unique_write_values(self) -> None:
        seen: dict[tuple[RegisterId, bytes], int] = {}
        for op in self._ops:
            if not op.is_write:
                continue
            key = (op.register, bytes(op.value))  # type: ignore[arg-type]
            if key in seen:
                raise HistoryError(
                    f"writes {seen[key]} and {op.op_id} store the same value in "
                    f"register {op.register}; unique values are assumed"
                )
            seen[key] = op.op_id

    def write_of_value(self, register: RegisterId, value) -> Operation | None:
        """The unique write that stored ``value`` in ``register``, if any."""
        if value is BOTTOM:
            return None
        for op in self.writes_to(register):
            if op.value == value:
                return op
        return None

    # ------------------------------------------------------------------ #
    # Completion (the standard preprocessing for Definitions 1-3)
    # ------------------------------------------------------------------ #

    def completed_for_checking(self) -> "History":
        """Resolve incomplete operations the way Definition 1 permits.

        * incomplete reads are dropped (they returned nothing observable
          and a response with *any* legal value may be appended, so they
          never make a history inconsistent);
        * incomplete writes are kept, completed with an open-ended response
          (``+inf``): they may have taken effect — another client may have
          read them — and since they then constrain nothing in real-time
          order, keeping them is equivalence-preserving for every checker
          in :mod:`repro.consistency` (an unread, real-time-unconstrained
          write can always be appended at the writer's last position).
        """
        kept: list[Operation] = []
        for op in self._ops:
            if op.complete:
                kept.append(op)
            elif op.is_write:
                kept.append(op.completed_copy(responded_at=float("inf")))
        return History(kept, base=self._base)

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #

    def describe(self) -> str:
        lines = []
        for op in self._ops:
            end = f"{op.responded_at:.3f}" if op.complete else "pending"
            lines.append(f"[{op.invoked_at:.3f} .. {end}] {op.describe()}")
        return "\n".join(lines)


def prefix_up_to(sequence: list[Operation], op: Operation) -> list[Operation]:
    """``pi|o``: the prefix of a sequential view ending with ``op``.

    Raises if ``op`` does not occur in the sequence — callers are expected
    to check membership first (the definitions always quantify over common
    operations).
    """
    for index, candidate in enumerate(sequence):
        if candidate.op_id == op.op_id:
            return sequence[: index + 1]
    raise HistoryError(f"operation {op.op_id} not in the given sequence")
