"""Sequential specification of the n-SWMR-register functionality ``F``.

Section 2: *"each read operation returns the value written by the most
recent preceding write operation, if there is one, and the initial value
otherwise"*.  This module replays a candidate sequential permutation and
decides whether it satisfies that specification — the core predicate behind
"is a view" (Definition 1, condition 3) and thus behind every consistency
checker in :mod:`repro.consistency`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.common.types import BOTTOM, RegisterId
from repro.history.events import Operation


def run_sequentially(
    operations: Iterable[Operation],
) -> tuple[bool, int | None, dict[RegisterId, object]]:
    """Replay operations against fresh registers.

    Returns ``(legal, first_bad_op_id, final_state)``.  ``first_bad_op_id``
    is the id of the earliest read whose return value contradicts the
    register state at its position (``None`` when legal).
    """
    state: dict[RegisterId, object] = {}
    for op in operations:
        if op.is_write:
            state[op.register] = op.value
        else:
            expected = state.get(op.register, BOTTOM)
            if op.value != expected:
                return False, op.op_id, dict(state)
    return True, None, dict(state)


def is_legal_sequence(operations: Sequence[Operation]) -> bool:
    """True iff the sequence satisfies the SWMR register specification."""
    legal, _bad, _state = run_sequentially(operations)
    return legal


def explain_illegal(operations: Sequence[Operation]) -> str | None:
    """Human-readable description of the first spec violation, if any."""
    state: dict[RegisterId, object] = {}
    for op in operations:
        if op.is_write:
            state[op.register] = op.value
            continue
        expected = state.get(op.register, BOTTOM)
        if op.value != expected:
            return (
                f"{op.describe()} should have returned "
                f"{expected!r} at this position"
            )
    return None
