"""Histories, operations, the register spec, and causal structure (Section 2)."""

from repro.history.causality import CausalStructure, build_causal_structure
from repro.history.events import Operation
from repro.history.history import History, prefix_up_to
from repro.history.recorder import HistoryRecorder
from repro.history.register_spec import (
    explain_illegal,
    is_legal_sequence,
    run_sequentially,
)

__all__ = [
    "CausalStructure",
    "History",
    "HistoryRecorder",
    "Operation",
    "build_causal_structure",
    "explain_illegal",
    "is_legal_sequence",
    "prefix_up_to",
    "run_sequentially",
]
