"""Potential causality over histories (Definition 3 machinery).

The paper adopts Lamport's potential causality: ``o -->_sigma o'`` iff

1. both are by the same client and ``o <_sigma o'`` (program order), or
2. ``o'`` reads-from ``o`` (the read returns the value ``o`` wrote), or
3. transitivity through some ``o''``.

Written values are unique (Section 2), so the reads-from relation is a
function from reads to writes: a read returning value ``v`` reads-from
*the* write of ``v``, and a read returning ``BOTTOM`` reads-from no write.
A read returning a value *nobody wrote* witnesses a fabricated response;
the causal structure flags it so checkers can fail the history outright
(an unforgeable-signature server can never make an honest client return
such a value, but baseline protocols without signatures can).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.common.types import BOTTOM
from repro.history.events import Operation
from repro.history.history import History


@dataclass
class CausalStructure:
    """Reads-from + causal precedence for one history."""

    history: History
    #: read op_id -> write op_id (absent key: read returned BOTTOM)
    reads_from: dict[int, int] = field(default_factory=dict)
    #: reads whose returned value was never written (fabricated responses)
    fabricated_reads: list[int] = field(default_factory=list)
    #: direct causal edges op_id -> set of successor op_ids
    successors: dict[int, set[int]] = field(default_factory=lambda: defaultdict(set))
    #: inverse edges, for ancestor queries
    predecessors: dict[int, set[int]] = field(default_factory=lambda: defaultdict(set))

    def causally_precedes(self, a: Operation | int, b: Operation | int) -> bool:
        """``a -->_sigma b`` (strict: an op does not causally precede itself)."""
        a_id = a if isinstance(a, int) else a.op_id
        b_id = b if isinstance(b, int) else b.op_id
        if a_id == b_id:
            return False
        return a_id in self.ancestors(b_id)

    def ancestors(self, op_id: int) -> set[int]:
        """All op_ids that causally precede ``op_id`` (computed on demand)."""
        seen: set[int] = set()
        stack = list(self.predecessors.get(op_id, ()))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.predecessors.get(current, ()))
        return seen

    def descendants(self, op_id: int) -> set[int]:
        seen: set[int] = set()
        stack = list(self.successors.get(op_id, ()))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.successors.get(current, ()))
        return seen

    def has_cycle(self) -> bool:
        """A causal cycle means the 'order' is not an order at all.

        Impossible for honest values in real time, but a Byzantine server
        colluding with a broken signature scheme could fabricate one; the
        causal checker treats it as an immediate violation.
        """
        # Kahn's algorithm over the direct-edge graph.
        indegree: dict[int, int] = defaultdict(int)
        nodes = {op.op_id for op in self.history}
        for src, dsts in self.successors.items():
            for dst in dsts:
                indegree[dst] += 1
        queue = [n for n in nodes if indegree[n] == 0]
        visited = 0
        while queue:
            node = queue.pop()
            visited += 1
            for dst in self.successors.get(node, ()):
                indegree[dst] -= 1
                if indegree[dst] == 0:
                    queue.append(dst)
        return visited != len(nodes)


def build_causal_structure(history: History) -> CausalStructure:
    """Compute reads-from and direct causal edges for a (complete) history."""
    structure = CausalStructure(history=history)

    def add_edge(src_id: int, dst_id: int) -> None:
        if src_id == dst_id:
            return
        structure.successors[src_id].add(dst_id)
        structure.predecessors[dst_id].add(src_id)

    # Rule 1: program order per client.
    for client in history.clients():
        ops = history.restrict_to_client(client)
        for earlier, later in zip(ops, ops[1:]):
            add_edge(earlier.op_id, later.op_id)

    # Rule 2: reads-from (unique values make the writer unambiguous).
    for op in history:
        if not op.is_read or op.value is None:
            continue
        if op.value is BOTTOM:
            continue
        writer = history.write_of_value(op.register, op.value)
        if writer is None:
            structure.fabricated_reads.append(op.op_id)
            continue
        structure.reads_from[op.op_id] = writer.op_id
        add_edge(writer.op_id, op.op_id)

    return structure
