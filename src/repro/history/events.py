"""Operations as invocation/response event pairs (Section 2 of the paper).

The paper represents an operation by two events at a client.  We collapse
the pair into one :class:`Operation` record carrying both times, which is
equivalent for well-formed executions (each client alternates invocations
and responses) and far more convenient for checkers.  ``responded_at is
None`` encodes an incomplete operation — an invocation whose response never
occurred, e.g. because the client crashed mid-operation or a Byzantine
server never replied.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.common.errors import HistoryError
from repro.common.types import (
    BOTTOM,
    Bottom,
    ClientId,
    OpKind,
    RegisterId,
    Value,
    client_name,
    register_name,
)


@dataclass(frozen=True)
class Operation:
    """One read or write operation on the SWMR register functionality.

    ``value`` is the written value for a WRITE and the *returned* value for
    a READ (``BOTTOM`` when the register was never written).  For an
    incomplete READ the return value is unknown and ``value`` is ``None``.
    ``timestamp`` carries the FAUST timestamp when the operation ran under
    the fail-aware layer (Definition 5 extends responses with it).
    """

    op_id: int
    client: ClientId
    kind: OpKind
    register: RegisterId
    value: Value | Bottom | None
    invoked_at: float
    responded_at: float | None
    timestamp: int | None = None

    def __post_init__(self) -> None:
        if self.kind is OpKind.WRITE and self.client != self.register:
            raise HistoryError(
                f"{client_name(self.client)} may only write its own register, "
                f"not {register_name(self.register)} (SWMR)"
            )
        if self.responded_at is not None and self.responded_at < self.invoked_at:
            raise HistoryError(
                f"operation {self.op_id} responds before it is invoked"
            )
        if self.kind is OpKind.WRITE and self.value is None:
            raise HistoryError(f"write operation {self.op_id} must carry a value")

    @property
    def complete(self) -> bool:
        return self.responded_at is not None

    @property
    def is_read(self) -> bool:
        return self.kind is OpKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is OpKind.WRITE

    def precedes(self, other: "Operation") -> bool:
        """Real-time order ``o <_sigma o'``: o completes before o' is invoked."""
        if self.responded_at is None:
            return False
        return self.responded_at < other.invoked_at

    def concurrent_with(self, other: "Operation") -> bool:
        return not self.precedes(other) and not other.precedes(self)

    def completed_copy(self, responded_at: float, value: Any = None) -> "Operation":
        """A completed version of an incomplete operation (Definition 1's
        "extended by appending responses")."""
        if self.complete:
            return self
        new_value = self.value if self.is_write else value
        return replace(self, responded_at=responded_at, value=new_value)

    def describe(self) -> str:
        """Human-readable rendering in the paper's notation."""
        who = client_name(self.client)
        reg = register_name(self.register)
        if self.is_write:
            return f"write_{who}({reg}, {_show_value(self.value)})"
        shown = "?" if self.value is None else _show_value(self.value)
        return f"read_{who}({reg}) -> {shown}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


def _show_value(value: Value | Bottom | None) -> str:
    if value is BOTTOM:
        return "BOTTOM"
    if value is None:
        return "?"
    if isinstance(value, bytes):
        try:
            text = value.decode("utf-8")
        except UnicodeDecodeError:
            return value.hex()[:16]
        return repr(text)
    return repr(value)
