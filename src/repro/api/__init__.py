"""The canonical application-facing API of the reproduction.

One storage abstraction over interchangeable protocol backends::

    from repro.api import FaustBackend, SystemConfig

    system = FaustBackend().open_system(SystemConfig(num_clients=3, seed=7))
    alice, bob = system.session(0), system.session(1)

    t = alice.write_sync(b"draft-1")            # blocking form
    handle = bob.read(0)                        # future form
    value, _ = handle.result().value, handle.result().timestamp

    sub = system.notifications.subscribe()      # typed stable/fail events
    alice.wait_for_stability(t)

Swap :class:`FaustBackend` for :class:`LockstepBackend` or
:class:`UncheckedBackend` and the read/write surface runs unchanged
with that protocol's guarantees — the point of the paper, as an API.
Fail-aware calls (stability waits/cuts, stability events) are declared
per backend in ``backend.capabilities`` and raise
:class:`CapabilityError` where unsupported.
"""

from repro.api.backends import (
    BACKENDS,
    Backend,
    Capabilities,
    ClusterBackend,
    FaustBackend,
    LockstepBackend,
    UncheckedBackend,
    UstorBackend,
    get_backend,
    open_system,
)
from repro.api.config import (
    BatchingPolicy,
    FaustParams,
    SystemConfig,
)
from repro.faust.checkpoint import CheckpointPolicy
from repro.api.errors import CapabilityError, OperationFailed, OperationTimeout
from repro.api.events import (
    FailureNotification,
    Notification,
    NotificationHub,
    StabilityNotification,
    Subscription,
)
from repro.api.handles import OpHandle, OpResult
from repro.api.session import Session, as_session
from repro.api.system import System

__all__ = [
    "BACKENDS",
    "Backend",
    "BatchingPolicy",
    "CapabilityError",
    "CheckpointPolicy",
    "Capabilities",
    "ClusterBackend",
    "FailureNotification",
    "FaustBackend",
    "FaustParams",
    "LockstepBackend",
    "Notification",
    "NotificationHub",
    "OpHandle",
    "OpResult",
    "OperationFailed",
    "OperationTimeout",
    "Session",
    "StabilityNotification",
    "Subscription",
    "System",
    "SystemConfig",
    "UncheckedBackend",
    "UstorBackend",
    "as_session",
    "get_backend",
    "open_system",
]
