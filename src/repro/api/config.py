"""Declarative configuration for opening a storage system through a backend.

One :class:`SystemConfig` describes a deployment independently of the
protocol that will run it; the chosen :class:`~repro.api.backends.Backend`
interprets the knobs it understands.  FAUST-specific tuning lives in the
nested :class:`FaustParams` so that experiments can sweep fail-aware
parameters without touching the common deployment shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.common.errors import ConfigurationError
from repro.sim.network import LatencyModel

if TYPE_CHECKING:  # import cycle: repro.faust pulls this module back in
    from repro.faust.checkpoint import CheckpointPolicy
    from repro.faust.membership import MembershipPolicy


@dataclass(frozen=True)
class BatchingPolicy:
    """The throughput pipeline's knobs: client flush policy + transport
    and server amortizations.

    ``max_batch``/``max_delay``/``flush_on_barrier`` shape the *session*
    flush policy: operations submitted through a
    :class:`~repro.api.session.Session` are buffered and handed to the
    protocol layer when the buffer reaches ``max_batch`` operations
    (size), when ``max_delay`` virtual time units have passed since the
    first buffered operation (time), or when ``barrier()`` — or any
    blocking wait — needs them issued (barrier).  ``max_delay=None``
    disables the timer (size/barrier flushes only).

    ``transport`` coalesces same-destination message bursts into single
    scheduler events (:class:`~repro.sim.network.Network` batching);
    ``group_commit`` batches server wakeups and WAL appends
    (:class:`~repro.ustor.server.UstorServer` group commit).  Both
    preserve the per-operation SUBMIT/REPLY/COMMIT protocol — histories,
    digests and checker verdicts are unchanged (see
    ``tests/test_batching_equivalence.py``); only the per-message
    machinery is amortized.
    """

    max_batch: int = 8
    max_delay: float | None = 1.0
    flush_on_barrier: bool = True
    transport: bool = True
    group_commit: bool = True

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigurationError("max_batch must be at least 1")
        if self.max_delay is not None and self.max_delay <= 0:
            raise ConfigurationError(
                "max_delay must be positive (or None to disable time flush)"
            )


@dataclass
class FaustParams:
    """Tuning for the fail-aware layer (Section 6); ignored by backends
    that do not run it."""

    delta: float = 40.0
    dummy_read_period: float = 7.0
    probe_check_period: float = 11.0
    enable_dummy_reads: bool = True
    enable_probes: bool = True

    def as_kwargs(self) -> dict:
        """The parameters as ``SystemBuilder.build_faust`` keyword args."""
        return {
            "delta": self.delta,
            "dummy_read_period": self.dummy_read_period,
            "probe_check_period": self.probe_check_period,
            "enable_dummy_reads": self.enable_dummy_reads,
            "enable_probes": self.enable_probes,
        }


@dataclass
class SystemConfig:
    """Backend-agnostic description of one simulated deployment.

    ``server_factory`` receives ``(num_clients, server_name)`` and must
    return a server appropriate to the chosen backend (a USTOR server for
    the ``faust``/``ustor`` backends, a lock-step or plain server for the
    baselines); ``None`` selects the backend's honest server.

    ``transport`` picks the world the deployment runs in: ``"sim"`` (the
    default discrete-event simulator) or ``"tcp"`` (real sockets against
    server processes started with ``python -m repro serve``; ``ustor``
    backend only).  Over TCP the server is a *separate process*, so every
    server-side knob (``server_factory``, ``storage``, ``server_outages``,
    batching, shards, latency models) belongs to that process's command
    line, not to this config — setting one here is rejected loudly.
    """

    num_clients: int
    seed: int = 0
    scheme: str = "hmac"
    latency: LatencyModel | None = None
    offline_latency: LatencyModel | None = None
    server_factory: Callable | None = None
    commit_piggyback: bool = False
    #: Default time budget for synchronous waits (``result``, ``barrier``).
    default_timeout: float = 1_000.0
    #: Server durability: ``"memory"`` (the paper's volatile server),
    #: ``"log"`` (WAL + snapshots, crash-recoverable), a ready
    #: :class:`~repro.store.engine.StorageEngine`, or a factory
    #: ``f(num_clients) -> StorageEngine``.  Ignored when
    #: ``server_factory`` is given (a custom server owns its durability).
    storage: str | Callable = "memory"
    #: Scheduled crash-recovery windows ``(start, duration)`` for the
    #: server: it goes down at ``start`` and recovers from its storage
    #: engine ``duration`` later.  Only meaningful on backends whose
    #: server supports engine recovery (``faust`` / ``ustor``); on the
    #: ``cluster`` backend each window hits *every* shard (a correlated
    #: outage — use ``shard_outages`` to target one shard).
    server_outages: tuple[tuple[float, float], ...] = ()
    #: Number of shards (``cluster`` backend only; the other backends
    #: reject any value but 1).  Each shard is an independent server
    #: owning one partition of the register space.
    shards: int = 1
    #: Partitioning strategy: ``"range"``, ``"hash"``, or a ready
    #: :class:`~repro.cluster.shardmap.ShardMap` instance.
    shard_map: str | object = "range"
    #: The protocol every shard runs: ``"faust"`` (fail-aware) or
    #: ``"ustor"`` (detection without notifications).
    shard_protocol: str = "faust"
    #: Per-shard server overrides ``{shard: factory}`` — lets one shard
    #: run a Byzantine server while the rest stay honest.  Shards not
    #: named here use ``server_factory`` (or the honest default).
    shard_server_factories: dict = field(default_factory=dict)
    #: Crash-recovery windows targeting single shards:
    #: ``(shard, start, duration)`` triples (``cluster`` backend only).
    shard_outages: tuple[tuple[int, float, float], ...] = ()
    #: Replicas per shard (:mod:`repro.replica`).  ``1`` is the paper's
    #: single untrusted server; ``>1`` puts a client-side quorum group
    #: behind each shard (``cluster`` backend, or ``transport='tcp'``
    #: with one endpoint per replica).
    replicas: int = 1
    #: REPLYs that must agree byte-for-byte to elect a round's winner.
    #: ``None`` = majority (``replicas // 2 + 1``); ``replicas`` demands
    #: unanimity (nothing masked, everything detected).
    quorum: int | None = None
    #: Trusted monotonic counter per replica (``None`` = no trust
    #: anchor): ``"durable"`` survives server crashes (the hardware
    #: model, catches rollbacks in O(1) operations), ``"volatile"``
    #: resets with the process (demonstrates why durability is part of
    #: the trust model).  Over tcp the flag only arms the client-side
    #: verifier — the counter itself belongs to ``repro serve --counter``.
    counter: str | None = None
    #: Per-replica server overrides ``{replica: factory}`` — lets one
    #: replica run a Byzantine server while the rest stay honest.
    replica_server_factories: dict = field(default_factory=dict)
    #: The throughput pipeline: ``None`` (default) runs fully unbatched —
    #: one scheduler event per message, one WAL append per record, ops
    #: issued as submitted.  A :class:`BatchingPolicy` (or ``True`` for
    #: the default policy) enables session auto-flush batching, transport
    #: burst coalescing and server group commit.  Supported on the
    #: ``faust``/``ustor``/``cluster`` backends.
    batching: "BatchingPolicy | bool | None" = None
    #: Bounded state: ``None`` (default) keeps full history everywhere; a
    #: :class:`~repro.faust.checkpoint.CheckpointPolicy` (or ``True`` for
    #: the default policy) makes clients co-sign checkpoints over the
    #: all-clients stable cut, after which servers truncate the covered
    #: ``pending`` prefix and compact their WAL, clients prune view-history
    #: records, and (with ``prune_history``) the recorder + incremental
    #: checkers drop operations behind the cut.  Fail-aware backends only
    #: (``faust``, and ``cluster``/replicas with ``shard_protocol='faust'``).
    checkpoint: "CheckpointPolicy | bool | None" = None
    #: Lease-based membership epochs: ``None`` (default) requires every
    #: client to co-sign every checkpoint forever; a
    #: :class:`~repro.faust.membership.MembershipPolicy` (or ``True`` for
    #: the default policy) lets the live quorum co-sign epoch changes
    #: that evict crashed-forever clients (and re-admit returning ones),
    #: so the checkpoint chain keeps advancing.  Requires ``checkpoint=``
    #: and a fail-aware backend (``faust``, or ``cluster`` with
    #: ``shard_protocol='faust'``).
    membership: "MembershipPolicy | bool | None" = None
    faust: FaustParams = field(default_factory=FaustParams)
    #: ``"sim"`` (discrete-event simulator) or ``"tcp"`` (real asyncio
    #: sockets; ``ustor`` backend only).
    transport: str = "sim"
    #: Server addresses for ``transport="tcp"``: ``host:port`` strings
    #: (or one comma-separated string).  One endpoint per replica — the
    #: sharded form is launched with ``serve-cluster`` and opened per
    #: shard through :func:`repro.net.client.open_tcp_system`.
    endpoints: tuple[str, ...] = ()
    #: The name the tcp server process answers as (``repro serve
    #: --server-name``; ``serve-cluster`` names shard *i* ``S{i}``).  The
    #: handshake cross-checks it, so it must match the process exactly.
    server_name: str = "S"
    #: Record the run's wire trace (JSONL) here; replayable with
    #: :func:`repro.net.trace.replay_trace` (``transport="tcp"`` only).
    trace_path: str | None = None
    #: Stamp SUBMIT/COMMIT with deterministic causal trace ids (an
    #: optional TLV field the server echoes into REPLYs), so one client
    #: operation can be followed across processes (``transport="tcp"``
    #: only; simulated runs trace at the session layer instead).
    trace_ids: bool = False
    #: A :class:`repro.obs.tracing.SpanLog` collecting per-operation
    #: spans (sessions on every transport; the wire client's SUBMIT/fail
    #: instants over tcp).  ``None`` = no tracing.
    span_log: object | None = None

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ConfigurationError("need at least one client")
        if self.batching is True:
            self.batching = BatchingPolicy()
        elif self.batching is False:
            self.batching = None
        elif self.batching is not None and not isinstance(
            self.batching, BatchingPolicy
        ):
            raise ConfigurationError(
                f"batching must be a BatchingPolicy, True/False or None, "
                f"got {self.batching!r}"
            )
        # Imported lazily: repro.faust imports repro.workloads which
        # imports this module back, so the policy class cannot be a
        # top-level dependency here.
        from repro.faust.checkpoint import CheckpointPolicy

        if self.checkpoint is True:
            self.checkpoint = CheckpointPolicy()
        elif self.checkpoint is False:
            self.checkpoint = None
        elif self.checkpoint is not None and not isinstance(
            self.checkpoint, CheckpointPolicy
        ):
            raise ConfigurationError(
                f"checkpoint must be a CheckpointPolicy, True/False or None, "
                f"got {self.checkpoint!r}"
            )
        from repro.faust.membership import MembershipPolicy

        if self.membership is True:
            self.membership = MembershipPolicy()
        elif self.membership is False:
            self.membership = None
        elif self.membership is not None and not isinstance(
            self.membership, MembershipPolicy
        ):
            raise ConfigurationError(
                f"membership must be a MembershipPolicy, True/False or None, "
                f"got {self.membership!r}"
            )
        if self.membership is not None and self.checkpoint is None:
            raise ConfigurationError(
                "membership= layers lease-based epochs under the checkpoint "
                "protocol; it needs checkpoint= enabled"
            )
        if self.default_timeout <= 0:
            raise ConfigurationError("default_timeout must be positive")
        for window in self.server_outages:
            if len(window) != 2 or window[0] < 0 or window[1] <= 0:
                raise ConfigurationError(
                    f"server outages are (non-negative start, positive "
                    f"duration) pairs, got {window!r}"
                )
        validate_outage_windows(self.server_outages)
        if self.shards < 1:
            raise ConfigurationError("a deployment needs at least one shard")
        if self.shard_protocol not in ("faust", "ustor"):
            raise ConfigurationError(
                f"shard_protocol must be 'faust' or 'ustor', "
                f"got {self.shard_protocol!r}"
            )
        for entry in self.shard_outages:
            if (
                len(entry) != 3
                or not 0 <= entry[0] < self.shards
                or entry[1] < 0
                or entry[2] <= 0
            ):
                raise ConfigurationError(
                    f"shard outages are (shard < {self.shards}, non-negative "
                    f"start, positive duration) triples, got {entry!r}"
                )
        for shard in self.shard_server_factories:
            if not 0 <= shard < self.shards:
                raise ConfigurationError(
                    f"shard_server_factories names shard {shard!r} but the "
                    f"cluster has {self.shards} shard(s)"
                )
        if self.replicas < 1:
            raise ConfigurationError("a shard needs at least one replica")
        if self.quorum is not None:
            if self.replicas == 1:
                raise ConfigurationError(
                    "quorum= tunes a replica group; it needs replicas > 1"
                )
            if not 1 <= self.quorum <= self.replicas:
                raise ConfigurationError(
                    f"quorum must be in [1, {self.replicas}], "
                    f"got {self.quorum!r}"
                )
        if self.counter not in (None, "volatile", "durable"):
            raise ConfigurationError(
                f"counter must be None, 'volatile' or 'durable', "
                f"got {self.counter!r}"
            )
        for replica in self.replica_server_factories:
            if not 0 <= replica < self.replicas:
                raise ConfigurationError(
                    f"replica_server_factories names replica {replica!r} but "
                    f"each shard has {self.replicas} replica(s)"
                )
        self._validate_transport()

    def _validate_transport(self) -> None:
        if self.transport not in ("sim", "tcp"):
            raise ConfigurationError(
                f"transport must be 'sim' or 'tcp', got {self.transport!r}"
            )
        if isinstance(self.endpoints, str):
            self.endpoints = tuple(
                part.strip() for part in self.endpoints.split(",") if part.strip()
            )
        else:
            self.endpoints = tuple(self.endpoints)
        if self.transport == "sim":
            if self.endpoints:
                raise ConfigurationError(
                    "endpoints= names real servers; it needs transport='tcp'"
                )
            if self.trace_path is not None:
                raise ConfigurationError(
                    "trace_path= records a real run's wire trace; it needs "
                    "transport='tcp' (simulated runs are already deterministic)"
                )
            if self.trace_ids:
                raise ConfigurationError(
                    "trace_ids= stamps wire messages for cross-process "
                    "tracing; it needs transport='tcp' (simulated runs are "
                    "traced at the session layer)"
                )
            if self.server_name != "S":
                raise ConfigurationError(
                    "server_name= matches a real server process's handshake; "
                    "it needs transport='tcp' (simulated servers are named "
                    "by the backend)"
                )
            return
        if not self.endpoints:
            raise ConfigurationError(
                "transport='tcp' needs endpoints= ('host:port', e.g. from "
                "'python -m repro serve')"
            )
        if len(self.endpoints) != self.replicas:
            raise ConfigurationError(
                f"transport='tcp' needs one endpoint per replica: "
                f"replicas={self.replicas} but {len(self.endpoints)} "
                f"endpoint(s) given"
            )
        server_side = []
        if self.server_factory is not None:
            server_side.append("server_factory")
        if self.storage != "memory":
            server_side.append("storage")
        if self.server_outages:
            server_side.append("server_outages")
        if self.checkpoint is not None:
            raise ConfigurationError(
                "checkpoint= needs the fail-aware layer's offline channel "
                "for co-signing; transport='tcp' runs bare USTOR clients "
                "against server processes"
            )
        if self.batching is not None:
            server_side.append("batching")
        if self.latency is not None or self.offline_latency is not None:
            server_side.append("latency")
        if self.uses_cluster_knobs():
            server_side.append("shards")
        if self.replica_server_factories:
            server_side.append("replica_server_factories")
        if server_side:
            raise ConfigurationError(
                f"transport='tcp' runs the server in its own process: "
                f"{', '.join(server_side)} belong on the 'repro serve' "
                f"command line, not on the client config"
            )

    def uses_cluster_knobs(self) -> bool:
        """Is any shard-axis knob set away from its single-server default?"""
        return bool(
            self.shards != 1
            or self.shard_map != "range"
            or self.shard_protocol != "faust"
            or self.shard_server_factories
            or self.shard_outages
        )

    def uses_replica_knobs(self) -> bool:
        """Is any replica-axis knob set away from its single-server default?"""
        return bool(
            self.replicas != 1
            or self.quorum is not None
            or self.counter is not None
            or self.replica_server_factories
        )


def validate_outage_windows(
    windows: tuple[tuple[float, float], ...]
) -> None:
    """Reject overlapping crash-recovery windows.

    An overlap would end the longer window at the shorter one's restart;
    fail loudly rather than quietly shorten an outage.  Shared with the
    cluster backend, which merges global and per-shard windows per shard.
    """
    ordered = sorted(windows)
    for (start1, duration1), (start2, _d2) in zip(ordered, ordered[1:]):
        if start2 < start1 + duration1:
            raise ConfigurationError(
                f"server outage windows overlap: "
                f"({start1}, {duration1}) and ({start2}, {_d2})"
            )
