"""Typed failure-awareness notifications and the subscription hub.

The paper's service interface (Definition 5) *outputs* ``stable_i(W)``
and ``fail_i`` actions; polling attributes off a client loses their
ordering and forces the application to know the protocol internals.  The
hub turns them into first-class events: every notification carries a
global sequence number (total emission order across all clients), the
virtual time it fired, and the client it fired at.

Subscriptions deliver either through a callback or by accumulating on
``subscription.events`` for later inspection; both respect optional kind
and client filters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.common.types import ClientId


@dataclass(frozen=True)
class Notification:
    """Base class for fail-aware service outputs."""

    seq: int  # global emission order across the whole system
    time: float  # virtual time of the output action
    client: ClientId  # the client the action occurred at


@dataclass(frozen=True)
class StabilityNotification(Notification):
    """``stable_i(W)`` — operations up to ``cut[j]`` are consistent with
    client ``j`` (Definition 5, conditions 6-7)."""

    cut: tuple[int, ...]


@dataclass(frozen=True)
class FailureNotification(Notification):
    """``fail_i`` — proof of server misbehaviour reached this client."""

    reason: str


class Subscription:
    """One listener's registration with a :class:`NotificationHub`."""

    def __init__(
        self,
        hub: "NotificationHub",
        callback: Callable[[Notification], None] | None,
        kinds: tuple[type, ...] | None,
        clients: frozenset[ClientId] | None,
    ) -> None:
        self._hub = hub
        self._callback = callback
        self._kinds = kinds
        self._clients = clients
        self.active = True
        #: Notifications delivered to this subscription, in emission order.
        self.events: list[Notification] = []

    def _matches(self, event: Notification) -> bool:
        if self._kinds is not None and not isinstance(event, self._kinds):
            return False
        if self._clients is not None and event.client not in self._clients:
            return False
        return True

    def _deliver(self, event: Notification) -> None:
        if not self.active or not self._matches(event):
            return
        self.events.append(event)
        if self._callback is not None:
            self._callback(event)

    def unsubscribe(self) -> None:
        """Stop delivery permanently (already-accumulated events remain)."""
        self.active = False
        self._hub._drop(self)


class NotificationHub:
    """Fan-out point for a system's stability and failure notifications."""

    def __init__(self) -> None:
        self._subscriptions: list[Subscription] = []
        self._next_seq = 0
        #: Every notification ever emitted, in emission order.
        self.history: list[Notification] = []

    def subscribe(
        self,
        callback: Callable[[Notification], None] | None = None,
        *,
        kinds: type | Iterable[type] | None = None,
        clients: Iterable[ClientId] | None = None,
    ) -> Subscription:
        """Register a listener.

        ``kinds`` restricts delivery to the given notification classes
        (e.g. ``StabilityNotification``); ``clients`` to the given client
        ids.  Without a ``callback`` the subscription simply accumulates
        matching events on ``subscription.events``.
        """
        if kinds is not None and isinstance(kinds, type):
            kinds = (kinds,)
        subscription = Subscription(
            self,
            callback,
            tuple(kinds) if kinds is not None else None,
            frozenset(clients) if clients is not None else None,
        )
        self._subscriptions.append(subscription)
        return subscription

    def _drop(self, subscription: Subscription) -> None:
        if subscription in self._subscriptions:
            self._subscriptions.remove(subscription)

    def _emit(self, event: Notification) -> None:
        self.history.append(event)
        # Iterate over a copy: a callback may unsubscribe (or subscribe).
        for subscription in list(self._subscriptions):
            subscription._deliver(event)

    def emit_stability(
        self, time: float, client: ClientId, cut: tuple[int, ...]
    ) -> None:
        """Record and fan out a ``stable_i(W)`` output action."""
        self._emit(
            StabilityNotification(
                seq=self._next_seq_value(), time=time, client=client, cut=cut
            )
        )

    def emit_failure(self, time: float, client: ClientId, reason: str) -> None:
        """Record and fan out a ``fail_i`` output action."""
        self._emit(
            FailureNotification(
                seq=self._next_seq_value(), time=time, client=client, reason=reason
            )
        )

    def _next_seq_value(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def stability_events(self) -> list[StabilityNotification]:
        """Every ``stable_i(W)`` notification emitted so far, in order."""
        return [e for e in self.history if isinstance(e, StabilityNotification)]

    def failure_events(self) -> list[FailureNotification]:
        """Every ``fail_i`` notification emitted so far, in order."""
        return [e for e in self.history if isinstance(e, FailureNotification)]
