"""Errors raised by the unified storage API.

:class:`OperationFailed` is the application-facing face of a ``fail_i``
notification or client crash: the operation cannot complete because the
client has halted.  :class:`OperationTimeout` specialises it for the case
where nothing failed *yet* but the operation did not complete within the
caller's time budget — under an untrusted provider the two are genuinely
indistinguishable (a crashed server looks exactly like a slow one), so
the timeout error deliberately remains a :class:`SimulationError` too for
callers that treat "simulation did not converge" uniformly.
"""

from __future__ import annotations

from repro.common.errors import ProtocolError, SimulationError


class CapabilityError(ProtocolError):
    """A guarantee was requested that the chosen backend does not provide
    (e.g. stability cuts from the unchecked baseline)."""


class OperationFailed(ProtocolError):
    """The operation did not complete (client failed, crashed, or timed out)."""


class OperationTimeout(OperationFailed, SimulationError):
    """The operation did not complete within the caller's time budget.

    Carries the pending operation's kind and register so the caller knows
    exactly what was in flight when the budget ran out.
    """
