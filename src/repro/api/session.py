"""Per-client sessions: future-based operations over any backend.

A :class:`Session` binds one client of a running system and exposes the
paper's service interface uniformly across protocols:

* ``write()``/``read()`` return :class:`~repro.api.handles.OpHandle`
  futures immediately, so applications can pipeline several operations —
  the handles settle in submission order.  Clients whose protocol layer
  queues internally (FAUST) receive every submission at once; clients
  that require one operation at a time (USTOR, the baselines) are fed
  from a session-side backlog as each operation completes.
* ``write_sync()``/``read_sync()`` are the blocking convenience forms
  (formerly :class:`repro.faust.service.FaustService`).
* ``barrier()`` drives the simulation until every handle issued by this
  session has settled.
* ``wait_for_stability()``/``stability_cut`` surface the fail-aware
  guarantees where the backend provides them (:class:`CapabilityError`
  otherwise).

When the deployment was opened with a batching policy
(``SystemConfig(batching=...)``), submissions are *buffered* and handed
to the protocol layer in batches: a flush happens when the buffer
reaches ``max_batch`` operations, when ``max_delay`` virtual time has
passed since the first buffered operation (a real scheduler timer), on
``flush()``, and before any blocking wait (``result``, ``barrier`` —
unless ``flush_on_barrier`` is off, in which case ``barrier()`` waits
only for already-issued operations).  Batching changes *when* the
bookkeeping happens, never the protocol: each operation still runs the
full per-op SUBMIT/REPLY/COMMIT exchange in submission order.

Sessions accept either the high-level :class:`repro.api.system.System`
or a raw :class:`~repro.workloads.runner.StorageSystem`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.api.errors import CapabilityError, OperationFailed, OperationTimeout
from repro.api.handles import OpHandle, OpResult
from repro.common.errors import ProtocolError
from repro.common.types import Bottom, OpKind, RegisterId, Value, register_name
from repro.obs.registry import COUNT_BUCKETS, get_registry
from repro.obs.tracing import make_trace_id


class Session:
    """Operations of one client, as futures."""

    def __init__(self, system, client_id: int, timeout: float | None = None) -> None:
        self._system = system
        self._client = system.clients[client_id]
        self._client_id = client_id
        if timeout is None:
            timeout = getattr(system, "default_timeout", 1_000.0)
        self._timeout = timeout
        self._inflight: OpHandle | None = None
        self._backlog: deque[tuple[OpKind, RegisterId, Value | None, OpHandle]] = (
            deque()
        )
        #: Handles issued but not yet settled, in submission order.  A
        #: deque: handles settle in submission order, so the overwhelmingly
        #: common settle is an O(1) popleft of the head rather than an
        #: O(outstanding) list removal — pipelined sessions stay linear.
        self._unsettled: deque[OpHandle] = deque()
        #: Auto-flush batching (None = unbatched): buffered submissions
        #: and the pending flush timer, per the system's BatchingPolicy.
        self._batching = getattr(system, "batching", None)
        self._batch_buffer: deque[tuple[OpKind, RegisterId, Value | None, OpHandle]] = (
            deque()
        )
        self._flush_timer = None
        # Observability: registry handles captured once (no-ops when
        # metrics are off) plus the system-wide span log, if any.
        registry = get_registry()
        self._obs_enabled = registry.enabled
        self._obs_issued = registry.counter("session.ops_issued")
        self._obs_settled = registry.counter("session.ops_settled")
        self._obs_flushes = registry.counter("session.flushes")
        self._obs_batch_size = registry.histogram(
            "session.flush_batch_ops", COUNT_BUCKETS
        )
        self._obs_latency = registry.histogram("session.op_latency")
        self._span_log = getattr(system, "span_log", None)
        if hasattr(self._client, "add_failure_listener"):
            self._client.add_failure_listener(self._on_client_failure)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def client(self):
        """The protocol-layer client object this session drives."""
        return self._client

    @property
    def client_id(self) -> int:
        """The bound client's id."""
        return self._client_id

    @property
    def system(self):
        """The deployment this session operates against."""
        return self._system

    @property
    def timeout(self) -> float:
        """Default time budget (virtual time units) for blocking calls."""
        return self._timeout

    @property
    def failed(self) -> bool:
        """Has this client output ``fail`` (at any protocol layer)?"""
        return bool(
            getattr(self._client, "faust_failed", False)
            or getattr(self._client, "failed", False)
        )

    @property
    def outstanding(self) -> int:
        """Operations issued through this session and not yet settled."""
        return len(self._unsettled)

    @property
    def buffered(self) -> int:
        """Operations batched but not yet handed to the protocol layer."""
        return len(self._batch_buffer)

    @property
    def batching(self):
        """The session's :class:`~repro.api.config.BatchingPolicy`
        (``None`` when the deployment runs unbatched)."""
        return self._batching

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #

    def write(self, value: Value) -> OpHandle:
        """Write the client's own register; the handle's result carries
        the operation timestamp ``t``."""
        return self._submit(OpKind.WRITE, self._client_id, value)

    def read(self, register: RegisterId) -> OpHandle:
        """Read any register; the handle's result carries ``(value, t)``."""
        return self._submit(OpKind.READ, register, None)

    def write_sync(self, value: Value, timeout: float | None = None) -> int:
        """Blocking write; returns the timestamp ``t``."""
        return self.write(value).result(timeout).timestamp

    def read_sync(
        self, register: RegisterId, timeout: float | None = None
    ) -> tuple[Value | Bottom, int]:
        """Blocking read; returns ``(value, timestamp)``."""
        result = self.read(register).result(timeout)
        return result.value, result.timestamp

    def flush(self) -> None:
        """Hand every buffered operation to the protocol layer now.

        A no-op on unbatched sessions (nothing ever buffers).  The flush
        preserves submission order; clients that pipeline receive the
        whole batch at once, one-at-a-time clients are fed from the
        session backlog as before.
        """
        self._cancel_flush_timer()
        if self._batch_buffer:
            self._obs_flushes.inc()
            self._obs_batch_size.observe(len(self._batch_buffer))
        while self._batch_buffer:
            kind, register, value, handle = self._batch_buffer.popleft()
            try:
                self._dispatch(kind, register, value, handle)
            except ProtocolError as exc:
                # The client died while the batch was parked; fail this
                # handle and keep draining so nothing waits forever.
                try:
                    self._unsettled.remove(handle)
                except ValueError:
                    pass
                handle._reject(OperationFailed(str(exc)))

    def barrier(self, timeout: float | None = None) -> None:
        """Drive the simulation until every issued handle has settled.

        On a batching session the buffer is flushed first (the barrier is
        the batching policy's ordering point), unless the policy disables
        ``flush_on_barrier`` — then only already-issued operations are
        waited on and buffered ones stay parked.

        Raises the first failure among the operations waited on, or
        :class:`OperationTimeout` if some are still pending after the
        time budget.
        """
        if self._batching is not None and self._batching.flush_on_barrier:
            self.flush()
        waited = self._issued_unsettled()
        self._drive(self._all_issued_settled, timeout, flush=False)
        self._reject_if_dead()
        still_pending = [h for h in waited if not h.done()]
        if still_pending:
            raise OperationTimeout(
                f"barrier: {len(still_pending)} operation(s) still in flight "
                f"after {self._limit(timeout)} time units (a Byzantine server "
                f"may be withholding the REPLY)"
            )
        for handle in waited:
            if handle._exception is not None:
                raise handle._exception

    # ------------------------------------------------------------------ #
    # Fail-aware surface
    # ------------------------------------------------------------------ #

    @property
    def stability_cut(self) -> tuple[int, ...]:
        """The latest ``W`` vector (all zeros before any notification)."""
        return self._tracker().stability_cut()

    def wait_for_stability(self, timestamp: int, timeout: float | None = None) -> bool:
        """Block until the operation with ``timestamp`` is stable w.r.t.
        every client (or failure / timeout).  Returns True on stability."""
        tracker = self._tracker()
        if self._batch_buffer:
            # A blocking wait issues what it waits on: the awaited write
            # may still be parked in the batch buffer.
            self.flush()

        def reached() -> bool:
            return self.failed or tracker.stable_timestamp_for_all() >= timestamp

        self._system.run_until(reached, timeout=self._limit(timeout))
        return not self.failed and tracker.stable_timestamp_for_all() >= timestamp

    def _tracker(self):
        tracker = getattr(self._client, "tracker", None)
        if tracker is None:
            raise CapabilityError(
                f"the {type(self._client).__name__} backend does not provide "
                f"stability notifications"
            )
        return tracker

    # ------------------------------------------------------------------ #
    # Submission plumbing
    # ------------------------------------------------------------------ #

    def _submit(self, kind: OpKind, register: RegisterId, value) -> OpHandle:
        self._raise_if_dead()
        handle = OpHandle(self, kind, register)
        self._obs_issued.inc()
        if self._obs_enabled or self._span_log is not None:
            handle._obs_issued_at = self._system.scheduler.now
        self._unsettled.append(handle)
        policy = self._batching
        if policy is None:
            self._dispatch(kind, register, value, handle)
            return handle
        # Batched: park the operation; flush on size, timer, or barrier.
        self._batch_buffer.append((kind, register, value, handle))
        if len(self._batch_buffer) >= policy.max_batch:
            self.flush()
        elif policy.max_delay is not None and self._flush_timer is None:
            self._flush_timer = self._system.scheduler.schedule(
                policy.max_delay, self._timer_flush
            )
        return handle

    def _dispatch(self, kind: OpKind, register: RegisterId, value, handle) -> None:
        """Hand one operation to the protocol layer (or the backlog)."""
        if getattr(self._client, "pipelines_operations", False):
            # The protocol layer queues internally; hand everything over.
            self._issue(kind, register, value, handle)
        elif self._inflight is None:
            self._inflight = handle
            self._issue(kind, register, value, handle)
        else:
            self._backlog.append((kind, register, value, handle))

    def _issued_unsettled(self) -> list[OpHandle]:
        """Unsettled handles that have been issued (parked ones excluded).

        Shared by this session's :meth:`barrier` and the cluster barrier,
        so the parked-handle exclusion logic lives in exactly one place.
        """
        if not self._batch_buffer:
            return list(self._unsettled)
        parked = {id(entry[3]) for entry in self._batch_buffer}
        return [h for h in self._unsettled if id(h) not in parked]

    def _all_issued_settled(self) -> bool:
        """Every issued handle settled — O(1) when nothing is parked (the
        common case: the barrier just flushed)."""
        if not self._batch_buffer:
            return not self._unsettled
        parked = {id(entry[3]) for entry in self._batch_buffer}
        return all(
            h.done() for h in self._unsettled if id(h) not in parked
        )

    def _timer_flush(self) -> None:
        self._flush_timer = None
        self.flush()

    def _cancel_flush_timer(self) -> None:
        if self._flush_timer is not None:
            self._flush_timer.cancel()
            self._flush_timer = None

    def _issue(self, kind: OpKind, register, value, handle: OpHandle) -> None:
        def completed(outcome, _handle=handle) -> None:
            self._settle(_handle, outcome)

        if kind is OpKind.WRITE:
            self._client.write(value, completed)
        else:
            self._client.read(register, completed)

    def _settle(self, handle: OpHandle, outcome) -> None:
        if self._unsettled and self._unsettled[0] is handle:
            self._unsettled.popleft()  # settle order == submission order
        else:  # pragma: no cover - defensive: out-of-order settle
            try:
                self._unsettled.remove(handle)
            except ValueError:
                pass
        self._obs_settled.inc()
        issued_at = getattr(handle, "_obs_issued_at", None)
        if issued_at is not None:
            now = self._system.scheduler.now
            self._obs_latency.observe(now - issued_at)
            if self._span_log is not None:
                self._span_log.span(
                    f"op:{handle.kind.name.lower()}",
                    ts=issued_at,
                    dur=now - issued_at,
                    trace_id=make_trace_id(self._client_id, outcome.timestamp),
                    proc="client",
                    args={
                        "client": self._client_id,
                        "register": handle.register,
                    },
                )
        handle._resolve(
            OpResult(
                kind=handle.kind,
                register=handle.register,
                value=outcome.value,
                timestamp=outcome.timestamp,
                raw=outcome,
            )
        )
        if self._inflight is handle:
            self._inflight = None
            self._pump_backlog()

    def _pump_backlog(self) -> None:
        while self._inflight is None and self._backlog:
            kind, register, value, handle = self._backlog.popleft()
            self._inflight = handle
            try:
                self._issue(kind, register, value, handle)
            except ProtocolError as exc:
                # The client died between operations; fail this handle and
                # keep draining so nothing waits forever.
                self._inflight = None
                try:
                    self._unsettled.remove(handle)
                except ValueError:
                    pass
                handle._reject(OperationFailed(str(exc)))

    # ------------------------------------------------------------------ #
    # Failure handling
    # ------------------------------------------------------------------ #

    def _on_client_failure(self, reason: str) -> None:
        self._fail_all(OperationFailed(f"{self._client.name} failed: {reason}"))

    def _fail_all(self, exception: OperationFailed) -> None:
        self._inflight = None
        self._backlog.clear()
        self._cancel_flush_timer()
        self._batch_buffer.clear()
        unsettled, self._unsettled = self._unsettled, deque()
        for handle in unsettled:
            handle._reject(exception)

    def _death_reason(self) -> str | None:
        client = self._client
        if getattr(client, "faust_failed", False):
            return f"{client.name} failed: {client.faust_fail_reason}"
        if getattr(client, "failed", False):
            return f"{client.name} failed: {getattr(client, 'fail_reason', None)}"
        if client.crashed:
            return f"{client.name} crashed mid-operation"
        return None

    def _raise_if_dead(self) -> None:
        if getattr(self._client, "faust_failed", False) or getattr(
            self._client, "failed", False
        ):
            raise ProtocolError(f"{self._client.name} has failed and halted")
        if self._client.crashed:
            raise ProtocolError(f"{self._client.name} has crashed")

    def _reject_if_dead(self, handle: OpHandle | None = None) -> None:
        reason = self._death_reason()
        if reason is not None:
            self._fail_all(OperationFailed(reason))

    # ------------------------------------------------------------------ #
    # Driving the shared world
    # ------------------------------------------------------------------ #

    def _limit(self, timeout: float | None) -> float:
        return self._timeout if timeout is None else timeout

    def _drive(
        self,
        predicate: Callable[[], bool],
        timeout: float | None,
        flush: bool = True,
    ) -> None:
        if flush and self._batch_buffer:
            # A blocking wait cannot complete while its operation is still
            # parked in the batch buffer: issue everything first.
            self.flush()
        self._system.run_until(
            lambda: predicate() or self._death_reason() is not None,
            timeout=self._limit(timeout),
        )


def as_session(system, client_id: int, timeout: float | None = None) -> Session:
    """A session for ``client_id``, reusing the system's cache when the
    high-level :class:`repro.api.system.System` is passed."""
    if hasattr(system, "session"):
        return system.session(client_id, timeout=timeout)
    return Session(system, client_id, timeout=timeout)
