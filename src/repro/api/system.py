"""The unified handle on a running storage deployment.

:class:`System` wraps the wired :class:`~repro.workloads.runner.
StorageSystem` with the backend-agnostic surface: per-client
:class:`~repro.api.session.Session` objects, the
:class:`~repro.api.events.NotificationHub` delivering stability cuts and
failure notifications as typed events, and the backend's declared
:class:`~repro.api.backends.Capabilities`.

Everything the raw deployment exposes (``clients``, ``scheduler``,
``offline``, ``trace``, ``history()``, ``run*`` ...) remains reachable by
delegation, so protocol-level experiments keep full access while
applications stay on the facade.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.api.errors import CapabilityError
from repro.api.events import NotificationHub
from repro.api.session import Session
from repro.common.types import ClientId

if TYPE_CHECKING:  # avoid a cycle: workloads.scenarios builds through us
    from repro.workloads.runner import StorageSystem


class System:
    """A running deployment opened through a :class:`Backend`."""

    def __init__(
        self,
        raw: StorageSystem,
        backend_name: str,
        capabilities,
        default_timeout: float = 1_000.0,
    ) -> None:
        self._raw = raw
        self.backend_name = backend_name
        self.capabilities = capabilities
        self.default_timeout = default_timeout
        self.notifications = NotificationHub()
        self._sessions: dict[ClientId, Session] = {}
        self._wire_notifications()

    def _wire_notifications(self) -> None:
        hub = self.notifications
        scheduler = self._raw.scheduler
        for client in self._raw.clients:
            if hasattr(client, "add_stable_listener"):
                client.add_stable_listener(
                    lambda cut, _c=client: hub.emit_stability(
                        scheduler.now, _c.client_id, cut
                    )
                )
            if hasattr(client, "add_failure_listener"):
                client.add_failure_listener(
                    lambda reason, _c=client: hub.emit_failure(
                        scheduler.now, _c.client_id, reason
                    )
                )

    # ------------------------------------------------------------------ #
    # Sessions
    # ------------------------------------------------------------------ #

    def session(self, client_id: ClientId, timeout: float | None = None) -> Session:
        """The session bound to ``client_id`` (cached per client unless an
        explicit ``timeout`` asks for a dedicated one)."""
        if timeout is not None:
            return Session(self, client_id, timeout=timeout)
        if client_id not in self._sessions:
            self._sessions[client_id] = Session(self, client_id)
        return self._sessions[client_id]

    def sessions(self) -> list[Session]:
        """One session per client, in client order."""
        return [self.session(i) for i in range(len(self._raw.clients))]

    # ------------------------------------------------------------------ #
    # Guarantees
    # ------------------------------------------------------------------ #

    def require(self, capability: str) -> None:
        """Assert the backend provides ``capability`` (an attribute of its
        :class:`Capabilities`); raises :class:`CapabilityError` if not."""
        if not getattr(self.capabilities, capability):
            raise CapabilityError(
                f"backend {self.backend_name!r} does not provide {capability}"
            )

    # ------------------------------------------------------------------ #
    # The simulated world (delegation)
    # ------------------------------------------------------------------ #

    @property
    def raw(self) -> StorageSystem:
        """The underlying wired deployment."""
        return self._raw

    def profile(self) -> dict:
        """Machine-readable performance profile of the running deployment
        (:func:`repro.perf.system_profile`), tagged with the backend name."""
        from repro.perf.profile import system_profile

        return system_profile(self)

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Advance the simulation; returns the number of events fired."""
        return self._raw.run(until=until, max_events=max_events)

    def run_until(
        self, predicate: Callable[[], bool], timeout: float | None = None
    ) -> bool:
        """Run until ``predicate()`` holds; returns whether it ever did."""
        return self._raw.run_until(predicate, timeout=timeout)

    @property
    def now(self) -> float:
        """Current virtual time of the deployment."""
        return self._raw.now

    def __getattr__(self, name: str):
        # Everything else (clients, scheduler, offline, trace, server,
        # recorder, keystore, history, crash_client_at, ...) passes through.
        return getattr(self._raw, name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<System backend={self.backend_name} "
            f"clients={len(self._raw.clients)} t={self._raw.now:.1f}>"
        )
