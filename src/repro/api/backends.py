"""Interchangeable protocol backends behind one ``open_system`` contract.

The paper's point is a *single* storage abstraction whose guarantees vary
with the protocol underneath; the :class:`Backend` protocol makes that a
first-class axis.  Experiments and workloads pick guarantees by picking a
backend:

========== ============================ ===========================================
backend     protocol                     guarantees
========== ============================ ===========================================
faust       USTOR + fail-aware layer     linearizable w/ correct server, weakly
                                         fork-linearizable always, fail-aware
                                         (stability + failure notifications)
ustor       USTOR alone                  weakly fork-linearizable, wait-free,
                                         local ``fail_i`` detection only
lockstep    SUNDR-style lock-step        fork-linearizable but blocking (not
                                         wait-free)
unchecked   plain remote store           none — the detection-gap baseline
cluster     N sharded USTOR/FAUST        per-shard guarantees of the shard
            servers                      protocol; forking shards detected by
                                         exactly the clients that touched them
========== ============================ ===========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.api.config import SystemConfig
from repro.api.system import System
from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class Capabilities:
    """What a backend's deployments can be asked for."""

    #: Operations return per-client timestamps with Definition 5 Integrity.
    timestamps: bool
    #: ``stable_i(W)`` notifications / ``wait_for_stability`` available.
    stability: bool
    #: Server misbehaviour produces failure notifications.
    failure_detection: bool
    #: Operations complete under a correct server despite other clients
    #: crashing.
    wait_free: bool


@runtime_checkable
class Backend(Protocol):
    """A protocol stack that can open a :class:`System` from a config."""

    name: str
    capabilities: Capabilities

    def open_system(self, config: SystemConfig) -> System:
        """Build and wire a deployment described by ``config``."""
        ...


def _schedule_outages(raw, config: SystemConfig) -> None:
    # Sorted, so that when one window ends exactly where the next begins,
    # the restart event is enqueued (and fires) before the next crash —
    # event ties at the same virtual time break by scheduling order.
    for start, duration in sorted(config.server_outages):
        raw.server_outage(start, duration)


def _reject_storage_knobs(config: SystemConfig, backend: str) -> None:
    """The baseline servers model no durability: fail loudly rather than
    silently ignoring storage/restart knobs."""
    if config.storage != "memory" or config.server_outages:
        raise ConfigurationError(
            f"the {backend!r} backend has no storage engine: storage= and "
            f"server_outages= are only supported on 'faust' and 'ustor'"
        )


def _reject_batching_knobs(config: SystemConfig, backend: str) -> None:
    """The baselines speak their own wire protocols and know nothing of
    the throughput pipeline: fail loudly rather than silently running
    them unbatched."""
    if config.batching is not None:
        raise ConfigurationError(
            f"the {backend!r} backend does not support batching=; the "
            f"throughput pipeline runs on 'faust', 'ustor' and 'cluster'"
        )


def _reject_tcp_transport(config: SystemConfig, backend: str) -> None:
    """Only the bare-USTOR stack speaks the real wire format today: the
    fail-aware layer's clock synchronization and the baselines' bespoke
    message types have no TCP codecs, so fail loudly rather than open a
    deployment that could never exchange a frame."""
    if config.transport != "sim":
        raise ConfigurationError(
            f"the {backend!r} backend is simulator-only; transport='tcp' "
            f"runs on the 'ustor' backend"
        )


def _reject_checkpoint_knobs(config: SystemConfig, backend: str) -> None:
    """Checkpoint co-signing lives in the fail-aware layer (it rides on
    stability cuts and the offline channel): fail loudly rather than
    silently running with unbounded state."""
    if config.checkpoint is not None:
        raise ConfigurationError(
            f"the {backend!r} backend has no fail-aware layer to co-sign "
            f"checkpoints: checkpoint= is only supported on 'faust' and "
            f"'cluster'/replicas with shard_protocol='faust'"
        )
    if config.membership is not None:
        raise ConfigurationError(
            f"the {backend!r} backend has no fail-aware layer to co-sign "
            f"membership epochs: membership= is only supported on 'faust' "
            f"and 'cluster'/replicas with shard_protocol='faust'"
        )


def _reject_cluster_knobs(config: SystemConfig, backend: str) -> None:
    """Single-server backends run one shard only: fail loudly rather than
    silently collapsing a sharded config onto one server."""
    if config.uses_cluster_knobs():
        raise ConfigurationError(
            f"the {backend!r} backend is single-server: shards=, shard_map=, "
            f"shard_protocol=, shard_server_factories= and shard_outages= "
            f"are only supported on the 'cluster' backend"
        )


def _reject_replica_knobs(config: SystemConfig, backend: str) -> None:
    """Replica groups live behind the cluster backend (or a TCP client
    with one endpoint per replica): fail loudly rather than silently
    running a single unreplicated server."""
    if config.uses_replica_knobs():
        raise ConfigurationError(
            f"the {backend!r} backend is single-server: replicas=, quorum=, "
            f"counter= and replica_server_factories= are only supported on "
            f"the 'cluster' backend (or transport='tcp' client-side)"
        )


class FaustBackend:
    """USTOR plus the fail-aware layer (Section 6) — the paper's service."""

    name = "faust"
    capabilities = Capabilities(
        timestamps=True, stability=True, failure_detection=True, wait_free=True
    )

    def open_system(self, config: SystemConfig) -> System:
        """Open a FAUST deployment (single server, fail-aware clients)."""
        from repro.workloads.runner import SystemBuilder

        _reject_tcp_transport(config, self.name)
        _reject_cluster_knobs(config, self.name)
        _reject_replica_knobs(config, self.name)
        raw = SystemBuilder(
            num_clients=config.num_clients,
            seed=config.seed,
            scheme=config.scheme,
            latency=config.latency,
            offline_latency=config.offline_latency,
            server_factory=config.server_factory,
            commit_piggyback=config.commit_piggyback,
            storage=config.storage,
            batching=config.batching,
        ).build_faust(
            checkpoint=config.checkpoint,
            membership=config.membership,
            **config.faust.as_kwargs(),
        )
        _schedule_outages(raw, config)
        return System(raw, self.name, self.capabilities, config.default_timeout)


class UstorBackend:
    """The weak fork-linearizable protocol alone (Algorithms 1-2)."""

    name = "ustor"
    capabilities = Capabilities(
        timestamps=True, stability=False, failure_detection=True, wait_free=True
    )

    def open_system(self, config: SystemConfig) -> System:
        """Open a bare-USTOR deployment (no fail-aware layer).

        With ``transport="tcp"`` the deployment's clients speak real
        sockets to an already-running ``repro serve`` process; the config
        validation has rejected every server-side knob, so this is purely
        the client half of the system.
        """
        if config.transport == "tcp":
            return self._open_tcp(config)
        from repro.workloads.runner import SystemBuilder

        _reject_cluster_knobs(config, self.name)
        _reject_replica_knobs(config, self.name)
        _reject_checkpoint_knobs(config, self.name)
        raw = SystemBuilder(
            num_clients=config.num_clients,
            seed=config.seed,
            scheme=config.scheme,
            latency=config.latency,
            offline_latency=config.offline_latency,
            server_factory=config.server_factory,
            commit_piggyback=config.commit_piggyback,
            storage=config.storage,
            batching=config.batching,
        ).build()
        _schedule_outages(raw, config)
        return System(raw, self.name, self.capabilities, config.default_timeout)

    def _open_tcp(self, config: SystemConfig) -> System:
        from repro.net.client import open_tcp_system

        raw = open_tcp_system(
            config.num_clients,
            config.endpoints,
            server_name=config.server_name,
            seed=config.seed,
            scheme=config.scheme,
            default_timeout=config.default_timeout,
            commit_piggyback=config.commit_piggyback,
            trace_path=config.trace_path,
            trace_ids=config.trace_ids,
            span_log=config.span_log,
            replicas=config.replicas,
            quorum=config.quorum,
            counter=config.counter is not None,
        )
        return System(raw, self.name, self.capabilities, config.default_timeout)


class LockstepBackend:
    """The SUNDR-style lock-step baseline: fork-linearizable, blocking."""

    name = "lockstep"
    capabilities = Capabilities(
        timestamps=True, stability=False, failure_detection=True, wait_free=False
    )

    def open_system(self, config: SystemConfig) -> System:
        """Open a lock-step baseline deployment (blocking protocol)."""
        from repro.baselines.lockstep import build_lockstep_system

        _reject_tcp_transport(config, self.name)
        _reject_cluster_knobs(config, self.name)
        _reject_replica_knobs(config, self.name)
        _reject_storage_knobs(config, self.name)
        _reject_batching_knobs(config, self.name)
        _reject_checkpoint_knobs(config, self.name)
        raw = build_lockstep_system(
            config.num_clients,
            seed=config.seed,
            scheme=config.scheme,
            latency=config.latency,
            server_factory=config.server_factory,
        )
        return System(raw, self.name, self.capabilities, config.default_timeout)


class UncheckedBackend:
    """The naive baseline: trusts every byte; nothing is ever detected."""

    name = "unchecked"
    capabilities = Capabilities(
        timestamps=True, stability=False, failure_detection=False, wait_free=True
    )

    def open_system(self, config: SystemConfig) -> System:
        """Open an unchecked baseline deployment (no verification)."""
        from repro.baselines.unchecked import build_unchecked_system

        _reject_tcp_transport(config, self.name)
        _reject_cluster_knobs(config, self.name)
        _reject_replica_knobs(config, self.name)
        _reject_storage_knobs(config, self.name)
        _reject_batching_knobs(config, self.name)
        _reject_checkpoint_knobs(config, self.name)
        raw = build_unchecked_system(
            config.num_clients,
            seed=config.seed,
            latency=config.latency,
            server_factory=config.server_factory,
        )
        return System(raw, self.name, self.capabilities, config.default_timeout)


class ClusterBackend:
    """N sharded single-server deployments behind one session facade.

    Every shard runs the protocol ``config.shard_protocol`` selects
    (``faust`` by default), so the cluster's capabilities are the shard
    protocol's — declared per deployment rather than on the class, since
    ``stability`` exists only with fail-aware shards.
    """

    name = "cluster"
    #: Capabilities of the default (fail-aware) shard protocol; the opened
    #: system carries the exact capabilities of its configuration.
    capabilities = Capabilities(
        timestamps=True, stability=True, failure_detection=True, wait_free=True
    )

    def open_system(self, config: SystemConfig):
        """Open a sharded deployment (one sub-deployment per shard)."""
        from repro.cluster.backend import open_cluster_system

        _reject_tcp_transport(config, self.name)
        return open_cluster_system(
            config, self.name, self._capabilities_for(config)
        )

    @staticmethod
    def _capabilities_for(config: SystemConfig) -> Capabilities:
        return Capabilities(
            timestamps=True,
            stability=config.shard_protocol == "faust",
            failure_detection=True,
            wait_free=True,
        )


#: The built-in backends, by name.
BACKENDS: dict[str, Backend] = {
    backend.name: backend
    for backend in (
        FaustBackend(),
        UstorBackend(),
        LockstepBackend(),
        UncheckedBackend(),
        ClusterBackend(),
    )
}


def get_backend(backend: str | Backend) -> Backend:
    """Resolve a backend name (or pass an instance through)."""
    if isinstance(backend, str):
        try:
            return BACKENDS[backend]
        except KeyError:
            raise ConfigurationError(
                f"unknown backend {backend!r}; choose from {sorted(BACKENDS)}"
            ) from None
    return backend


def open_system(config: SystemConfig, backend: str | Backend = "faust") -> System:
    """Open a deployment described by ``config`` on the chosen backend."""
    system = get_backend(backend).open_system(config)
    if config.span_log is not None:
        # Sessions read the span log off the facade when constructed, so
        # it must be attached before the first session() call.
        system.span_log = config.span_log
    return system
