"""Interchangeable protocol backends behind one ``open_system`` contract.

The paper's point is a *single* storage abstraction whose guarantees vary
with the protocol underneath; the :class:`Backend` protocol makes that a
first-class axis.  Experiments and workloads pick guarantees by picking a
backend:

========== ============================ ===========================================
backend     protocol                     guarantees
========== ============================ ===========================================
faust       USTOR + fail-aware layer     linearizable w/ correct server, weakly
                                         fork-linearizable always, fail-aware
                                         (stability + failure notifications)
ustor       USTOR alone                  weakly fork-linearizable, wait-free,
                                         local ``fail_i`` detection only
lockstep    SUNDR-style lock-step        fork-linearizable but blocking (not
                                         wait-free)
unchecked   plain remote store           none — the detection-gap baseline
========== ============================ ===========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.api.config import SystemConfig
from repro.api.system import System
from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class Capabilities:
    """What a backend's deployments can be asked for."""

    #: Operations return per-client timestamps with Definition 5 Integrity.
    timestamps: bool
    #: ``stable_i(W)`` notifications / ``wait_for_stability`` available.
    stability: bool
    #: Server misbehaviour produces failure notifications.
    failure_detection: bool
    #: Operations complete under a correct server despite other clients
    #: crashing.
    wait_free: bool


@runtime_checkable
class Backend(Protocol):
    """A protocol stack that can open a :class:`System` from a config."""

    name: str
    capabilities: Capabilities

    def open_system(self, config: SystemConfig) -> System: ...


class FaustBackend:
    """USTOR plus the fail-aware layer (Section 6) — the paper's service."""

    name = "faust"
    capabilities = Capabilities(
        timestamps=True, stability=True, failure_detection=True, wait_free=True
    )

    def open_system(self, config: SystemConfig) -> System:
        from repro.workloads.runner import SystemBuilder

        raw = SystemBuilder(
            num_clients=config.num_clients,
            seed=config.seed,
            scheme=config.scheme,
            latency=config.latency,
            offline_latency=config.offline_latency,
            server_factory=config.server_factory,
            commit_piggyback=config.commit_piggyback,
        ).build_faust(**config.faust.as_kwargs())
        return System(raw, self.name, self.capabilities, config.default_timeout)


class UstorBackend:
    """The weak fork-linearizable protocol alone (Algorithms 1-2)."""

    name = "ustor"
    capabilities = Capabilities(
        timestamps=True, stability=False, failure_detection=True, wait_free=True
    )

    def open_system(self, config: SystemConfig) -> System:
        from repro.workloads.runner import SystemBuilder

        raw = SystemBuilder(
            num_clients=config.num_clients,
            seed=config.seed,
            scheme=config.scheme,
            latency=config.latency,
            offline_latency=config.offline_latency,
            server_factory=config.server_factory,
            commit_piggyback=config.commit_piggyback,
        ).build()
        return System(raw, self.name, self.capabilities, config.default_timeout)


class LockstepBackend:
    """The SUNDR-style lock-step baseline: fork-linearizable, blocking."""

    name = "lockstep"
    capabilities = Capabilities(
        timestamps=True, stability=False, failure_detection=True, wait_free=False
    )

    def open_system(self, config: SystemConfig) -> System:
        from repro.baselines.lockstep import build_lockstep_system

        raw = build_lockstep_system(
            config.num_clients,
            seed=config.seed,
            scheme=config.scheme,
            latency=config.latency,
            server_factory=config.server_factory,
        )
        return System(raw, self.name, self.capabilities, config.default_timeout)


class UncheckedBackend:
    """The naive baseline: trusts every byte; nothing is ever detected."""

    name = "unchecked"
    capabilities = Capabilities(
        timestamps=True, stability=False, failure_detection=False, wait_free=True
    )

    def open_system(self, config: SystemConfig) -> System:
        from repro.baselines.unchecked import build_unchecked_system

        raw = build_unchecked_system(
            config.num_clients,
            seed=config.seed,
            latency=config.latency,
            server_factory=config.server_factory,
        )
        return System(raw, self.name, self.capabilities, config.default_timeout)


#: The built-in backends, by name.
BACKENDS: dict[str, Backend] = {
    backend.name: backend
    for backend in (FaustBackend(), UstorBackend(), LockstepBackend(), UncheckedBackend())
}


def get_backend(backend: str | Backend) -> Backend:
    """Resolve a backend name (or pass an instance through)."""
    if isinstance(backend, str):
        try:
            return BACKENDS[backend]
        except KeyError:
            raise ConfigurationError(
                f"unknown backend {backend!r}; choose from {sorted(BACKENDS)}"
            ) from None
    return backend


def open_system(config: SystemConfig, backend: str | Backend = "faust") -> System:
    """Open a deployment described by ``config`` on the chosen backend."""
    return get_backend(backend).open_system(config)
