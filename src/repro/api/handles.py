"""Future-style handles for storage operations.

Protocol clients complete operations through callbacks; the unified API
wraps each submission in an :class:`OpHandle` that can be polled
(``done()``), waited on (``result(timeout)`` drives the shared simulation
until the operation settles), or chained (``add_done_callback``).

Inside the discrete-event simulation "waiting" means advancing the whole
world, so ``result()`` on one handle may complete other clients' timers,
probes and operations too — exactly as in :class:`FaustService` before.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.api.errors import OperationFailed, OperationTimeout
from repro.common.types import (
    Bottom,
    OpKind,
    RegisterId,
    Value,
    client_name,
    register_name,
)


@dataclass(frozen=True)
class OpResult:
    """Backend-normalised outcome of one completed operation.

    ``timestamp`` is the issuing client's operation timestamp ``t``
    (Definition 5, Integrity: monotone per client); ``raw`` carries the
    backend-specific outcome (``OpOutcome``, ``LsOutcome``, ...) for
    callers that need protocol detail such as versions.
    """

    kind: OpKind
    register: RegisterId
    value: Value | Bottom | None
    timestamp: int
    raw: Any


class OpHandle:
    """A pending (or completed) storage operation."""

    def __init__(self, session, kind: OpKind, register: RegisterId) -> None:
        self._session = session
        self.kind = kind
        self.register = register
        self._result: OpResult | None = None
        self._exception: BaseException | None = None
        self._settled = False
        self._done_callbacks: list[Callable[["OpHandle"], None]] = []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (
            "pending"
            if not self._settled
            else ("failed" if self._exception is not None else "done")
        )
        return (
            f"<OpHandle {self.kind} {register_name(self.register)} "
            f"by {client_name(self._session.client_id)}: {state}>"
        )

    # -- settling (called by the session) ------------------------------- #

    def _resolve(self, result: OpResult) -> None:
        if self._settled:
            return
        self._result = result
        self._settled = True
        self._fire_callbacks()

    def _reject(self, exception: BaseException) -> None:
        if self._settled:
            return
        self._exception = exception
        self._settled = True
        self._fire_callbacks()

    def _fire_callbacks(self) -> None:
        callbacks, self._done_callbacks = self._done_callbacks, []
        for callback in callbacks:
            callback(self)

    # -- the future interface ------------------------------------------- #

    def done(self) -> bool:
        """Has the operation settled (completed or failed)?"""
        return self._settled

    def add_done_callback(self, callback: Callable[["OpHandle"], None]) -> None:
        """Invoke ``callback(handle)`` once settled (immediately if already)."""
        if self._settled:
            callback(self)
        else:
            self._done_callbacks.append(callback)

    def wait(self, timeout: float | None = None) -> bool:
        """Drive the simulation until the handle settles; True on settled."""
        self._session._drive(lambda: self._settled, timeout)
        if not self._settled:
            # The client may have died without a failure listener firing.
            self._session._reject_if_dead(self)
        return self._settled

    def result(self, timeout: float | None = None) -> OpResult:
        """The operation's outcome, driving the simulation as needed.

        Raises :class:`OperationFailed` if the client failed or crashed,
        and :class:`OperationTimeout` if the operation is still pending
        after ``timeout`` (default: the session's timeout) time units.
        """
        if not self.wait(timeout):
            raise self._timeout_error(timeout)
        if self._exception is not None:
            raise self._exception
        assert self._result is not None
        return self._result

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """The failure the operation settled with, or None on success."""
        if not self.wait(timeout):
            raise self._timeout_error(timeout)
        return self._exception

    def _timeout_error(self, timeout: float | None) -> OperationTimeout:
        limit = self._session._limit(timeout)
        return OperationTimeout(
            f"{str(self.kind).lower()} of {register_name(self.register)} by "
            f"{client_name(self._session.client_id)} did not complete within "
            f"{limit} time units (a Byzantine server may be withholding the "
            f"REPLY)"
        )
