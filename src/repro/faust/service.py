"""A blocking convenience facade over one FAUST client.

Protocol clients are event-driven (operations return through callbacks);
examples and interactive exploration are nicer with a synchronous API.
:class:`FaustService` wraps one client of a :class:`StorageSystem` and
drives the shared scheduler until each operation completes.

Note that driving the scheduler advances *the whole world* — other
clients' timers, probes and dummy reads included — which is exactly what
"waiting" means inside a simulation.
"""

from __future__ import annotations

from repro.common.errors import ProtocolError, SimulationError
from repro.common.types import Bottom, RegisterId, Value
from repro.ustor.client import OpOutcome
from repro.workloads.runner import StorageSystem


class OperationFailed(ProtocolError):
    """The operation did not complete (client failed, crashed, or timed out)."""


class FaustService:
    """Synchronous read/write against one FAUST client."""

    def __init__(
        self, system: StorageSystem, client_id: int, timeout: float = 1_000.0
    ) -> None:
        self._system = system
        self._client = system.clients[client_id]
        self._timeout = timeout

    @property
    def client(self):
        return self._client

    def write(self, value: Value) -> int:
        """Write to the client's own register; returns the timestamp ``t``."""
        outcome = self._execute("write", value)
        return outcome.timestamp

    def read(self, register: RegisterId) -> tuple[Value | Bottom, int]:
        """Read any register; returns ``(value, timestamp)``."""
        outcome = self._execute("read", register)
        return outcome.value, outcome.timestamp

    def _execute(self, op: str, argument) -> OpOutcome:
        box: list[OpOutcome] = []
        getattr(self._client, op)(argument, box.append)
        finished = self._system.run_until(
            lambda: bool(box) or self._client.faust_failed or self._client.crashed,
            timeout=self._timeout,
        )
        if box:
            return box[0]
        if self._client.faust_failed:
            raise OperationFailed(
                f"{self._client.name} failed: {self._client.faust_fail_reason}"
            )
        if self._client.crashed:
            raise OperationFailed(f"{self._client.name} crashed mid-operation")
        if not finished:
            raise SimulationError(
                f"operation did not complete within {self._timeout} time units "
                f"(a Byzantine server may be withholding the REPLY)"
            )
        raise SimulationError("scheduler drained without completing the operation")

    # ------------------------------------------------------------------ #
    # Fail-aware notifications
    # ------------------------------------------------------------------ #

    @property
    def stability_cut(self) -> tuple[int, ...]:
        """The latest ``W`` vector (all zeros before any notification)."""
        return self._client.tracker.stability_cut()

    @property
    def failed(self) -> bool:
        return self._client.faust_failed

    def wait_for_stability(self, timestamp: int, timeout: float | None = None) -> bool:
        """Block until the operation with ``timestamp`` is stable w.r.t.
        every client (or failure / timeout).  Returns True on stability."""
        limit = self._timeout if timeout is None else timeout

        def reached() -> bool:
            return (
                self._client.faust_failed
                or self._client.tracker.stable_timestamp_for_all() >= timestamp
            )

        self._system.run_until(reached, timeout=limit)
        return (
            not self._client.faust_failed
            and self._client.tracker.stable_timestamp_for_all() >= timestamp
        )
