"""Deprecated blocking facade — use :mod:`repro.api` instead.

:class:`FaustService` predates the unified API; it survives as a thin
shim over :class:`repro.api.session.Session` so existing code keeps
working.  New code should open systems through a backend and use
sessions::

    from repro.api import FaustBackend, SystemConfig

    system = FaustBackend().open_system(SystemConfig(num_clients=3))
    alice = system.session(0)
    t = alice.write_sync(b"hello")

The session subsumes everything the service did: ``write_sync`` /
``read_sync`` are the blocking operations (dispatched by direct method
call, not string lookup), waits that exhaust their budget raise
:class:`~repro.api.errors.OperationTimeout` naming the pending
operation's kind and register, and stability is exposed via
``wait_for_stability`` / ``stability_cut``.
"""

from __future__ import annotations

import warnings

from repro.api.errors import OperationFailed, OperationTimeout  # noqa: F401
from repro.api.session import Session
from repro.common.types import Bottom, RegisterId, Value


class FaustService:
    """Synchronous read/write against one FAUST client (deprecated)."""

    def __init__(self, system, client_id: int, timeout: float = 1_000.0) -> None:
        warnings.warn(
            "FaustService is deprecated; open a system through repro.api and "
            "use system.session(client_id) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self._session = Session(system, client_id, timeout=timeout)

    @property
    def client(self):
        return self._session.client

    @property
    def session(self) -> Session:
        """The session this shim forwards to."""
        return self._session

    def write(self, value: Value) -> int:
        """Write to the client's own register; returns the timestamp ``t``."""
        return self._session.write_sync(value)

    def read(self, register: RegisterId) -> tuple[Value | Bottom, int]:
        """Read any register; returns ``(value, timestamp)``."""
        return self._session.read_sync(register)

    # ------------------------------------------------------------------ #
    # Fail-aware notifications
    # ------------------------------------------------------------------ #

    @property
    def stability_cut(self) -> tuple[int, ...]:
        """The latest ``W`` vector (all zeros before any notification)."""
        return self._session.stability_cut

    @property
    def failed(self) -> bool:
        return self._session.client.faust_failed

    def wait_for_stability(self, timestamp: int, timeout: float | None = None) -> bool:
        """Block until the operation with ``timestamp`` is stable w.r.t.
        every client (or failure / timeout).  Returns True on stability."""
        return self._session.wait_for_stability(timestamp, timeout=timeout)
