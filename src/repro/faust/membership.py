"""Lease-based membership epochs: checkpointing that survives dead clients.

The checkpoint protocol (:mod:`repro.faust.checkpoint`) needs a share
from *every* client to install a cut — one crashed-forever client stalls
the chain and the system silently degrades to the unbounded growth it was
built to avoid.  This module layers a membership story under it, modeled
on SAFIUS's accountable-filesystem leases:

* Every client holds a renewable **lease**, renewed implicitly by the
  checkpoint shares it sends (piggybacked — no extra lease traffic on a
  healthy run, so membership-on runs are message-identical to
  membership-off runs until a fault occurs).
* A periodic membership check watches who is **blocking** the pending
  checkpoint: members missing from the pending share bucket, a proposer
  withholding an overdue proposal, or members whose version rows have
  gone stale while the remaining rows carry a full interval of unfolded
  stability.  A member accumulates one *strike* per check it blocks;
  after ``lease_checkpoints`` strikes the lease has **lapsed**, after
  ``evict_after`` further strikes the survivors co-sign an **epoch
  change**.
* An epoch is a hash-chained record ``H("EPOCH", epoch, members,
  parent)``.  Installing one needs a signature from *every* member of
  the new set and (for evictions) a strict majority of the parent's
  members — so two disjoint survivor cliques can never both install a
  successor.  After the change, stability and checkpoint quorums are
  computed over the new member set: the chain resumes without the dead
  client, while cuts keep their full ``n``-wide shape (the server's
  defensive truncation is unchanged).
* An evicted client that returns **rejoins** through a fresh epoch: any
  member it contacts answers with the full epoch chain plus the last
  installed checkpoint (its re-seeded history base) and sponsors an
  add-epoch.  A returnee whose state *genuinely* conflicts with the
  chain — a share for an archived sequence with a different cut, or an
  announce that contradicts its own epoch record — is forking evidence
  and fails the run; a merely *stale* returnee is re-admitted, never
  falsely failed.

Safety is untouched by construction: epoch records never enter the
checkpoint digest, cuts stay full-width, and a fault-free run sends no
membership messages and draws no randomness (the membership timer runs
jitter-free), so membership-on runs are bit-identical to membership-off
runs until a client actually misbehaves or dies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.common.errors import ConfigurationError
from repro.common.types import ClientId
from repro.crypto.hashing import hash_values
from repro.crypto.keystore import ClientSigner
from repro.faust.messages import EpochAnnounceMessage, EpochShareMessage
from repro.faust.stability import StabilityTracker

if TYPE_CHECKING:  # pragma: no cover - typing only (import cycle)
    from repro.faust.checkpoint import CheckpointManager

#: Domain-separation label for epoch digests and co-signatures.
EPOCH_LABEL = "EPOCH"


@dataclass(frozen=True)
class MembershipPolicy:
    """Knobs of the lease layer (``SystemConfig(membership=...)``).

    ``lease_checkpoints`` is how many consecutive membership checks a
    member may block the pending checkpoint before its lease counts as
    *lapsed*; ``evict_after`` is the additional grace (in checks) between
    lapse and the eviction proposal, so a slow-but-live client has
    ``lease_checkpoints + evict_after`` check periods to produce a share
    before anyone signs it out.  ``rejoin`` lets evicted clients return
    through an add-epoch; ``check_period`` is the virtual-time cadence of
    the membership check (jitter-free, so it draws no randomness).
    """

    lease_checkpoints: int = 2
    evict_after: int = 3
    rejoin: bool = True
    check_period: float = 20.0

    def __post_init__(self) -> None:
        if self.lease_checkpoints < 1:
            raise ConfigurationError(
                f"lease_checkpoints must be at least 1, "
                f"got {self.lease_checkpoints}"
            )
        if self.evict_after < 1:
            raise ConfigurationError(
                f"evict_after must be at least 1, got {self.evict_after}"
            )
        if self.check_period <= 0:
            raise ConfigurationError(
                f"check_period must be positive, got {self.check_period}"
            )


@dataclass(frozen=True)
class Epoch:
    """One link of the membership hash chain."""

    epoch: int
    members: tuple[ClientId, ...]
    parent_digest: bytes
    digest: bytes

    @classmethod
    def genesis(cls, num_clients: int) -> "Epoch":
        """Epoch 0: every client a member, the root of the chain."""
        members = tuple(range(num_clients))
        return cls(
            epoch=0,
            members=members,
            parent_digest=b"",
            digest=epoch_digest(0, members, b""),
        )


def epoch_digest(
    epoch: int, members: tuple[ClientId, ...], parent_digest: bytes
) -> bytes:
    """The digest binding an epoch record to its whole ancestry."""
    return hash_values(EPOCH_LABEL, epoch, members, parent_digest)


class MembershipManager:
    """One client's view of the lease/epoch protocol.

    Owned by a :class:`~repro.faust.client.FaustClient`, which drives it
    with periodic checks (:meth:`on_tick`), received epoch traffic
    (:meth:`on_share` / :meth:`on_announce`) and contact notes, and
    provides the I/O callbacks:

    * ``send_share(share)`` — broadcast an epoch share to *every* client
      (evicted ones included: they track the chain too),
    * ``send_announce(peer, announce)`` — answer a returnee with the
      epoch chain and the last installed checkpoint,
    * ``request_rejoin(peer)`` — as an evictee, make contact with a live
      member (any offline message works; the client sends a VERSION),
    * ``on_epoch(epoch)`` — a newly installed epoch to act on,
    * ``on_fail(reason)`` — genuine forking evidence (divergent epoch
      records or forged signatures), raise ``fail``.

    The manager must be bound to its client's checkpoint manager
    (:meth:`bind`) before the first check: leases are judged against the
    pending checkpoint's share bucket.
    """

    def __init__(
        self,
        client_id: ClientId,
        num_clients: int,
        signer: ClientSigner,
        policy: MembershipPolicy,
        *,
        tracker: StabilityTracker,
        delta: float,
        send_share: Callable[[EpochShareMessage], None],
        send_announce: Callable[[ClientId, EpochAnnounceMessage], None],
        request_rejoin: Callable[[ClientId], None] | None = None,
        on_epoch: Callable[[Epoch], None] | None = None,
        on_fail: Callable[[str], None] | None = None,
    ) -> None:
        self._id = client_id
        self._n = num_clients
        self._signer = signer
        self.policy = policy
        self._tracker = tracker
        self._delta = delta
        self._send_share = send_share
        self._send_announce = send_announce
        self._request_rejoin = request_rejoin
        self._on_epoch = on_epoch
        self._on_fail = on_fail
        self.epoch = Epoch.genesis(num_clients)
        #: The full chain from genesis, indexed by epoch number.
        self.chain: list[Epoch] = [self.epoch]
        self._checkpoints: "CheckpointManager | None" = None
        #: Consecutive membership checks each member has spent blocking
        #: the pending checkpoint; any share from it resets the count.
        self.strikes: dict[ClientId, int] = {j: 0 for j in range(num_clients)}
        #: Highest checkpoint seq each client contributed a share for
        #: (the piggybacked lease renewals), for introspection/tests.
        self.last_share_seq: dict[ClientId, int] = {
            j: 0 for j in range(num_clients)
        }
        #: Candidate epochs by content — identical proposals from
        #: different sponsors merge their signatures here.
        self._candidates: dict[
            tuple[int, tuple[ClientId, ...], bytes],
            dict[ClientId, EpochShareMessage],
        ] = {}
        #: Non-equivocation: at most one *live* signature per epoch
        #: number — (members, parent, installed checkpoint seq at sign
        #: time); re-signing different content is allowed only after the
        #: checkpoint chain has progressed (which proves every member of
        #: the previously suspected set participated, voiding it).
        self._signed_epochs: dict[
            int, tuple[tuple[ClientId, ...], bytes, int]
        ] = {}
        #: (peer, epoch) pairs already answered with an announce.
        self._announced: set[tuple[ClientId, int]] = set()
        #: When the current block started (first check that saw blockers).
        self.blocked_since: float | None = None
        self._failed = False
        # Instrumentation.
        self.evictions = 0
        self.rejoins = 0
        self.shares_sent = 0
        self.announces_sent = 0

    def bind(self, checkpoints: "CheckpointManager") -> None:
        """Attach the checkpoint manager whose quorums this epoch scopes."""
        self._checkpoints = checkpoints

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def members(self) -> tuple[ClientId, ...]:
        """The current epoch's signer set."""
        return self.epoch.members

    @property
    def failed(self) -> bool:
        """Has this manager produced forking evidence and halted?"""
        return self._failed

    def is_member(self, client: ClientId | None = None) -> bool:
        """Is ``client`` (default: the owner) in the current epoch?"""
        target = self._id if client is None else client
        return target in self.epoch.members

    def evicted_clients(self) -> tuple[ClientId, ...]:
        """Clients outside the current epoch's member set."""
        members = set(self.epoch.members)
        return tuple(j for j in range(self._n) if j not in members)

    def lease_lapsed(self, client: ClientId) -> bool:
        """Has ``client`` blocked for at least ``lease_checkpoints`` checks?"""
        return self.strikes.get(client, 0) >= self.policy.lease_checkpoints

    # ------------------------------------------------------------------ #
    # Lease renewals (piggybacked on checkpoint traffic)
    # ------------------------------------------------------------------ #

    def note_checkpoint_share(self, sender: ClientId, seq: int) -> None:
        """A member's checkpoint share doubles as its lease renewal."""
        if self._failed or sender not in self.epoch.members:
            return
        self.last_share_seq[sender] = max(self.last_share_seq[sender], seq)
        self.strikes[sender] = 0

    def note_install(self, seq: int) -> None:
        """The checkpoint chain progressed: every member participated.

        Progress voids all suspicion — a sequence installs only with a
        share from every current member, so nobody can have been blocking
        it — including this client's own signature lock on a pending
        epoch-change candidate (see ``_signed_epochs``).
        """
        if self._failed:
            return
        for j in self.epoch.members:
            self.strikes[j] = 0
            self.last_share_seq[j] = max(self.last_share_seq[j], seq)
        self.blocked_since = None

    # ------------------------------------------------------------------ #
    # The periodic membership check
    # ------------------------------------------------------------------ #

    def on_tick(self, now: float) -> None:
        """One membership check: account strikes, maybe propose eviction."""
        if self._failed or self._checkpoints is None:
            return
        if self._id not in self.epoch.members:
            # Evicted but alive (e.g. back from an over-long offline
            # window): keep soliciting a rejoin until a member answers.
            if self.policy.rejoin and self._request_rejoin is not None:
                live = [j for j in self.epoch.members]
                if live:
                    self._request_rejoin(live[0])
            return
        blockers = self.blocking_clients(now)
        self.blocked_since = (
            (self.blocked_since if self.blocked_since is not None else now)
            if blockers
            else None
        )
        for j in self.epoch.members:
            if j == self._id:
                continue
            if j in blockers:
                self.strikes[j] += 1
            else:
                self.strikes[j] = 0
        threshold = self.policy.lease_checkpoints + self.policy.evict_after
        lapsed = tuple(
            sorted(
                j
                for j in self.epoch.members
                if j != self._id and self.strikes[j] >= threshold
            )
        )
        if lapsed:
            survivors = tuple(
                j for j in self.epoch.members if j not in lapsed
            )
            if len(survivors) > len(self.epoch.members) // 2:
                self._propose(survivors)
        self._reconsider()

    def blocking_clients(self, now: float) -> frozenset[ClientId]:
        """Which members are blocking the pending checkpoint right now?

        Three ways to block, checked in order:

        * a proposal for the pending sequence exists, I countersigned it,
          and the member's share is missing (a member that has not signed
          *either* cannot blame others — its own stability may lag);
        * no proposal exists although my member-scoped stability already
          crossed the interval: the proposer is withholding it;
        * no proposal exists and stability itself is frozen: members
          whose version rows have gone probe-stale are blocking if the
          remaining rows alone carry a full interval of unfolded
          stability (the counterfactual cut an eviction would unlock).
        """
        cm = self._checkpoints
        if cm is None or cm.failed:
            return frozenset()
        members = self.epoch.members
        seq = cm.installed.seq + 1
        bucket = cm.shares_for(seq)
        if bucket:
            if self._id not in bucket:
                return frozenset()
            return frozenset(j for j in members if j not in bucket)
        floor = sum(cm.installed.cut)
        interval = cm.policy.interval
        if (
            sum(self._tracker.stable_vector(members=members)) - floor
            >= interval
        ):
            proposer = cm.proposer(seq)
            if proposer != self._id:
                return frozenset((proposer,))
            return frozenset()
        stale = frozenset(
            j
            for j in self._tracker.stale_peers(now, self._delta)
            if j in members
        )
        live = tuple(j for j in members if j not in stale)
        if (
            stale
            and live
            and sum(self._tracker.stable_vector(members=live)) - floor
            >= interval
        ):
            return stale
        return frozenset()

    # ------------------------------------------------------------------ #
    # Epoch-change proposals and countersigning
    # ------------------------------------------------------------------ #

    def _propose(self, members_new: tuple[ClientId, ...]) -> None:
        """Sign and broadcast an epoch-change candidate (if allowed)."""
        epoch = self.epoch.epoch + 1
        parent = self.epoch.digest
        if not self._endorsable(members_new):
            return
        if not self._may_sign(epoch, members_new, parent):
            return
        self._sign(epoch, members_new, parent)
        self._reconsider()

    def _endorsable(self, members_new: tuple[ClientId, ...]) -> bool:
        """Would I countersign this successor to my current epoch?"""
        old = set(self.epoch.members)
        new = set(members_new)
        if self._id not in new:
            return False  # my signature cannot be required; do not endorse
        evicted = old - new
        added = new - old
        if added and evicted:
            return False  # one direction per epoch keeps the rules simple
        if added:
            # Re-admissions are always safe: an extra signer can only
            # strengthen future quorums.
            return bool(self.policy.rejoin)
        if not evicted:
            return False
        if len(new) <= len(old) // 2:
            return False  # majority rule: no disjoint successor cliques
        return all(self.lease_lapsed(j) for j in evicted)

    def _may_sign(
        self, epoch: int, members: tuple[ClientId, ...], parent: bytes
    ) -> bool:
        """Non-equivocation with a progress escape hatch.

        At most one live signature per epoch number; different content
        may replace it only after the checkpoint chain has progressed
        (proof that every previously suspected member is alive, which
        voids the earlier candidate — nobody else will complete it).
        """
        lock = self._signed_epochs.get(epoch)
        if lock is None:
            return True
        locked_members, locked_parent, locked_at = lock
        if (locked_members, locked_parent) == (members, parent):
            return False  # already signed exactly this candidate
        cm = self._checkpoints
        return cm is not None and cm.installed.seq > locked_at

    def _sign(
        self, epoch: int, members: tuple[ClientId, ...], parent: bytes
    ) -> None:
        signature = self._signer.sign(EPOCH_LABEL, epoch, members, parent)
        share = EpochShareMessage(
            sender=self._id,
            epoch=epoch,
            members=members,
            parent_digest=parent,
            signature=signature,
        )
        installed_seq = (
            self._checkpoints.installed.seq
            if self._checkpoints is not None
            else 0
        )
        previous = self._signed_epochs.get(epoch)
        if previous is not None and previous[:2] != (members, parent):
            # Withdraw my own copy of the superseded candidate's share
            # (peers that already hold the broadcast copy self-heal
            # through the rejoin path).
            stale = self._candidates.get((epoch,) + previous[:2])
            if stale is not None:
                stale.pop(self._id, None)
        self._signed_epochs[epoch] = (members, parent, installed_seq)
        self._candidates.setdefault((epoch, members, parent), {})[
            self._id
        ] = share
        self.shares_sent += 1
        self._send_share(share)

    def on_share(self, share: EpochShareMessage) -> None:
        """An epoch share arrived over the offline channel."""
        if self._failed:
            return
        if not self._signer.verify(
            share.sender,
            share.signature,
            EPOCH_LABEL,
            share.epoch,
            share.members,
            share.parent_digest,
        ):
            self._fail(
                f"epoch share for epoch {share.epoch} carries an invalid "
                f"signature claiming client {share.sender}"
            )
            return
        if not self._well_formed(share.members):
            return  # malformed member set: not evidence, just ignored
        if share.epoch <= self.epoch.epoch:
            record = self.chain[share.epoch]
            if (share.members, share.parent_digest) != (
                record.members,
                record.parent_digest,
            ):
                self._fail(
                    f"epoch share for installed epoch {share.epoch} "
                    f"diverges from my membership chain — forked epochs"
                )
            return  # a late duplicate of an installed record
        key = (share.epoch, share.members, share.parent_digest)
        self._candidates.setdefault(key, {})[share.sender] = share
        self._reconsider()

    def _well_formed(self, members: tuple[ClientId, ...]) -> bool:
        return (
            bool(members)
            and all(0 <= j < self._n for j in members)
            and tuple(sorted(set(members))) == tuple(members)
        )

    def _reconsider(self) -> None:
        """Countersign and install every actionable candidate."""
        progressed = True
        while progressed and not self._failed:
            progressed = False
            target = self.epoch.epoch + 1
            parent = self.epoch.digest
            for key in sorted(self._candidates):
                epoch, members, candidate_parent = key
                if epoch != target or candidate_parent != parent:
                    continue
                bucket = self._candidates[key]
                if (
                    self._id not in bucket
                    and self._endorsable(members)
                    and self._may_sign(epoch, members, parent)
                ):
                    self._sign(epoch, members, parent)
                    refreshed = self._candidates.get(key)
                    if refreshed is None or self.epoch.epoch >= epoch:
                        # The broadcast was delivered reentrantly (zero
                        # latency): a peer completed the quorum and this
                        # manager already installed the epoch inside the
                        # nested on_share.  Start the scan over.
                        progressed = True
                        break
                    bucket = refreshed
                if all(j in bucket for j in members):
                    self._install(epoch, members, parent)
                    progressed = True
                    break

    def _install(
        self, epoch: int, members: tuple[ClientId, ...], parent: bytes
    ) -> None:
        old_members = set(self.epoch.members)
        record = Epoch(
            epoch=epoch,
            members=members,
            parent_digest=parent,
            digest=epoch_digest(epoch, members, parent),
        )
        self.chain.append(record)
        self.epoch = record
        self.evictions += len(old_members - set(members))
        self.rejoins += len(set(members) - old_members)
        for j in range(self._n):
            self.strikes[j] = 0
        cm_seq = (
            self._checkpoints.installed.seq
            if self._checkpoints is not None
            else 0
        )
        for j in set(members) - old_members:
            # A fresh lease for the returnee, dated at the current cut.
            self.last_share_seq[j] = max(self.last_share_seq[j], cm_seq)
        self._candidates = {
            key: bucket
            for key, bucket in self._candidates.items()
            if key[0] > epoch
        }
        self._signed_epochs = {
            number: lock
            for number, lock in self._signed_epochs.items()
            if number > epoch
        }
        self.blocked_since = None
        if self._on_epoch is not None:
            self._on_epoch(record)

    # ------------------------------------------------------------------ #
    # Rejoin
    # ------------------------------------------------------------------ #

    def note_contact(self, sender: ClientId) -> None:
        """An evicted client made contact: announce the chain, sponsor it."""
        if (
            self._failed
            or not self.policy.rejoin
            or not 0 <= sender < self._n
            or sender in self.epoch.members
            or self._id not in self.epoch.members
        ):
            return
        key = (sender, self.epoch.epoch)
        if key not in self._announced:
            self._announced.add(key)
            self.announces_sent += 1
            self._send_announce(sender, self.build_announce())
        members_new = tuple(sorted(set(self.epoch.members) | {sender}))
        self._propose(members_new)

    def build_announce(self) -> EpochAnnounceMessage:
        """The rejoin bootstrap: full epoch chain + last installed cut."""
        cm = self._checkpoints
        return EpochAnnounceMessage(
            sender=self._id,
            records=tuple(
                (record.epoch, record.members, record.parent_digest)
                for record in self.chain
            ),
            checkpoint_seq=cm.installed.seq if cm is not None else 0,
            checkpoint_cut=cm.installed.cut if cm is not None else (),
            checkpoint_parent=(
                cm.installed.parent_digest if cm is not None else b""
            ),
        )

    def on_announce(self, announce: EpochAnnounceMessage) -> None:
        """Adopt an announced epoch chain (the evictee's catch-up path).

        The chain is verified by digest linkage from genesis, then
        cross-checked against my own records: a divergence is forking
        evidence (somebody forged membership history), a mere extension
        is adopted.  The announced checkpoint re-seeds the checkpoint
        manager so the returnee's history base matches the members'
        compacted state.
        """
        if self._failed:
            return
        parent = b""
        rebuilt: list[Epoch] = []
        for index, (epoch, members, record_parent) in enumerate(
            announce.records
        ):
            if (
                epoch != index
                or record_parent != parent
                or not self._well_formed(tuple(members))
            ):
                return  # malformed announce: ignored, never evidence
            digest = epoch_digest(epoch, tuple(members), parent)
            rebuilt.append(Epoch(epoch, tuple(members), parent, digest))
            parent = digest
        if not rebuilt:
            return
        for mine, theirs in zip(self.chain, rebuilt):
            if mine.digest != theirs.digest:
                self._fail(
                    f"announced epoch chain diverges from my membership "
                    f"record at epoch {mine.epoch} — forked epochs"
                )
                return
        if len(rebuilt) > len(self.chain):
            self.chain = rebuilt
            self.epoch = rebuilt[-1]
            for j in range(self._n):
                self.strikes[j] = 0
            self._candidates = {
                key: bucket
                for key, bucket in self._candidates.items()
                if key[0] > self.epoch.epoch
            }
            self._signed_epochs = {
                number: lock
                for number, lock in self._signed_epochs.items()
                if number > self.epoch.epoch
            }
            self.blocked_since = None
            if self._on_epoch is not None:
                self._on_epoch(self.epoch)
        if self._checkpoints is not None and announce.checkpoint_cut:
            self._checkpoints.adopt(
                announce.checkpoint_seq,
                tuple(announce.checkpoint_cut),
                announce.checkpoint_parent,
                signers=self.epoch.members,
            )
        self._reconsider()

    # ------------------------------------------------------------------ #

    def _fail(self, reason: str) -> None:
        self._failed = True
        if self._on_fail is not None:
            self._on_fail(reason)
