"""FAUST's offline client-to-client messages (Section 6, Figure 4).

Three message types travel over the offline channel:

* PROBE — "I have not heard a fresh version from you in more than DELTA
  time units; what is the maximal version you know?"
* VERSION — the reply (also sent spontaneously): the sender's maximal
  known version ``VER_j[max_j]``.  Note the paper's remark: this version
  was not necessarily *committed* by the sender.
* FAILURE — the sender has proof of server misbehaviour; everyone should
  output ``fail`` and stop using the server.

The bounded-state extension adds a fourth:

* CHECKPOINT-SHARE — a co-signature over a proposed checkpoint (sequence
  number, stable cut, parent digest); ``n`` matching shares install the
  checkpoint (:mod:`repro.faust.checkpoint`).  Unlike the three above it
  carries an explicit signature: an installed checkpoint's certificate
  is forwarded to the *untrusted* server, so its authenticity cannot
  ride on the channel alone.

The offline channel is authenticated (it connects mutually trusting
clients), so the first three messages carry no additional signatures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.types import ClientId
from repro.crypto.hashing import HASH_BYTES
from repro.crypto.signatures import SIGNATURE_BYTES
from repro.ustor.messages import INT_BYTES, MARKER_BYTES, version_wire_size
from repro.ustor.version import Version


@dataclass(frozen=True)
class ProbeMessage:
    """Request for the recipient's maximal version."""

    sender: ClientId

    kind = "PROBE"

    def wire_size(self) -> int:
        return MARKER_BYTES + INT_BYTES


@dataclass(frozen=True)
class VersionMessage:
    """The sender's maximal known version ``VER_j[max_j]``."""

    sender: ClientId
    version: Version

    kind = "VERSION"

    def wire_size(self) -> int:
        return MARKER_BYTES + INT_BYTES + version_wire_size(self.version)


@dataclass(frozen=True)
class CheckpointShareMessage:
    """One client's co-signature over a proposed checkpoint.

    ``signature`` is the sender's signature over ``("CHECKPOINT", seq,
    cut, parent_digest)``; collecting one valid share per client installs
    checkpoint ``seq`` (see :class:`repro.faust.checkpoint.CheckpointManager`).
    """

    sender: ClientId
    seq: int
    cut: tuple[int, ...]
    parent_digest: bytes
    signature: bytes

    kind = "CHECKPOINT-SHARE"

    def wire_size(self) -> int:
        return (
            MARKER_BYTES
            + INT_BYTES  # sender
            + INT_BYTES  # seq
            + INT_BYTES * len(self.cut)
            + HASH_BYTES
            + SIGNATURE_BYTES
        )


@dataclass(frozen=True)
class FailureMessage:
    """Alert: the server has demonstrably violated its specification."""

    sender: ClientId
    reason: str

    kind = "FAILURE"

    def wire_size(self) -> int:
        return MARKER_BYTES + INT_BYTES + len(self.reason.encode("utf-8"))
