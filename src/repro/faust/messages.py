"""FAUST's offline client-to-client messages (Section 6, Figure 4).

Three message types travel over the offline channel:

* PROBE — "I have not heard a fresh version from you in more than DELTA
  time units; what is the maximal version you know?"
* VERSION — the reply (also sent spontaneously): the sender's maximal
  known version ``VER_j[max_j]``.  Note the paper's remark: this version
  was not necessarily *committed* by the sender.
* FAILURE — the sender has proof of server misbehaviour; everyone should
  output ``fail`` and stop using the server.

The bounded-state extension adds a fourth:

* CHECKPOINT-SHARE — a co-signature over a proposed checkpoint (sequence
  number, stable cut, parent digest); ``n`` matching shares install the
  checkpoint (:mod:`repro.faust.checkpoint`).  Unlike the three above it
  carries an explicit signature: an installed checkpoint's certificate
  is forwarded to the *untrusted* server, so its authenticity cannot
  ride on the channel alone.

The membership layer (:mod:`repro.faust.membership`) adds two more:

* EPOCH-SHARE — a co-signature over a proposed membership epoch (epoch
  number, member set, parent digest); one valid share per *new* member
  installs the epoch.
* EPOCH-ANNOUNCE — the rejoin bootstrap: the full epoch chain plus the
  last installed checkpoint, sent to an evicted client that made
  contact so it can re-seed its state and be sponsored back in.

The offline channel is authenticated (it connects mutually trusting
clients), so messages without explicit signatures ride on the channel
alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.types import ClientId
from repro.crypto.hashing import HASH_BYTES
from repro.crypto.signatures import SIGNATURE_BYTES
from repro.ustor.messages import INT_BYTES, MARKER_BYTES, version_wire_size
from repro.ustor.version import Version


@dataclass(frozen=True)
class ProbeMessage:
    """Request for the recipient's maximal version."""

    sender: ClientId

    kind = "PROBE"

    def wire_size(self) -> int:
        return MARKER_BYTES + INT_BYTES


@dataclass(frozen=True)
class VersionMessage:
    """The sender's maximal known version ``VER_j[max_j]``."""

    sender: ClientId
    version: Version

    kind = "VERSION"

    def wire_size(self) -> int:
        return MARKER_BYTES + INT_BYTES + version_wire_size(self.version)


@dataclass(frozen=True)
class CheckpointShareMessage:
    """One client's co-signature over a proposed checkpoint.

    ``signature`` is the sender's signature over ``("CHECKPOINT", seq,
    cut, parent_digest)``; collecting one valid share per client installs
    checkpoint ``seq`` (see :class:`repro.faust.checkpoint.CheckpointManager`).

    ``epoch`` tags the membership epoch the sender was in when it signed
    (0 when membership is off).  It is deliberately *outside* both the
    signature and the checkpoint digest — membership-off digests are
    unchanged — and is used only to resolve the benign proposer race
    during an epoch transition: a share signed under a newer epoch
    supersedes a same-sequence share signed under an older one, while
    divergent shares under the *same* epoch remain forking evidence.
    """

    sender: ClientId
    seq: int
    cut: tuple[int, ...]
    parent_digest: bytes
    signature: bytes
    epoch: int = 0

    kind = "CHECKPOINT-SHARE"

    def wire_size(self) -> int:
        return (
            MARKER_BYTES
            + INT_BYTES  # sender
            + INT_BYTES  # seq
            + INT_BYTES * len(self.cut)
            + HASH_BYTES
            + SIGNATURE_BYTES
            + INT_BYTES  # epoch
        )


@dataclass(frozen=True)
class EpochShareMessage:
    """One client's co-signature over a proposed membership epoch.

    ``signature`` is the sender's signature over ``("EPOCH", epoch,
    members, parent_digest)``; one valid share per member of ``members``
    installs the epoch (see
    :class:`repro.faust.membership.MembershipManager`).
    """

    sender: ClientId
    epoch: int
    members: tuple[ClientId, ...]
    parent_digest: bytes
    signature: bytes

    kind = "EPOCH-SHARE"

    def wire_size(self) -> int:
        return (
            MARKER_BYTES
            + INT_BYTES  # sender
            + INT_BYTES  # epoch
            + INT_BYTES * len(self.members)
            + HASH_BYTES
            + SIGNATURE_BYTES
        )


@dataclass(frozen=True)
class EpochAnnounceMessage:
    """The rejoin bootstrap: epoch chain + last installed checkpoint.

    Sent by a member to an evicted client that made contact.  ``records``
    is the full membership chain from genesis as ``(epoch, members,
    parent_digest)`` triples (digests are recomputed and linkage-checked
    by the receiver, so they are not carried); the checkpoint fields
    re-seed the returnee's history base at the members' compacted state.
    """

    sender: ClientId
    records: tuple[tuple[int, tuple[ClientId, ...], bytes], ...]
    checkpoint_seq: int
    checkpoint_cut: tuple[int, ...]
    checkpoint_parent: bytes

    kind = "EPOCH-ANNOUNCE"

    def wire_size(self) -> int:
        records = sum(
            INT_BYTES + INT_BYTES * len(members) + HASH_BYTES
            for _, members, _ in self.records
        )
        return (
            MARKER_BYTES
            + INT_BYTES  # sender
            + records
            + INT_BYTES  # checkpoint_seq
            + INT_BYTES * len(self.checkpoint_cut)
            + HASH_BYTES  # checkpoint_parent
        )


@dataclass(frozen=True)
class FailureMessage:
    """Alert: the server has demonstrably violated its specification."""

    sender: ClientId
    reason: str

    kind = "FAILURE"

    def wire_size(self) -> int:
        return MARKER_BYTES + INT_BYTES + len(self.reason.encode("utf-8"))
