"""FAUST: the fail-aware untrusted storage service layer (Section 6)."""

from repro.faust.ablation import VectorOnlyTracker, ablate_system
from repro.faust.client import FaustClient
from repro.faust.messages import FailureMessage, ProbeMessage, VersionMessage
from repro.faust.service import FaustService, OperationFailed
from repro.faust.stability import AbsorbOutcome, StabilityTracker
from repro.faust.validator import FailAwareReport, validate_fail_aware_run

__all__ = [
    "AbsorbOutcome",
    "FailAwareReport",
    "FailureMessage",
    "FaustClient",
    "FaustService",
    "OperationFailed",
    "ProbeMessage",
    "StabilityTracker",
    "VectorOnlyTracker",
    "VersionMessage",
    "ablate_system",
    "validate_fail_aware_run",
]
