"""FAUST: the fail-aware untrusted storage service layer (Section 6)."""

from repro.faust.ablation import VectorOnlyTracker, ablate_system
from repro.faust.checkpoint import Checkpoint, CheckpointManager, CheckpointPolicy
from repro.faust.client import FaustClient
from repro.faust.membership import (
    Epoch,
    MembershipManager,
    MembershipPolicy,
    epoch_digest,
)
from repro.faust.messages import (
    CheckpointShareMessage,
    EpochAnnounceMessage,
    EpochShareMessage,
    FailureMessage,
    ProbeMessage,
    VersionMessage,
)
from repro.faust.service import FaustService, OperationFailed
from repro.faust.stability import AbsorbOutcome, StabilityTracker
from repro.faust.validator import FailAwareReport, validate_fail_aware_run

__all__ = [
    "AbsorbOutcome",
    "Checkpoint",
    "CheckpointManager",
    "CheckpointPolicy",
    "CheckpointShareMessage",
    "Epoch",
    "EpochAnnounceMessage",
    "EpochShareMessage",
    "FailAwareReport",
    "FailureMessage",
    "FaustClient",
    "FaustService",
    "MembershipManager",
    "MembershipPolicy",
    "OperationFailed",
    "ProbeMessage",
    "StabilityTracker",
    "VectorOnlyTracker",
    "VersionMessage",
    "ablate_system",
    "epoch_digest",
    "validate_fail_aware_run",
]
