"""Executable Definition 5: validate a whole FAUST run condition by condition.

Given a finished (quiescent) :class:`~repro.workloads.runner.StorageSystem`
that ran FAUST clients, :func:`validate_fail_aware_run` checks every
condition of the paper's central definition:

1. **Linearizability with correct server** — via the independent checker.
2. **Wait-freedom with correct server** — every operation invoked by a
   non-crashed client completed.
3. **Causality** — always, server correct or not.
4. **Integrity** — per-client timestamps strictly increase.
5. **Failure-detection accuracy** — ``fail_i`` implies the server is
   faulty (so with a correct server there must be no fail notes).
6. **Stability-detection accuracy** — the operations stable w.r.t. *all*
   clients, closed under causal precedence, form a linearizable
   sub-history.  (Definition 5 asks for a common view of a prefix; for
   the all-clients case that view is a linearization, which is what we
   check — on the causally-closed stable set, since messages still in
   flight may make the raw set slightly ragged.)
7. **Detection completeness** — bounded-time rendition: for every pair of
   correct clients ``(C_i, C_j)`` and every timestamp ``t`` returned to
   ``C_i`` by the completeness cutoff, either fail occurred at all
   correct clients or ``W_i[j] >= t`` by the end of the run.  (The paper
   quantifies over infinite executions; a finite run checks the property
   up to a cutoff with enough settle time after it.)

The validator is what the integration suite runs against both honest and
Byzantine deployments — Definition 5 as a regression test.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.consistency.causal import check_causal_consistency
from repro.consistency.linearizability import check_linearizability
from repro.consistency.report import CheckResult, ok, violated
from repro.history.causality import build_causal_structure
from repro.history.history import History
from repro.workloads.runner import StorageSystem


@dataclass
class FailAwareReport:
    """Per-condition verdicts for one run."""

    conditions: dict[str, CheckResult] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.conditions.values())

    def __bool__(self) -> bool:
        return self.ok

    def failures(self) -> list[CheckResult]:
        return [result for result in self.conditions.values() if not result.ok]

    def render(self) -> str:
        lines = []
        for name, result in self.conditions.items():
            status = "OK " if result.ok else "FAIL"
            detail = "" if result.ok else f" — {result.violation}"
            lines.append(f"[{status}] {name}{detail}")
        return "\n".join(lines)


def _correct_clients(system: StorageSystem) -> list:
    """Clients that did not crash (the paper's notion of correct client)."""
    return [client for client in system.clients if not client.crashed]


def _check_wait_freedom(
    system: StorageSystem, history: History, cutoff: float
) -> CheckResult:
    """Finite-run rendition of wait-freedom.

    The paper's condition is *eventual* completion, so an operation still
    in flight at the very end of a finite run proves nothing (FAUST's
    periodic dummy reads guarantee something is always in flight).  An
    operation invoked before ``cutoff`` — which the caller follows with a
    long settle phase — and still incomplete is a genuine violation.
    """
    name = "wait-freedom (correct server)"
    for op in history:
        if op.complete or op.invoked_at > cutoff:
            continue
        client = system.clients[op.client]
        if not client.crashed:
            return violated(
                name,
                f"operation {op.describe()} of non-crashed {client.name} "
                f"(invoked at t={op.invoked_at:.1f}, cutoff {cutoff:.1f}) "
                f"never completed under a correct server",
            )
    return ok(name)


def _check_integrity(history: History) -> CheckResult:
    name = "integrity (monotonic timestamps)"
    for client in history.clients():
        stamps = [
            op.timestamp
            for op in history.restrict_to_client(client)
            if op.complete and op.timestamp is not None
        ]
        for earlier, later in zip(stamps, stamps[1:]):
            if later <= earlier:
                return violated(
                    name,
                    f"C{client + 1} returned timestamp {later} after {earlier}",
                )
    return ok(name)


def _check_accuracy(system: StorageSystem, server_correct: bool) -> CheckResult:
    name = "failure-detection accuracy"
    failed = [c for c in system.clients if getattr(c, "faust_failed", False)]
    if failed and server_correct:
        reasons = {c.name: c.faust_fail_reason for c in failed}
        return violated(
            name, f"fail raised against a correct server: {reasons}"
        )
    return ok(name)


def _check_stability_accuracy(system: StorageSystem, history: History) -> CheckResult:
    name = "stability-detection accuracy"
    complete = history.completed_for_checking()
    structure = build_causal_structure(complete)

    stable_ids: set[int] = set()
    for client in system.clients:
        if getattr(client, "faust_failed", False):
            continue  # cuts are frozen at failure; nothing new to certify
        cutoff = client.tracker.stable_timestamp_for_all()
        for op in complete.restrict_to_client(client.client_id):
            if op.timestamp is not None and op.timestamp <= cutoff:
                stable_ids.add(op.op_id)
    if not stable_ids:
        return ok(name, witness="no operation was stable w.r.t. all clients")

    # Causal closure: a stable read's source write (and everything before
    # it) belongs to the certified prefix too.
    closed = set(stable_ids)
    for op_id in stable_ids:
        closed |= structure.ancestors(op_id)
    # Carry the checkpoint base: on a compacted history the prefix does
    # not start at BOTTOM, and the checker must know it.
    prefix = History(
        [op for op in complete if op.op_id in closed], base=complete.base
    )
    verdict = check_linearizability(prefix)
    if not verdict.ok:
        return violated(
            name,
            f"the stable prefix ({len(prefix)} ops) is not linearizable: "
            f"{verdict.violation}",
        )
    return ok(name, witness=f"{len(prefix)} operations certified")


def _check_completeness(
    system: StorageSystem, history: History, cutoff: float
) -> CheckResult:
    name = "detection completeness"
    correct = _correct_clients(system)
    all_failed = all(getattr(c, "faust_failed", False) for c in correct)
    if all_failed:
        return ok(name, witness="fail occurred at every correct client")
    for client in correct:
        if getattr(client, "faust_failed", False):
            continue
        targets = [
            op.timestamp
            for op in history.restrict_to_client(client.client_id)
            if op.complete and op.responded_at <= cutoff and op.timestamp is not None
        ]
        if not targets:
            continue
        needed = max(targets)
        for peer in correct:
            covered = client.tracker.stable_timestamp_for(peer.client_id)
            if covered < needed:
                return violated(
                    name,
                    f"{client.name}'s timestamp {needed} (returned by "
                    f"t={cutoff:.1f}) never became stable w.r.t. "
                    f"{peer.name} (reached {covered}) and no system-wide "
                    f"fail occurred",
                )
    return ok(name)


def validate_fail_aware_run(
    system: StorageSystem,
    server_correct: bool,
    completeness_cutoff: float | None = None,
) -> FailAwareReport:
    """Check a finished run against all seven conditions of Definition 5.

    ``completeness_cutoff`` bounds condition 7: operations completed by
    that virtual time must be stable (or fail must have fired everywhere)
    by the end of the run.  It defaults to half the run's duration, which
    suits runs that end with a long settle phase.
    """
    history = system.history()
    report = FailAwareReport()
    if completeness_cutoff is None:
        completeness_cutoff = system.now / 2

    lin_name = "linearizability (correct server)"
    if server_correct:
        verdict = check_linearizability(history)
        report.conditions[lin_name] = (
            ok(lin_name) if verdict.ok else violated(lin_name, verdict.violation or "")
        )
        report.conditions["wait-freedom (correct server)"] = _check_wait_freedom(
            system, history, completeness_cutoff
        )
    else:
        report.conditions[lin_name] = ok(
            lin_name, witness="not required: server faulty"
        )
        report.conditions["wait-freedom (correct server)"] = ok(
            "wait-freedom (correct server)", witness="not required: server faulty"
        )

    causal = check_causal_consistency(history)
    causal_name = "causality (always)"
    report.conditions[causal_name] = (
        ok(causal_name) if causal.ok else violated(causal_name, causal.violation or "")
    )
    report.conditions["integrity (monotonic timestamps)"] = _check_integrity(history)
    report.conditions["failure-detection accuracy"] = _check_accuracy(
        system, server_correct
    )
    report.conditions["stability-detection accuracy"] = _check_stability_accuracy(
        system, history
    )
    report.conditions["detection completeness"] = _check_completeness(
        system, history, completeness_cutoff
    )
    return report
