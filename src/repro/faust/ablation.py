"""Ablation variants of the FAUST machinery (for experiment E13).

The digest vector ``M`` doubles the size of every version, so a natural
"optimisation" is to compare versions by their timestamp vectors alone.
:class:`VectorOnlyTracker` implements exactly that ablation — and the
experiments show what it costs: join-style attacks (the Figure 3 hiding
attack) produce versions whose *vectors* are ordered while their digests
diverge, so the ablated comparability check accepts them and the fork is
never detected.  Divergence-style forks (split brain) still produce
vector-incomparable versions and remain detectable.

This is the executable justification for Definition 7's second condition.
"""

from __future__ import annotations

from repro.common.types import ClientId
from repro.faust.stability import AbsorbOutcome, StabilityTracker
from repro.ustor.version import Version


def vector_le(a: Version, b: Version) -> bool:
    """Vector-only order: Definition 7 condition 1 without condition 2."""
    return all(x <= y for x, y in zip(a.vector, b.vector))


def vector_comparable(a: Version, b: Version) -> bool:
    return vector_le(a, b) or vector_le(b, a)


class VectorOnlyTracker(StabilityTracker):
    """A stability tracker that ignores digests when comparing versions."""

    def absorb(self, source: ClientId, version: Version, now: float) -> AbsorbOutcome:
        current_max = self.versions[self._max_index]
        if not vector_comparable(version, current_max):
            return AbsorbOutcome(
                incomparable=True, updated=False, stability_advanced=False
            )
        stored = self.versions[source]
        if not (vector_le(stored, version) and stored.vector != version.vector):
            return AbsorbOutcome(
                incomparable=False, updated=False, stability_advanced=False
            )
        self.versions[source] = version
        self.last_heard[source] = now
        if vector_le(current_max, version):
            self._max_index = source
        advanced = self._raise_w(source, version.vector[self._id])
        return AbsorbOutcome(
            incomparable=False, updated=True, stability_advanced=advanced
        )


def ablate_system(system) -> None:
    """Swap every FAUST client's tracker for the vector-only variant.

    Must be called before any operations run (the fresh trackers start
    from zero versions).
    """
    for client in system.clients:
        client.tracker = VectorOnlyTracker(client.client_id, len(system.clients))
