"""Authenticated checkpoints: fold the stable prefix, bound the state.

FAUST's bookkeeping grows without bound — the server's ``pending`` list
is pruned only incidentally by COMMITs, clients accumulate view-history
records forever, and the incremental checkers keep every write they ever
saw.  This module adds the bounded-state extension (ROADMAP item 2): once
a prefix of operations is **stable for all clients** (below the
all-clients stability cut, Section 6), the clients co-sign a *checkpoint*
that folds it, after which every party drops the folded history:

* the server truncates the covered ``pending`` prefix and compacts its
  WAL (:func:`repro.ustor.server.apply_checkpoint`),
* clients prune view-history records at or below the cut,
* the history recorder and incremental checkers drop pruned operations
  (:meth:`repro.history.recorder.HistoryRecorder.compact`).

Checkpoints form a hash chain: checkpoint ``q`` is ``(q, C, d)`` with cut
``C`` (one stable timestamp per client) and digest ``d = H("CHECKPOINT",
q, C, parent_digest)``.  The round-robin proposer of ``q`` (client
``(q - 1) mod n``) broadcasts a signed share over the offline channel
once enough stability has accumulated; every client countersigns the
*proposer's* cut as soon as its own stability cut covers it; ``n``
matching shares install the checkpoint.  Conflicting shares for the same
sequence number are proof of divergent stability views — exactly the
forking evidence FAUST turns into a ``fail`` notification.

Why detection survives pruning: only operations stable at *every* client
are folded, and stability already places them on a common linearizable
prefix certified by the version vectors each client retains.  A rollback
across a checkpoint re-serves a version that no longer dominates some
client's committed version — caught by the same comparability checks as
today (Algorithm 1 lines 36/43), with no need for the pruned history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.errors import ConfigurationError
from repro.common.types import ClientId
from repro.crypto.hashing import hash_values
from repro.crypto.keystore import ClientSigner
from repro.faust.messages import CheckpointShareMessage
from repro.ustor.messages import CheckpointMessage

#: Domain-separation label for checkpoint digests and co-signatures.
CHECKPOINT_LABEL = "CHECKPOINT"


@dataclass(frozen=True)
class CheckpointPolicy:
    """Knobs of the bounded-state extension (``SystemConfig(checkpoint=...)``).

    ``interval`` is the amount of *new stability* (sum over the stable
    cut's entries) that triggers the next proposal; ``prune_history``
    additionally compacts the shared history recorder and the incremental
    checkers behind each installed checkpoint; ``keep_tail`` is how many
    stable writes per register the compactor retains as context for
    still-referencing reads.
    """

    interval: int = 32
    prune_history: bool = True
    keep_tail: int = 4

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ConfigurationError(
                f"checkpoint interval must be at least 1, got {self.interval}"
            )
        if self.keep_tail < 1:
            raise ConfigurationError(
                f"checkpoint keep_tail must be at least 1, got {self.keep_tail}"
            )


@dataclass(frozen=True)
class Checkpoint:
    """An installed checkpoint: a link of the authenticated chain."""

    seq: int
    cut: tuple[int, ...]  # one stable timestamp per client
    parent_digest: bytes
    digest: bytes

    @classmethod
    def genesis(cls, num_clients: int) -> "Checkpoint":
        """Checkpoint 0: the empty cut, the root of the chain."""
        cut = (0,) * num_clients
        return cls(
            seq=0,
            cut=cut,
            parent_digest=b"",
            digest=chain_digest(0, cut, b""),
        )


def chain_digest(seq: int, cut: tuple[int, ...], parent_digest: bytes) -> bytes:
    """The digest binding a checkpoint to its whole ancestry."""
    return hash_values(CHECKPOINT_LABEL, seq, cut, parent_digest)


class CheckpointManager:
    """One client's view of the checkpoint co-signing protocol.

    Owned by a :class:`~repro.faust.client.FaustClient`, which feeds it
    stability advances (:meth:`on_stability`) and received shares
    (:meth:`on_share`) and provides the I/O callbacks:

    * ``send_share(share)`` — broadcast a share to every peer (offline
      channel),
    * ``send_server(message)`` — forward an installed certificate to the
      server(s) (only the proposer does this),
    * ``on_install(checkpoint)`` — an installed checkpoint to act on
      (prune local state),
    * ``on_fail(reason)`` — conflicting or forged shares: forking
      evidence, raise ``fail``.

    The manager draws no randomness and sets no timers: proposals and
    countersignatures are driven purely by stability advances and share
    arrivals, so runs stay deterministic.
    """

    def __init__(
        self,
        client_id: ClientId,
        num_clients: int,
        signer: ClientSigner,
        policy: CheckpointPolicy,
        *,
        send_share: Callable[[CheckpointShareMessage], None],
        send_server: Callable[[CheckpointMessage], None],
        on_install: Callable[[Checkpoint], None] | None = None,
        on_fail: Callable[[str], None] | None = None,
    ) -> None:
        self._id = client_id
        self._n = num_clients
        self._signer = signer
        self.policy = policy
        self._send_share = send_share
        self._send_server = send_server
        self._on_install = on_install
        self._on_fail = on_fail
        self.installed = Checkpoint.genesis(num_clients)
        self._stable: tuple[int, ...] = (0,) * num_clients
        #: Buffered shares by sequence number (only ``installed.seq + 1``
        #: is actionable; later ones wait for their parent).
        self._shares: dict[int, dict[ClientId, CheckpointShareMessage]] = {}
        #: What I co-signed per sequence number — at most one (cut,
        #: parent) each, the non-equivocation the protocol rests on.
        self._signed: dict[int, tuple[tuple[int, ...], bytes]] = {}
        self._failed = False
        # Instrumentation.
        self.installs = 0
        self.shares_sent = 0

    # ------------------------------------------------------------------ #
    # Inputs
    # ------------------------------------------------------------------ #

    def on_stability(self, stable_vector: tuple[int, ...]) -> None:
        """The client's all-clients stable cut advanced."""
        if self._failed:
            return
        self._stable = stable_vector
        self._maybe_propose()
        self._maybe_countersign()

    def on_share(self, share: CheckpointShareMessage) -> None:
        """A peer's share arrived over the offline channel."""
        if self._failed:
            return
        if not self._signer.verify(
            share.sender,
            share.signature,
            CHECKPOINT_LABEL,
            share.seq,
            share.cut,
            share.parent_digest,
        ):
            self._fail(
                f"checkpoint share for seq {share.seq} carries an invalid "
                f"signature claiming client {share.sender}"
            )
            return
        if share.seq < self.installed.seq:
            return  # stale: history we can no longer compare against
        if share.seq == self.installed.seq:
            if (share.cut, share.parent_digest) != (
                self.installed.cut,
                self.installed.parent_digest,
            ):
                self._fail(
                    f"checkpoint share for installed seq {share.seq} "
                    f"diverges from the installed checkpoint — forked "
                    f"stability views"
                )
            return  # a late duplicate of what everyone signed
        bucket = self._shares.setdefault(share.seq, {})
        for other in bucket.values():
            if (other.cut, other.parent_digest) != (
                share.cut,
                share.parent_digest,
            ):
                self._fail(
                    f"conflicting checkpoint shares for seq {share.seq} "
                    f"(cuts {other.cut} vs {share.cut}) — forked stability "
                    f"views"
                )
                return
        bucket[share.sender] = share
        self._advance()

    # ------------------------------------------------------------------ #
    # Protocol steps
    # ------------------------------------------------------------------ #

    def proposer(self, seq: int) -> ClientId:
        """Round-robin proposer of checkpoint ``seq``."""
        return (seq - 1) % self._n

    def _maybe_propose(self) -> None:
        seq = self.installed.seq + 1
        if self.proposer(seq) != self._id or seq in self._signed:
            return
        if sum(self._stable) - sum(self.installed.cut) < self.policy.interval:
            return
        self._sign_and_share(seq, self._stable, self.installed.digest)

    def _maybe_countersign(self) -> None:
        """Countersign the actionable proposal once my cut covers it."""
        seq = self.installed.seq + 1
        bucket = self._shares.get(seq)
        if not bucket or seq in self._signed:
            return
        share = next(iter(bucket.values()))
        if share.parent_digest != self.installed.digest:
            self._fail(
                f"checkpoint proposal for seq {seq} extends a different "
                f"parent than my installed checkpoint — forked chains"
            )
            return
        if all(mine >= cut for mine, cut in zip(self._stable, share.cut)):
            self._sign_and_share(seq, share.cut, share.parent_digest)

    def _sign_and_share(
        self, seq: int, cut: tuple[int, ...], parent_digest: bytes
    ) -> None:
        signature = self._signer.sign(CHECKPOINT_LABEL, seq, cut, parent_digest)
        share = CheckpointShareMessage(
            sender=self._id,
            seq=seq,
            cut=cut,
            parent_digest=parent_digest,
            signature=signature,
        )
        self._signed[seq] = (cut, parent_digest)
        self._shares.setdefault(seq, {})[self._id] = share
        self.shares_sent += 1
        self._send_share(share)
        self._advance()

    def _advance(self) -> None:
        """Countersign and install everything actionable right now."""
        while not self._failed:
            self._maybe_countersign()
            seq = self.installed.seq + 1
            bucket = self._shares.get(seq)
            if self._failed or not bucket or len(bucket) < self._n:
                return
            share = next(iter(bucket.values()))
            checkpoint = Checkpoint(
                seq=seq,
                cut=share.cut,
                parent_digest=share.parent_digest,
                digest=chain_digest(seq, share.cut, share.parent_digest),
            )
            signatures = tuple(bucket[j].signature for j in range(self._n))
            del self._shares[seq]
            self._signed.pop(seq, None)
            self.installed = checkpoint
            self.installs += 1
            if self._on_install is not None:
                self._on_install(checkpoint)
            if self.proposer(seq) == self._id:
                # The proposer forwards the certificate; the server
                # truncates under its own defensive bound, so one copy
                # (not n) suffices and duplicates would only cost wire.
                self._send_server(
                    CheckpointMessage(
                        seq=seq, cut=share.cut, signatures=signatures
                    )
                )
            self._maybe_propose()

    def _fail(self, reason: str) -> None:
        self._failed = True
        if self._on_fail is not None:
            self._on_fail(reason)
