"""Authenticated checkpoints: fold the stable prefix, bound the state.

FAUST's bookkeeping grows without bound — the server's ``pending`` list
is pruned only incidentally by COMMITs, clients accumulate view-history
records forever, and the incremental checkers keep every write they ever
saw.  This module adds the bounded-state extension (ROADMAP item 2): once
a prefix of operations is **stable for all clients** (below the
all-clients stability cut, Section 6), the clients co-sign a *checkpoint*
that folds it, after which every party drops the folded history:

* the server truncates the covered ``pending`` prefix and compacts its
  WAL (:func:`repro.ustor.server.apply_checkpoint`),
* clients prune view-history records at or below the cut,
* the history recorder and incremental checkers drop pruned operations
  (:meth:`repro.history.recorder.HistoryRecorder.compact`).

Checkpoints form a hash chain: checkpoint ``q`` is ``(q, C, d)`` with cut
``C`` (one stable timestamp per client) and digest ``d = H("CHECKPOINT",
q, C, parent_digest)``.  The round-robin proposer of ``q`` (client
``(q - 1) mod n``) broadcasts a signed share over the offline channel
once enough stability has accumulated; every client countersigns the
*proposer's* cut as soon as its own stability cut covers it; ``n``
matching shares install the checkpoint.  Conflicting shares for the same
sequence number are proof of divergent stability views — exactly the
forking evidence FAUST turns into a ``fail`` notification.

Why detection survives pruning: only operations stable at *every* client
are folded, and stability already places them on a common linearizable
prefix certified by the version vectors each client retains.  A rollback
across a checkpoint re-serves a version that no longer dominates some
client's committed version — caught by the same comparability checks as
today (Algorithm 1 lines 36/43), with no need for the pruned history.

With a :class:`~repro.faust.membership.MembershipManager` attached,
"every client" becomes "every *member* of the current epoch": proposer
rotation, countersign quorums and the collected signature set all range
over the epoch's member set, so the chain keeps advancing after a
crashed-forever client is evicted.  Cuts stay full-width ``n`` and the
digest formula is untouched — a membership-off run and a fault-free
membership-on run produce bit-identical chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.common.errors import ConfigurationError
from repro.common.types import ClientId
from repro.crypto.hashing import hash_values
from repro.crypto.keystore import ClientSigner
from repro.faust.messages import CheckpointShareMessage
from repro.ustor.messages import CheckpointMessage

if TYPE_CHECKING:  # pragma: no cover - typing only (import cycle)
    from repro.faust.membership import MembershipManager

#: Domain-separation label for checkpoint digests and co-signatures.
CHECKPOINT_LABEL = "CHECKPOINT"

#: How many installed (cut, parent) pairs to archive for cross-checking
#: late shares from non-members (evicted clients catching up).
RECENT_ARCHIVE = 16


@dataclass(frozen=True)
class CheckpointPolicy:
    """Knobs of the bounded-state extension (``SystemConfig(checkpoint=...)``).

    ``interval`` is the amount of *new stability* (sum over the stable
    cut's entries) that triggers the next proposal; ``prune_history``
    additionally compacts the shared history recorder and the incremental
    checkers behind each installed checkpoint; ``keep_tail`` is how many
    stable writes per register the compactor retains as context for
    still-referencing reads.
    """

    interval: int = 32
    prune_history: bool = True
    keep_tail: int = 4

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ConfigurationError(
                f"checkpoint interval must be at least 1, got {self.interval}"
            )
        if self.keep_tail < 1:
            raise ConfigurationError(
                f"checkpoint keep_tail must be at least 1, got {self.keep_tail}"
            )


@dataclass(frozen=True)
class Checkpoint:
    """An installed checkpoint: a link of the authenticated chain.

    ``signers`` records which clients' signatures installed it — all
    ``n`` without membership, the epoch's member set with it.  It is
    *not* part of the digest (membership-off digests are unchanged);
    it exists so compaction logic knows how many install notifications
    to expect.
    """

    seq: int
    cut: tuple[int, ...]  # one stable timestamp per client
    parent_digest: bytes
    digest: bytes
    signers: tuple[ClientId, ...] = ()

    @classmethod
    def genesis(cls, num_clients: int) -> "Checkpoint":
        """Checkpoint 0: the empty cut, the root of the chain."""
        cut = (0,) * num_clients
        return cls(
            seq=0,
            cut=cut,
            parent_digest=b"",
            digest=chain_digest(0, cut, b""),
            signers=tuple(range(num_clients)),
        )


def chain_digest(seq: int, cut: tuple[int, ...], parent_digest: bytes) -> bytes:
    """The digest binding a checkpoint to its whole ancestry."""
    return hash_values(CHECKPOINT_LABEL, seq, cut, parent_digest)


class CheckpointManager:
    """One client's view of the checkpoint co-signing protocol.

    Owned by a :class:`~repro.faust.client.FaustClient`, which feeds it
    stability advances (:meth:`on_stability`) and received shares
    (:meth:`on_share`) and provides the I/O callbacks:

    * ``send_share(share)`` — broadcast a share to every peer (offline
      channel),
    * ``send_server(message)`` — forward an installed certificate to the
      server(s) (only the proposer does this),
    * ``on_install(checkpoint)`` — an installed checkpoint to act on
      (prune local state),
    * ``on_fail(reason)`` — conflicting or forged shares: forking
      evidence, raise ``fail``.

    The manager draws no randomness and sets no timers: proposals and
    countersignatures are driven purely by stability advances and share
    arrivals, so runs stay deterministic.
    """

    def __init__(
        self,
        client_id: ClientId,
        num_clients: int,
        signer: ClientSigner,
        policy: CheckpointPolicy,
        *,
        send_share: Callable[[CheckpointShareMessage], None],
        send_server: Callable[[CheckpointMessage], None],
        on_install: Callable[[Checkpoint], None] | None = None,
        on_fail: Callable[[str], None] | None = None,
        membership: "MembershipManager | None" = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self._id = client_id
        self._n = num_clients
        self._signer = signer
        self.policy = policy
        self._send_share = send_share
        self._send_server = send_server
        self._on_install = on_install
        self._on_fail = on_fail
        self._membership = membership
        self._clock = clock
        self.installed = Checkpoint.genesis(num_clients)
        self._stable: tuple[int, ...] = (0,) * num_clients
        #: Buffered shares by sequence number (only ``installed.seq + 1``
        #: is actionable; later ones wait for their parent).
        self._shares: dict[int, dict[ClientId, CheckpointShareMessage]] = {}
        #: What I co-signed per sequence number — at most one (cut,
        #: parent) each, the non-equivocation the protocol rests on.
        self._signed: dict[int, tuple[tuple[int, ...], bytes]] = {}
        #: Recently installed (cut, parent, epoch-at-install) triples by
        #: seq, for comparing late shares from evicted clients against
        #: folded history (the epoch disambiguates benignly superseded
        #: proposals from genuine forks).
        self._recent: dict[int, tuple[tuple[int, ...], bytes, int]] = {
            0: (self.installed.cut, self.installed.parent_digest, 0)
        }
        #: The membership epoch current when ``installed`` was installed.
        self._installed_epoch = 0
        #: When the pending sequence first became due (interval crossed
        #: or a proposal arrived) without installing — the stall clock.
        self._pending_since: float | None = None
        self._failed = False
        # Instrumentation.
        self.installs = 0
        self.shares_sent = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def failed(self) -> bool:
        """Has this manager seen forking evidence and halted?"""
        return self._failed

    def shares_for(self, seq: int) -> dict[ClientId, CheckpointShareMessage]:
        """The share bucket for ``seq`` (empty if none) — read-only use."""
        return self._shares.get(seq, {})

    def stall_seconds(self, now: float) -> float:
        """How long the pending checkpoint has been due but uninstalled."""
        if self._pending_since is None:
            return 0.0
        return max(0.0, now - self._pending_since)

    def blocking_clients(self) -> tuple[ClientId, ...]:
        """Members whose share is missing from the pending bucket."""
        bucket = self._shares.get(self.installed.seq + 1)
        if not bucket:
            return ()
        return tuple(sorted(j for j in self._members() if j not in bucket))

    def _members(self) -> tuple[ClientId, ...]:
        if self._membership is not None:
            return self._membership.members
        return tuple(range(self._n))

    def _now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    def _epoch(self) -> int:
        return self._membership.epoch.epoch if self._membership else 0

    # ------------------------------------------------------------------ #
    # Inputs
    # ------------------------------------------------------------------ #

    def on_stability(self, stable_vector: tuple[int, ...]) -> None:
        """The client's all-clients stable cut advanced."""
        if self._failed:
            return
        self._stable = stable_vector
        if (
            self._pending_since is None
            and sum(stable_vector) - sum(self.installed.cut)
            >= self.policy.interval
        ):
            self._pending_since = self._now()
        self._maybe_propose()
        self._maybe_countersign()

    def on_share(self, share: CheckpointShareMessage) -> None:
        """A peer's share arrived over the offline channel."""
        if self._failed:
            return
        if not self._signer.verify(
            share.sender,
            share.signature,
            CHECKPOINT_LABEL,
            share.seq,
            share.cut,
            share.parent_digest,
        ):
            self._fail(
                f"checkpoint share for seq {share.seq} carries an invalid "
                f"signature claiming client {share.sender}"
            )
            return
        members = self._members()
        if share.sender not in members:
            # An evicted client's share never enters a quorum bucket: a
            # stale-epoch returnee may benignly compute itself proposer
            # and emit a cut the members never signed — that is lag, not
            # evidence.  Evidence is a share contradicting *installed*
            # history we still hold archived.
            archived = self._recent.get(share.seq)
            if share.seq <= self.installed.seq and archived is not None:
                cut, parent, install_epoch = archived
                # A share signed under an *older* epoch than the install
                # is the benign superseded-proposal race (the sender was
                # offline across an epoch change); only a divergent share
                # from the install's epoch onward contradicts co-signed
                # history.
                if share.epoch >= install_epoch and (
                    share.cut,
                    share.parent_digest,
                ) != (cut, parent):
                    self._fail(
                        f"checkpoint share from evicted client "
                        f"{share.sender} for installed seq {share.seq} "
                        f"diverges from the installed chain — forked "
                        f"stability views"
                    )
                    return
            if self._membership is not None:
                self._membership.note_contact(share.sender)
            return
        if self._membership is not None:
            self._membership.note_checkpoint_share(share.sender, share.seq)
        if share.seq < self.installed.seq:
            return  # stale: history we can no longer compare against
        if share.seq == self.installed.seq:
            if (share.cut, share.parent_digest) != (
                self.installed.cut,
                self.installed.parent_digest,
            ):
                if share.epoch > self._installed_epoch:
                    # My install predates an epoch change I have not yet
                    # processed: the members superseded this sequence
                    # under a newer epoch.  Lag, not evidence — the
                    # rejoin announce will re-seed me on their chain.
                    return
                self._fail(
                    f"checkpoint share for installed seq {share.seq} "
                    f"diverges from the installed checkpoint — forked "
                    f"stability views"
                )
            return  # a late duplicate of what everyone signed
        bucket = self._shares.setdefault(share.seq, {})
        for other in bucket.values():
            if (other.cut, other.parent_digest) != (
                share.cut,
                share.parent_digest,
            ):
                bucket_epoch = max(o.epoch for o in bucket.values())
                if share.epoch > bucket_epoch:
                    # The benign proposer race of an epoch transition:
                    # the new rotation's proposal supersedes the old
                    # one (which can no longer gather a full quorum).
                    # My own superseded countersignature is withdrawn
                    # so _advance re-signs the winner.
                    bucket.clear()
                    self._signed.pop(share.seq, None)
                    break
                if share.epoch < bucket_epoch:
                    return  # stale-epoch share, already superseded
                self._fail(
                    f"conflicting checkpoint shares for seq {share.seq} "
                    f"(cuts {other.cut} vs {share.cut}) — forked stability "
                    f"views"
                )
                return
        bucket[share.sender] = share
        if share.seq == self.installed.seq + 1 and self._pending_since is None:
            self._pending_since = self._now()
        self._advance()

    # ------------------------------------------------------------------ #
    # Protocol steps
    # ------------------------------------------------------------------ #

    def proposer(self, seq: int) -> ClientId:
        """Round-robin proposer of checkpoint ``seq`` over the members."""
        members = self._members()
        return members[(seq - 1) % len(members)]

    def _maybe_propose(self) -> None:
        members = self._members()
        if self._id not in members:
            return
        seq = self.installed.seq + 1
        if self._shares.get(seq):
            # A proposal is already in flight (possible only after an
            # epoch change shifted the rotation under it): countersign
            # that one instead of competing.  Without membership the
            # bucket cannot be non-empty before the unique proposer
            # proposes, so this guard never fires.
            return
        if self.proposer(seq) != self._id or seq in self._signed:
            return
        if sum(self._stable) - sum(self.installed.cut) < self.policy.interval:
            return
        self._sign_and_share(seq, self._stable, self.installed.digest)

    def _maybe_countersign(self) -> None:
        """Countersign the actionable proposal once my cut covers it."""
        if self._id not in self._members():
            return
        seq = self.installed.seq + 1
        bucket = self._shares.get(seq)
        if not bucket or seq in self._signed:
            return
        share = next(iter(bucket.values()))
        if share.parent_digest != self.installed.digest:
            if share.epoch > self._epoch():
                # The proposal was signed under an epoch I have not yet
                # installed: my chain view is behind, not forked.  Wait
                # for the epoch (or the rejoin announce) to catch up.
                return
            self._fail(
                f"checkpoint proposal for seq {seq} extends a different "
                f"parent than my installed checkpoint — forked chains"
            )
            return
        if all(mine >= cut for mine, cut in zip(self._stable, share.cut)):
            self._sign_and_share(seq, share.cut, share.parent_digest)

    def _sign_and_share(
        self, seq: int, cut: tuple[int, ...], parent_digest: bytes
    ) -> None:
        signature = self._signer.sign(CHECKPOINT_LABEL, seq, cut, parent_digest)
        share = CheckpointShareMessage(
            sender=self._id,
            seq=seq,
            cut=cut,
            parent_digest=parent_digest,
            signature=signature,
            epoch=self._epoch(),
        )
        self._signed[seq] = (cut, parent_digest)
        self._shares.setdefault(seq, {})[self._id] = share
        if seq == self.installed.seq + 1 and self._pending_since is None:
            self._pending_since = self._now()
        self.shares_sent += 1
        self._send_share(share)
        self._advance()

    def _advance(self) -> None:
        """Countersign and install everything actionable right now."""
        while not self._failed:
            self._maybe_countersign()
            members = self._members()
            seq = self.installed.seq + 1
            bucket = self._shares.get(seq)
            if (
                self._failed
                or not bucket
                or any(j not in bucket for j in members)
            ):
                return
            share = next(iter(bucket.values()))
            checkpoint = Checkpoint(
                seq=seq,
                cut=share.cut,
                parent_digest=share.parent_digest,
                digest=chain_digest(seq, share.cut, share.parent_digest),
                signers=members,
            )
            signatures = tuple(bucket[j].signature for j in members)
            del self._shares[seq]
            self._signed.pop(seq, None)
            self.installed = checkpoint
            self.installs += 1
            self._remember(checkpoint)
            self._pending_since = None
            if self._membership is not None:
                self._membership.note_install(seq)
            if self._on_install is not None:
                self._on_install(checkpoint)
            if self.proposer(seq) == self._id:
                # The proposer forwards the certificate; the server
                # truncates under its own defensive bound, so one copy
                # (not n) suffices and duplicates would only cost wire.
                self._send_server(
                    CheckpointMessage(
                        seq=seq, cut=share.cut, signatures=signatures
                    )
                )
            self._maybe_propose()

    # ------------------------------------------------------------------ #
    # Membership hooks
    # ------------------------------------------------------------------ #

    def on_members_changed(self) -> None:
        """A new epoch installed: re-evaluate rotation and quorums.

        A shrunken member set may make the pending bucket a full quorum
        right now, and the proposer rotation may have shifted onto this
        client.
        """
        if self._failed:
            return
        self._maybe_propose()
        self._advance()

    def adopt(
        self,
        seq: int,
        cut: tuple[int, ...],
        parent_digest: bytes,
        *,
        signers: tuple[ClientId, ...],
    ) -> None:
        """Install an announced checkpoint without collecting shares.

        The rejoin path: a returnee's history base is re-seeded at the
        members' last installed checkpoint, carried by an
        EPOCH-ANNOUNCE over the authenticated offline channel (trusted
        clients, same trust as VERSION messages — intermediate chain
        links are already folded, so linkage cannot be re-verified).
        A mismatch with what *this* client already installed at the same
        sequence is still forking evidence.
        """
        if self._failed or seq < self.installed.seq:
            return
        if seq == self.installed.seq:
            if (cut, parent_digest) != (
                self.installed.cut,
                self.installed.parent_digest,
            ):
                self._fail(
                    f"announced checkpoint for installed seq {seq} "
                    f"diverges from the installed checkpoint — forked "
                    f"stability views"
                )
            return
        checkpoint = Checkpoint(
            seq=seq,
            cut=cut,
            parent_digest=parent_digest,
            digest=chain_digest(seq, cut, parent_digest),
            signers=signers,
        )
        for stale in [s for s in self._shares if s <= seq]:
            del self._shares[stale]
        for stale in [s for s in self._signed if s <= seq]:
            del self._signed[stale]
        self.installed = checkpoint
        self.installs += 1
        self._remember(checkpoint)
        self._pending_since = None
        if self._on_install is not None:
            self._on_install(checkpoint)
        self._advance()

    def _remember(self, checkpoint: Checkpoint) -> None:
        """Archive the installed (cut, parent, epoch) for late-share checks."""
        self._installed_epoch = self._epoch()
        self._recent[checkpoint.seq] = (
            checkpoint.cut,
            checkpoint.parent_digest,
            self._installed_epoch,
        )
        while len(self._recent) > RECENT_ARCHIVE:
            del self._recent[min(self._recent)]

    def _fail(self, reason: str) -> None:
        self._failed = True
        if self._on_fail is not None:
            self._on_fail(reason)
