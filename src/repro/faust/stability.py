"""Version bookkeeping and stability cuts (Section 6).

Client ``C_i`` maintains ``VER_i`` — the maximal version received from
every client — and derives from it the stability vector ``W_i`` with
``W_i[j] = V_j[i]`` where ``(V_j, M_j) = VER_i[j]``: how many of *my*
operations client ``C_j``'s latest known version covers.  Every update
that raises an entry of ``W_i`` triggers a ``stable_i(W_i)`` notification.

The tracker also implements the failure test FAUST applies to every
received version: comparability (Definition 7) with the maximal version
already known.  Incomparable versions are *proof* of a forking attack —
for honestly produced versions, ``<=`` coincides with the prefix relation
on view histories, and two prefixes of a common history are always
comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.types import ClientId
from repro.ustor.version import Version


@dataclass(frozen=True)
class AbsorbOutcome:
    """What happened when a version was fed to the tracker."""

    #: The version contradicts the known maximum — server misbehaviour.
    incomparable: bool
    #: ``VER_i[source]`` grew.
    updated: bool
    #: Some entry of the stability vector ``W_i`` increased.
    stability_advanced: bool


class StabilityTracker:
    """``VER_i``, ``W_i`` and the staleness clock of one FAUST client."""

    def __init__(self, client_id: ClientId, num_clients: int) -> None:
        self._id = client_id
        self._n = num_clients
        self.versions: list[Version] = [Version.zero(num_clients)] * num_clients
        self.last_heard: list[float] = [0.0] * num_clients
        self._max_index: ClientId = client_id
        self._w: list[int] = [0] * num_clients
        # min(W_i), maintained incrementally: wait_for_stability() polls it
        # after every simulation event, so it must not rescan W_i each time.
        self._w_min: int = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def max_index(self) -> ClientId:
        """``max_i`` — whose entry holds the maximal version."""
        return self._max_index

    @property
    def max_version(self) -> Version:
        return self.versions[self._max_index]

    def stability_cut(self) -> tuple[int, ...]:
        """The current vector ``W_i`` (Figure 2's stability cut)."""
        return tuple(self._w)

    def stable_timestamp_for(self, peer: ClientId) -> int:
        """Up to which of my timestamps am I stable w.r.t. ``peer``?"""
        return self._w[peer]

    def stable_vector(
        self, members: tuple[ClientId, ...] | None = None
    ) -> tuple[int, ...]:
        """The all-clients stable cut: one timestamp per client.

        Entry ``j`` is ``min_k VER_i[k].vector[j]`` — how many of client
        ``C_j``'s operations *every* client's latest known version
        already covers.  Operations at or below this cut are stable
        w.r.t. all clients (the prefix the checkpoint protocol folds);
        monotone non-decreasing because ``VER_i`` entries only grow.

        With ``members``, the min runs over those clients' rows only —
        the membership layer's epoch-scoped cut: stability w.r.t. the
        current signer set, which keeps advancing after an evicted
        client's row froze.  The cut stays full-width ``n`` (evicted
        clients keep their column — their folded operations remain part
        of history), and every entry is ``>=`` the all-rows value, so
        member-scoped cuts still cover everything the full cut covers.
        """
        if members is None:
            vectors = [version.vector for version in self.versions]
        else:
            vectors = [self.versions[k].vector for k in members]
        return tuple(
            min(vector[j] for vector in vectors) for j in range(self._n)
        )

    def stable_timestamp_for_all(self) -> int:
        """My operations with timestamps up to this value are *stable*
        (w.r.t. every client), hence on a linearizable prefix.

        O(1): the minimum of ``W_i`` is maintained incrementally by
        :meth:`absorb` — a full rescan only happens when the entry that
        *was* the minimum advances, which is at most a ``1/n`` fraction of
        stability advancements (amortized constant).
        """
        return self._w_min

    # ------------------------------------------------------------------ #
    # Version intake
    # ------------------------------------------------------------------ #

    def absorb(self, source: ClientId, version: Version, now: float) -> AbsorbOutcome:
        """Feed a version received from ``source`` (server or offline path).

        Updates ``VER_i[source]`` and its staleness clock only when the
        version *grew* — the paper stores "the time when the entry was most
        recently updated", and this is load-bearing: a forking server keeps
        serving stale (but valid) versions of the other branch, and only an
        update-based clock keeps probing until the genuinely newer version
        arrives offline and exposes the fork.  Reports incomparability
        instead of updating when the version contradicts the known maximum.
        """
        current_max = self.versions[self._max_index]
        if not version.comparable(current_max):
            return AbsorbOutcome(
                incomparable=True, updated=False, stability_advanced=False
            )
        if not self.versions[source].lt(version):
            return AbsorbOutcome(
                incomparable=False, updated=False, stability_advanced=False
            )
        self.versions[source] = version
        self.last_heard[source] = now
        if current_max.le(version):
            self._max_index = source
        advanced = self._raise_w(source, version.vector[self._id])
        return AbsorbOutcome(
            incomparable=False, updated=True, stability_advanced=advanced
        )

    def _raise_w(self, source: ClientId, new_w: int) -> bool:
        """Raise ``W_i[source]`` to ``new_w`` if that grows it, keeping the
        cached minimum consistent; returns whether the cut advanced."""
        if new_w <= self._w[source]:
            return False
        was_min = self._w[source] == self._w_min
        self._w[source] = new_w
        if was_min:
            self._w_min = min(self._w)
        return True

    # ------------------------------------------------------------------ #
    # Staleness (drives PROBE messages)
    # ------------------------------------------------------------------ #

    def stale_peers(self, now: float, delta: float) -> list[ClientId]:
        """Clients not heard from (directly or via the server) for > delta."""
        return [
            j
            for j in range(self._n)
            if j != self._id and now - self.last_heard[j] > delta
        ]
