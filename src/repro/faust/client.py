"""The FAUST protocol — fail-aware untrusted storage (Section 6).

A :class:`FaustClient` layers three mechanisms over the USTOR client
(Figure 4's architecture):

* **Version bookkeeping** — every version received (own commits, writers'
  versions in read replies, offline VERSION messages) flows through a
  :class:`~repro.faust.stability.StabilityTracker`; stability cuts ``W_i``
  emerge as ``stable_i(W)`` notifications.
* **Dummy reads** — a periodic round-robin read over all registers while
  the application is idle, so versions keep propagating through the
  server even without user operations.
* **Offline probing** — peers not heard from for more than ``delta`` are
  probed directly; PROBE / VERSION / FAILURE messages travel over the
  offline channel and keep stability (and failure) detection complete
  even when the server crashes or partitions clients.

Failure is detected in exactly the paper's three ways: a USTOR ``fail_i``
(signature/version check failed), an incomparable version (forking
evidence), or a FAILURE message from another client.  On any of them the
client alerts everyone, outputs ``fail_i``, and halts.

Operations return the timestamp ``t`` of the underlying USTOR operation
(Definition 5's Integrity: timestamps at one client increase
monotonically).  User operations invoked while another is in flight are
queued, preserving the well-formedness of each client's history.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.common.errors import ProtocolError
from repro.common.types import ClientId, OpKind, RegisterId, Value, client_name
from repro.crypto.keystore import ClientSigner
from repro.history.recorder import HistoryRecorder
from repro.sim.offline import OfflineChannel
from repro.sim.timers import PeriodicTimer
from repro.ustor.client import OpOutcome, UstorClient
from repro.ustor.messages import ReplyMessage
from repro.faust.checkpoint import Checkpoint, CheckpointManager, CheckpointPolicy
from repro.faust.membership import Epoch, MembershipManager, MembershipPolicy
from repro.faust.messages import (
    CheckpointShareMessage,
    EpochAnnounceMessage,
    EpochShareMessage,
    FailureMessage,
    ProbeMessage,
    VersionMessage,
)
from repro.faust.stability import StabilityTracker


class FaustClient(UstorClient):
    """Client ``C_i`` of the fail-aware untrusted storage service."""

    #: User operations invoked while one is in flight are queued (the
    #: application may pipeline submissions through this client).
    pipelines_operations = True

    #: A fail-aware client that crash-*restarts* recovers with its
    #: reliable-channel traffic replayed (the same modelling choice as
    #: ``UstorServer`` outages: the channels outlive one endpoint's
    #: restart).  This covers the in-flight REPLY — without it a client
    #: that crashed mid-operation would stay busy forever, its own
    #: version frozen below the fleet's next checkpoint cut, and the
    #: membership layer would (correctly, but uselessly) evict an
    #: otherwise healthy returnee.  It also honours the offline
    #: channel's eventual-delivery guarantee (Section 2: messages are
    #: delivered "even if the clients are not simultaneously
    #: connected"), since offline mail funnels through the same
    #: ``deliver`` entry point.  Crash-*stop* clients never restart, so
    #: for them the flag only parks undeliverable mail.
    holds_mail_while_down = True

    def __init__(
        self,
        client_id: ClientId,
        num_clients: int,
        signer: ClientSigner,
        server_name: str = "S",
        recorder: HistoryRecorder | None = None,
        commit_piggyback: bool = False,
        delta: float = 40.0,
        dummy_read_period: float = 7.0,
        probe_check_period: float = 11.0,
        enable_dummy_reads: bool = True,
        enable_probes: bool = True,
        on_stable: Callable[[tuple[int, ...]], None] | None = None,
        on_faust_fail: Callable[[str], None] | None = None,
        replica_servers: tuple | None = None,
        quorum: int | None = None,
        counter: bool = False,
        checkpoint: CheckpointPolicy | None = None,
        membership: MembershipPolicy | None = None,
    ) -> None:
        super().__init__(
            client_id=client_id,
            num_clients=num_clients,
            signer=signer,
            server_name=server_name,
            recorder=recorder,
            on_fail=self._ustor_failed,
            commit_piggyback=commit_piggyback,
            replica_servers=replica_servers,
            quorum=quorum,
            counter=counter,
        )
        self.tracker = StabilityTracker(client_id, num_clients)
        self.delta = delta
        self._dummy_period = dummy_read_period
        self._probe_period = probe_check_period
        self._enable_dummy = enable_dummy_reads
        self._enable_probes = enable_probes
        self._on_stable = on_stable
        self._on_faust_fail = on_faust_fail
        self._stable_listeners: list[Callable[[tuple[int, ...]], None]] = []
        self._faust_fail_listeners: list[Callable[[str], None]] = []

        self._offline: OfflineChannel | None = None
        self._queue: deque = deque()
        self._dummy_timer: PeriodicTimer | None = None
        self._probe_timer: PeriodicTimer | None = None
        self._next_dummy_register = (client_id + 1) % num_clients
        self._last_probe_sent: list[float] = [float("-inf")] * num_clients

        self.faust_failed = False
        self.faust_fail_reason: str | None = None
        self.faust_fail_time: float | None = None
        #: (time, W) of every stable_i notification, for tests/experiments.
        #: With checkpointing on, installed checkpoints trim this list
        #: (bounded state); ``stable_notifications_total`` keeps the count.
        self.stable_notifications: list[tuple[float, tuple[int, ...]]] = []
        self.stable_notifications_total = 0
        self.user_operations_completed = 0
        self.dummy_reads_issued = 0

        self._checkpoint_listeners: list[Callable[[Checkpoint], None]] = []
        self._epoch_listeners: list[Callable[[Epoch], None]] = []
        self._membership_timer: PeriodicTimer | None = None
        self.checkpoint_manager: CheckpointManager | None = None
        self.membership_manager: MembershipManager | None = None
        if membership is not None and checkpoint is None:
            raise ProtocolError(
                "membership requires checkpointing: leases are judged "
                "against (and renewed by) checkpoint shares"
            )
        if membership is not None:
            self.membership_manager = MembershipManager(
                client_id,
                num_clients,
                signer,
                membership,
                tracker=self.tracker,
                delta=delta,
                send_share=self._broadcast_epoch_share,
                send_announce=self._send_epoch_announce,
                request_rejoin=self._request_rejoin,
                on_epoch=self._epoch_installed,
                on_fail=self._fail_faust,
            )
        if checkpoint is not None:
            self.checkpoint_manager = CheckpointManager(
                client_id,
                num_clients,
                signer,
                checkpoint,
                send_share=self._broadcast_checkpoint_share,
                send_server=self._send_server,
                on_install=self._checkpoint_installed,
                on_fail=self._fail_faust,
                membership=self.membership_manager,
                clock=lambda: self.now,
            )
        if self.membership_manager is not None:
            self.membership_manager.bind(self.checkpoint_manager)

    # ---------------------------------------------------------------- #
    # Wiring
    # ---------------------------------------------------------------- #

    def attach_offline(self, channel: OfflineChannel) -> None:
        self._offline = channel

    def add_stable_listener(
        self, listener: Callable[[tuple[int, ...]], None]
    ) -> None:
        """Invoke ``listener(W)`` on every ``stable_i(W)`` notification."""
        self._stable_listeners.append(listener)

    def add_checkpoint_listener(
        self, listener: Callable[[Checkpoint], None]
    ) -> None:
        """Invoke ``listener(checkpoint)`` on every installed checkpoint."""
        self._checkpoint_listeners.append(listener)

    def add_epoch_listener(self, listener: Callable[[Epoch], None]) -> None:
        """Invoke ``listener(epoch)`` on every installed membership epoch."""
        self._epoch_listeners.append(listener)

    def add_failure_listener(self, listener: Callable[[str], None]) -> None:
        """Invoke ``listener(reason)`` on the (single) ``fail_i`` output.

        Registers at the FAUST layer, which subsumes USTOR-level
        detections: every local ``fail_i`` flows through
        :meth:`_fail_faust` exactly once."""
        self._faust_fail_listeners.append(listener)

    def start(self) -> None:
        """Arm the periodic machinery (after binding to scheduler/network)."""
        if self._enable_dummy and self._dummy_timer is None:
            self._dummy_timer = PeriodicTimer(
                self.scheduler,
                self._dummy_period,
                self._dummy_tick,
                jitter=0.2,
            )
            self._dummy_timer.start()
        if self._enable_probes and self._probe_timer is None:
            self._probe_timer = PeriodicTimer(
                self.scheduler,
                self._probe_period,
                self._probe_tick,
                jitter=0.2,
            )
            self._probe_timer.start()
        if (
            self.membership_manager is not None
            and self._membership_timer is None
        ):
            # Deliberately jitter-free: a fault-free membership-on run
            # must draw exactly the same RNG stream as a membership-off
            # run (bit-identical equivalence), and the tick itself sends
            # nothing unless somebody is blocking the chain.
            self._membership_timer = PeriodicTimer(
                self.scheduler,
                self.membership_manager.policy.check_period,
                self._membership_tick,
                jitter=0.0,
            )
            self._membership_timer.start()

    def stop_timers(self) -> None:
        if self._dummy_timer is not None:
            self._dummy_timer.stop()
        if self._probe_timer is not None:
            self._probe_timer.stop()
        if self._membership_timer is not None:
            self._membership_timer.stop()

    def enable_background(self, dummy_reads: bool = True, probes: bool = True) -> None:
        """(Re)enable the periodic machinery — used by scenarios that start
        a client quiet and wake its background activity later."""
        self._enable_dummy = dummy_reads
        self._enable_probes = probes
        self.start()

    def pause(self) -> None:
        """Model a client going offline/asleep: background activity stops.

        The client remains correct (it will resume) — contrast with
        :meth:`crash`.  Pair with ``offline_channel.set_online(name, False)``
        to also defer offline-message delivery.
        """
        if self._dummy_timer is not None:
            self._dummy_timer.stop()
            self._dummy_timer = None
        if self._probe_timer is not None:
            self._probe_timer.stop()
            self._probe_timer = None
        if self._membership_timer is not None:
            self._membership_timer.stop()
            self._membership_timer = None

    def resume(self) -> None:
        """Wake up after :meth:`pause`."""
        self.start()

    # ---------------------------------------------------------------- #
    # The application-facing operations (queued; responses carry t)
    # ---------------------------------------------------------------- #

    def write(
        self, value: Value, callback: Callable[[OpOutcome], None] | None = None
    ) -> None:
        if not isinstance(value, bytes):
            raise ProtocolError("register values are bytes")
        self._enqueue(OpKind.WRITE, self._id, value, callback)

    def read(
        self,
        register: RegisterId,
        callback: Callable[[OpOutcome], None] | None = None,
    ) -> None:
        if not 0 <= register < self._n:
            raise ProtocolError(f"register {register} out of range")
        self._enqueue(OpKind.READ, register, None, callback)

    def _enqueue(self, kind, register, value, callback) -> None:
        if self.faust_failed or self.failed:
            raise ProtocolError(f"{self.name} has failed and halted")
        if self.crashed:
            raise ProtocolError(f"{self.name} has crashed")
        self._queue.append((kind, register, value, callback))
        self._pump()

    def _pump(self) -> None:
        if self.busy or not self._queue or self.failed or self.crashed:
            return
        kind, register, value, callback = self._queue.popleft()

        def completed(outcome: OpOutcome, _cb=callback) -> None:
            self._operation_completed(outcome, _cb, dummy=False)

        if kind is OpKind.WRITE:
            super().write(value, completed)
        else:
            super().read(register, completed)

    @property
    def idle(self) -> bool:
        """No user operation in flight or queued."""
        return not self.busy and not self._queue

    # ---------------------------------------------------------------- #
    # Version intake and notifications
    # ---------------------------------------------------------------- #

    def _operation_completed(self, outcome: OpOutcome, callback, dummy: bool) -> None:
        if not dummy:
            self.user_operations_completed += 1
        # My own committed version.
        self._absorb(self._id, outcome.version)
        # The writer's version returned by a read.
        if outcome.kind is OpKind.READ and outcome.reader_version is not None:
            self._absorb(outcome.register, outcome.reader_version)
        if callback is not None and not self.faust_failed:
            callback(outcome)
        self._pump()

    def _absorb(self, source: ClientId, version) -> None:
        if self.faust_failed:
            return
        result = self.tracker.absorb(source, version, self.now)
        if result.incomparable:
            self._fail_faust(
                f"version received from {client_name(source)} is incomparable "
                f"with the known maximum (forking evidence)"
            )
            return
        if result.stability_advanced:
            self._notify_stable()
        if result.updated and self.checkpoint_manager is not None:
            self.checkpoint_manager.on_stability(self._checkpoint_stable())

    def _checkpoint_stable(self) -> tuple[int, ...]:
        """The cut the checkpoint protocol folds: epoch-scoped if any.

        With membership on, stability is taken over the current epoch's
        member rows only (an evicted client's frozen row must not pin
        the cut); identical to the all-rows cut while every client is a
        member.
        """
        manager = self.membership_manager
        if manager is not None:
            return self.tracker.stable_vector(members=manager.members)
        return self.tracker.stable_vector()

    def _notify_stable(self) -> None:
        cut = self.tracker.stability_cut()
        self.stable_notifications.append((self.now, cut))
        self.stable_notifications_total += 1
        trace = self.network.trace
        if trace is not None:
            trace.note(self.now, self.name, "stable", cut)
        if self._on_stable is not None:
            self._on_stable(cut)
        for listener in list(self._stable_listeners):
            listener(cut)

    # ---------------------------------------------------------------- #
    # Periodic machinery
    # ---------------------------------------------------------------- #

    def _dummy_tick(self) -> None:
        if self.faust_failed or self.failed or self.crashed or not self.idle:
            return
        register = self._next_dummy_register
        self._next_dummy_register = (register + 1) % self._n
        self.dummy_reads_issued += 1

        def completed(outcome: OpOutcome) -> None:
            self._operation_completed(outcome, None, dummy=True)

        # Bypass the queue: dummy reads run only when the application is idle.
        UstorClient.read(self, register, completed)

    def _probe_tick(self) -> None:
        if self.faust_failed or self.crashed or self._offline is None:
            return
        now = self.now
        for peer in self.tracker.stale_peers(now, self.delta):
            if now - self._last_probe_sent[peer] <= self.delta:
                continue  # an answer to the previous probe may be in flight
            self._last_probe_sent[peer] = now
            self._offline.send(
                self.name, client_name(peer), ProbeMessage(sender=self._id)
            )

    def _membership_tick(self) -> None:
        if self.faust_failed or self.crashed or self.membership_manager is None:
            return
        self.membership_manager.on_tick(self.now)

    # ---------------------------------------------------------------- #
    # Message dispatch
    # ---------------------------------------------------------------- #

    def on_message(self, src: str, message) -> None:
        if isinstance(message, ReplyMessage):
            super().on_message(src, message)
            return
        if self.faust_failed:
            return
        if isinstance(message, ProbeMessage):
            self._handle_probe(message)
            self._note_membership_contact(message.sender)
        elif isinstance(message, VersionMessage):
            self._absorb(message.sender, message.version)
            self._note_membership_contact(message.sender)
        elif isinstance(message, CheckpointShareMessage):
            if self.checkpoint_manager is not None:
                self.checkpoint_manager.on_share(message)
        elif isinstance(message, EpochShareMessage):
            if self.membership_manager is not None:
                self.membership_manager.on_share(message)
        elif isinstance(message, EpochAnnounceMessage):
            if self.membership_manager is not None:
                self.membership_manager.on_announce(message)
        elif isinstance(message, FailureMessage):
            # The paper's third detection condition: another client holds
            # proof.  Re-alerting is harmless (each client alerts at most
            # once) and makes propagation robust to client crashes.
            self._fail_faust(
                f"FAILURE alert from {client_name(message.sender)}: {message.reason}"
            )

    def _handle_probe(self, message: ProbeMessage) -> None:
        if self._offline is None:
            return
        self._offline.send(
            self.name,
            client_name(message.sender),
            VersionMessage(sender=self._id, version=self.tracker.max_version),
        )

    # ---------------------------------------------------------------- #
    # Checkpointing (bounded state)
    # ---------------------------------------------------------------- #

    def _broadcast_checkpoint_share(self, share: CheckpointShareMessage) -> None:
        if self._offline is None:
            return
        for peer in range(self._n):
            if peer == self._id:
                continue
            self._offline.send(self.name, client_name(peer), share)

    def _checkpoint_installed(self, checkpoint: Checkpoint) -> None:
        """Prune local state behind an installed checkpoint.

        Only *own* bookkeeping goes: view-history records at or below my
        entry of the cut (their operations are stable everywhere, so no
        future comparability check needs them) and the accumulated
        stability-notification log.  The version vectors in the tracker —
        what rollback/fork detection actually compares against — are O(n)
        and are never pruned.
        """
        trace = self.network.trace
        if trace is not None:
            trace.note(
                self.now, self.name, "checkpoint", (checkpoint.seq, checkpoint.cut)
            )
        manager = self.checkpoint_manager
        if manager is not None and manager.policy.prune_history:
            floor = checkpoint.cut[self._id]
            stale = [
                key for key in self.vh_records if key[1] <= floor
            ]
            for key in stale:
                del self.vh_records[key]
            keep = manager.policy.keep_tail
            if len(self.stable_notifications) > keep:
                del self.stable_notifications[:-keep]
        for listener in list(self._checkpoint_listeners):
            listener(checkpoint)

    # ---------------------------------------------------------------- #
    # Membership (lease-based epochs)
    # ---------------------------------------------------------------- #

    def _note_membership_contact(self, sender: ClientId) -> None:
        """Probe/version traffic from an evicted client: sponsor a rejoin."""
        if self.membership_manager is not None:
            self.membership_manager.note_contact(sender)

    def _broadcast_epoch_share(self, share: EpochShareMessage) -> None:
        # Epoch shares go to *every* client, evicted ones included —
        # they keep tracking the membership chain while out.
        if self._offline is None:
            return
        for peer in range(self._n):
            if peer == self._id:
                continue
            self._offline.send(self.name, client_name(peer), share)

    def _send_epoch_announce(
        self, peer: ClientId, announce: EpochAnnounceMessage
    ) -> None:
        if self._offline is None:
            return
        self._offline.send(self.name, client_name(peer), announce)

    def _request_rejoin(self, peer: ClientId) -> None:
        """As an evictee: make contact with a member (a VERSION suffices)."""
        if self._offline is None or self.crashed:
            return
        self._offline.send(
            self.name,
            client_name(peer),
            VersionMessage(sender=self._id, version=self.tracker.max_version),
        )

    def _epoch_installed(self, epoch: Epoch) -> None:
        """Act on a newly installed membership epoch."""
        trace = self.network.trace
        if trace is not None:
            trace.note(
                self.now, self.name, "epoch", (epoch.epoch, epoch.members)
            )
        if self.checkpoint_manager is not None:
            self.checkpoint_manager.on_members_changed()
            # Re-feed stability: the member-scoped cut may jump the
            # moment a frozen row leaves the min.
            self.checkpoint_manager.on_stability(self._checkpoint_stable())
        for listener in list(self._epoch_listeners):
            listener(epoch)

    # ---------------------------------------------------------------- #
    # fail_i
    # ---------------------------------------------------------------- #

    def _ustor_failed(self, reason: str) -> None:
        self._fail_faust(f"USTOR detection: {reason}")

    def _fail_faust(self, reason: str, alert_others: bool = True) -> None:
        if self.faust_failed:
            return
        self.faust_failed = True
        self.faust_fail_reason = reason
        self.faust_fail_time = self.now
        self.halt_protocol()
        self.stop_timers()
        trace = self.network.trace
        if trace is not None:
            trace.note(self.now, self.name, "faust-fail", reason)
        if alert_others and self._offline is not None:
            for peer in range(self._n):
                if peer == self._id:
                    continue
                self._offline.send(
                    self.name,
                    client_name(peer),
                    FailureMessage(sender=self._id, reason=reason),
                )
        if self._on_faust_fail is not None:
            self._on_faust_fail(reason)
        for listener in list(self._faust_fail_listeners):
            listener(reason)
