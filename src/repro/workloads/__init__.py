"""Workloads: system assembly, scripted/random drivers, paper scenarios."""

from repro.workloads.churn import ChurnSchedule, OfflineWindow
from repro.workloads.generator import (
    Driver,
    DriverStats,
    PlannedOp,
    WorkloadConfig,
    generate_scripts,
    unique_value,
)
from repro.workloads.runner import StorageSystem, SystemBuilder
from repro.workloads.scenarios import (
    Figure2Result,
    Figure3Result,
    SplitBrainResult,
    figure2_scenario,
    figure3_scenario,
    split_brain_scenario,
)

__all__ = [
    "ChurnSchedule",
    "Driver",
    "OfflineWindow",
    "DriverStats",
    "Figure2Result",
    "Figure3Result",
    "PlannedOp",
    "SplitBrainResult",
    "StorageSystem",
    "SystemBuilder",
    "WorkloadConfig",
    "figure2_scenario",
    "figure3_scenario",
    "generate_scripts",
    "split_brain_scenario",
    "unique_value",
]
