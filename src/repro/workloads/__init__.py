"""Workloads: system assembly, scripted/random drivers, paper scenarios."""

from repro.workloads.churn import ChurnSchedule, OfflineWindow
from repro.workloads.generator import (
    Driver,
    DriverStats,
    OpenLoopConfig,
    PlannedOp,
    TimedOp,
    WorkloadConfig,
    ZipfSampler,
    generate_open_loop,
    generate_scripts,
    unique_value,
)
from repro.workloads.runner import StorageSystem, SystemBuilder
from repro.workloads.scale import (
    ResidentSample,
    ScaleConfig,
    ScaleReport,
    run_scale,
)
from repro.workloads.scenarios import (
    Figure2Result,
    Figure3Result,
    SplitBrainResult,
    figure2_scenario,
    figure3_scenario,
    split_brain_scenario,
)
from repro.workloads.sessions import (
    SessionLease,
    SessionPool,
    SessionWindow,
    plan_churn_windows,
)

__all__ = [
    "ChurnSchedule",
    "Driver",
    "OfflineWindow",
    "DriverStats",
    "Figure2Result",
    "Figure3Result",
    "OpenLoopConfig",
    "PlannedOp",
    "ResidentSample",
    "ScaleConfig",
    "ScaleReport",
    "SessionLease",
    "SessionPool",
    "SessionWindow",
    "SplitBrainResult",
    "StorageSystem",
    "SystemBuilder",
    "TimedOp",
    "WorkloadConfig",
    "ZipfSampler",
    "figure2_scenario",
    "figure3_scenario",
    "generate_open_loop",
    "generate_scripts",
    "plan_churn_windows",
    "run_scale",
    "split_brain_scenario",
    "unique_value",
]
