"""Client-lifecycle allocation: many logical sessions, few signer slots.

The fail-aware protocol prices every *signer* — a key in the keystore, a
row in every version vector, an entry in every checkpoint cut — so a
deployment cannot afford one signer per user session when sessions churn
in the tens of thousands.  :class:`SessionPool` separates the two
populations: **logical sessions** (unbounded, monotonically numbered)
lease **signer slots** (the fixed fleet of
:class:`~repro.faust.client.FaustClient` instances) for their lifetime
and hand them back on logout, so the signer count stays ``n`` no matter
how many sessions come and go.

The pool is membership-aware: it listens for installed epochs on every
materialized client (deduplicated by epoch number — a crashed client
never reports) and **quarantines** slots the quorum evicted, ending any
session bound to them; when a later epoch re-admits the slot, it returns
to the free list and ``sessions_recycled`` counts the reuse.  Slots'
backing clients are materialized lazily through the provider callable,
so building a pool costs nothing until sessions actually arrive.

:func:`plan_churn_windows` draws a deterministic churn plan (session
logout/login windows) and rejects plans whose concurrent-offline peak
would exceed the signer-set size — the configuration error behind
``repro scale --churn-windows`` values too large for ``--clients``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class SessionLease:
    """One logical session's hold on a signer slot."""

    session_id: int
    slot: int


@dataclass(frozen=True)
class SessionWindow:
    """A planned churn event: some session logs out at ``start`` and a
    fresh session takes over its slot ``duration`` later."""

    start: float
    duration: float

    @property
    def end(self) -> float:
        """When the slot comes back."""
        return self.start + self.duration


def plan_churn_windows(
    rng,
    count: int,
    *,
    horizon: float,
    mean_duration: float,
    num_slots: int,
) -> list[SessionWindow]:
    """Draw ``count`` churn windows over ``[0, horizon)``; reject overload.

    Starts are uniform over the horizon and durations exponential with
    the given mean (floored at one time unit), drawn from ``rng`` so the
    plan is deterministic per seed.  A plan whose windows would take
    more slots offline *concurrently* than the signer set holds cannot
    be scheduled — every offline window needs a distinct slot — and
    raises :class:`~repro.common.errors.ConfigurationError` instead of
    silently dropping windows.
    """
    if count < 0:
        raise ConfigurationError(
            f"churn window count must be non-negative, got {count}"
        )
    windows = sorted(
        (
            SessionWindow(
                start=rng.uniform(0.0, horizon),
                duration=max(rng.expovariate(1.0 / mean_duration), 1.0),
            )
            for _ in range(count)
        ),
        key=lambda window: (window.start, window.duration),
    )
    peak = _max_concurrent(windows)
    if peak > num_slots:
        raise ConfigurationError(
            f"churn plan needs {peak} sessions offline concurrently but "
            f"the signer set has only {num_slots} slot(s): lower "
            f"--churn-windows (or shorten --churn-mean-duration / raise "
            f"--clients) so concurrent churn fits the fleet"
        )
    return windows


def _max_concurrent(windows: Iterable[SessionWindow]) -> int:
    """The largest number of windows open at any instant."""
    events = sorted(
        point
        for window in windows
        for point in ((window.start, 1), (window.end, -1))
    )
    peak = open_now = 0
    for _, delta in events:
        open_now += delta
        peak = max(peak, open_now)
    return peak


class SessionPool:
    """Allocates signer slots to an unbounded stream of logical sessions.

    ``provider(slot)`` returns (and on first call materializes) the
    client backing a slot; it is invoked lazily, the first time the slot
    is leased.  Clients exposing ``add_epoch_listener`` (fail-aware
    clients with membership on) are subscribed so the pool tracks
    evictions and re-admissions; other clients simply never quarantine.
    """

    def __init__(
        self,
        num_slots: int,
        provider: Callable[[int], object] | None = None,
    ) -> None:
        if num_slots < 1:
            raise ConfigurationError(
                f"a session pool needs at least one slot, got {num_slots}"
            )
        self.num_slots = num_slots
        self._provider = provider
        self._clients: dict[int, object] = {}
        self._free: deque[int] = deque(range(num_slots))
        self._bound: dict[int, SessionLease] = {}
        self._quarantined: set[int] = set()
        self._next_session = 0
        self._last_epoch = 0
        # Instrumentation.
        self.sessions_created = 0
        self.sessions_recycled = 0
        self.sessions_evicted = 0
        self.peak_in_use = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def in_use(self) -> int:
        """Slots currently leased to a session."""
        return len(self._bound)

    @property
    def available(self) -> int:
        """Slots free to lease right now (quarantined ones excluded)."""
        return len(self._free)

    @property
    def quarantined(self) -> tuple[int, ...]:
        """Slots the membership quorum has evicted (not leasable)."""
        return tuple(sorted(self._quarantined))

    def lease_for(self, slot: int) -> SessionLease | None:
        """The lease currently holding ``slot``, if any."""
        return self._bound.get(slot)

    def client(self, slot: int):
        """The client backing ``slot`` (materialized on first use)."""
        if slot not in self._clients:
            if self._provider is None:
                raise ConfigurationError(
                    f"slot {slot} has no materialized client and the pool "
                    f"was built without a provider"
                )
            built = self._provider(slot)
            self._clients[slot] = built
            subscribe = getattr(built, "add_epoch_listener", None)
            if subscribe is not None:
                subscribe(self._on_epoch)
        return self._clients[slot]

    # ------------------------------------------------------------------ #
    # The session lifecycle
    # ------------------------------------------------------------------ #

    def acquire(self) -> SessionLease:
        """Lease a slot to a new logical session (raises when exhausted)."""
        lease = self.try_acquire()
        if lease is None:
            raise ConfigurationError(
                f"all {self.num_slots} signer slot(s) are leased or "
                f"quarantined; release a session first"
            )
        return lease

    def try_acquire(self) -> SessionLease | None:
        """Lease a slot, or ``None`` when every slot is busy/quarantined."""
        while self._free:
            slot = self._free.popleft()
            if slot in self._quarantined:
                continue  # evicted while sitting in the free list
            return self._lease(slot)
        return None

    def try_acquire_slot(self, slot: int) -> SessionLease | None:
        """Lease one *specific* slot — the reconnect path, where a user
        returns on the signer slot their device already holds keys for.
        ``None`` when the slot is leased, quarantined or unknown."""
        if not 0 <= slot < self.num_slots:
            return None
        if slot in self._quarantined or slot in self._bound:
            return None
        try:
            self._free.remove(slot)
        except ValueError:
            return None
        return self._lease(slot)

    def _lease(self, slot: int) -> SessionLease:
        self.client(slot)  # materialize lazily
        lease = SessionLease(session_id=self._next_session, slot=slot)
        self._next_session += 1
        self._bound[slot] = lease
        self.sessions_created += 1
        self.peak_in_use = max(self.peak_in_use, len(self._bound))
        return lease

    def release(self, lease: SessionLease) -> None:
        """End a logical session; its slot becomes leasable again."""
        held = self._bound.get(lease.slot)
        if held is None or held.session_id != lease.session_id:
            return  # already released (or evicted under it)
        del self._bound[lease.slot]
        if lease.slot not in self._quarantined:
            self._free.append(lease.slot)

    # ------------------------------------------------------------------ #
    # Membership events
    # ------------------------------------------------------------------ #

    def _on_epoch(self, epoch) -> None:
        """An epoch installed somewhere in the fleet (deduplicated)."""
        if epoch.epoch <= self._last_epoch:
            return
        self._last_epoch = epoch.epoch
        members = set(epoch.members)
        for slot in range(self.num_slots):
            if slot not in members:
                self._quarantine(slot)
            elif slot in self._quarantined:
                self._readmit(slot)

    def _quarantine(self, slot: int) -> None:
        if slot in self._quarantined:
            return
        self._quarantined.add(slot)
        held = self._bound.pop(slot, None)
        if held is not None:
            self.sessions_evicted += 1
        try:
            self._free.remove(slot)
        except ValueError:
            pass

    def _readmit(self, slot: int) -> None:
        self._quarantined.discard(slot)
        if slot not in self._bound:
            self._free.append(slot)
        self.sessions_recycled += 1
